"""Shared-memory metrics plane: fixed-slot mmap segments with seqlocks.

The multi-process serving tier needs fleet telemetry without spending its
request pipes on it: every worker owns one *metrics plane* — an mmap'd
file of 64-byte-aligned slots (counters, gauges, fixed-bucket histograms
mirroring the :class:`~repro.obs.metrics.MetricsRegistry` data model) —
and the router scrapes all of them by mapping the files read-only.  No
pipe round-trips, no locks shared across processes.

Torn-read safety comes from a per-slot *seqlock*: the writer bumps an
epoch word to an odd value, mutates the slot payload, then bumps it even
again; a reader that observes an odd epoch, or a different epoch after
reading the payload, retries (and after a bounded number of attempts
marks the slot torn rather than reporting half-written buckets).  The
single writer per plane never blocks and never syscalls on the hot path;
same-host readers observe the stores through the page cache.

Layout (little-endian)::

    [0:8)                magic  b"ROBSPLN1"
    [8:12)               uint32 schema length in bytes
    [12:12+len)          schema JSON: {"meta": {...}, "slots": [...]}
    [align64(...):...]   slot 0, slot 1, ...   (each 64-byte aligned)

    counter/gauge slot:  uint64 epoch | float64 value          (64 B)
    histogram slot:      uint64 epoch | uint64 * (n_bounds+1)
                         bucket counts | float64 sum | uint64
                         count                  (rounded up to 64 B)

A plane is self-describing: :meth:`MetricsPlane.open` reads the schema
back, so an out-of-process scraper (``repro obs-export``) needs nothing
but the directory.  Re-creating a plane whose file already holds the
identical schema *attaches* instead of zeroing, so counters survive
worker restarts and keep their monotonic contract.

:func:`merge_snapshots` folds any number of plane snapshots into one
:class:`~repro.obs.metrics.MetricsRegistry` — counters and histogram
buckets sum, gauges max-merge — giving the fleet-wide registry view the
SLO engine and the Prometheus renderer already understand.
"""

from __future__ import annotations

import glob
import json
import mmap
import os
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.exemplar import (
    EXEMPLAR_KEY_BYTES,
    EXEMPLAR_TRACE_ID_BYTES,
    Exemplar,
    exemplars_enabled,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

MAGIC = b"ROBSPLN1"
_ALIGN = 64
#: Seqlock read attempts before a slot is declared torn (dead writer
#: mid-update leaves an odd epoch forever; readers must not spin).
_MAX_READ_RETRIES = 64

#: One encoded exemplar per histogram bucket when a slot opts in:
#: float64 value | trace id (ascii, NUL-padded) | provenance key
#: (ascii, NUL-padded) | float64 ts_unix.  ts_unix == 0 means "empty".
_EXEMPLAR_BYTES = 8 + EXEMPLAR_TRACE_ID_BYTES + EXEMPLAR_KEY_BYTES + 8

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class PlaneSchemaError(ValueError):
    """The file is not a metrics plane, or its schema does not match."""


@dataclass(frozen=True)
class SlotSpec:
    """One fixed slot of a plane: a named, typed, pre-labeled metric."""

    kind: str
    name: str
    labels: tuple[tuple[str, str], ...] = ()
    buckets: tuple[float, ...] = ()
    help: str = ""
    #: Histogram-only: reserve per-bucket exemplar bytes after the
    #: count/sum words, guarded by the *same* slot epoch (seqlock-safe
    #: for free).  Serialized into the schema blob only when True, so
    #: pre-exemplar plane files keep a byte-identical schema and still
    #: attach (counters stay monotonic across the upgrade).
    exemplars: bool = False

    def __post_init__(self) -> None:
        if self.kind not in (COUNTER, GAUGE, HISTOGRAM):
            raise ValueError(f"unknown slot kind: {self.kind!r}")
        if self.kind == HISTOGRAM and not self.buckets:
            object.__setattr__(
                self, "buckets", tuple(float(b) for b in DEFAULT_LATENCY_BUCKETS)
            )
        if self.exemplars and self.kind != HISTOGRAM:
            raise ValueError("exemplars are only valid on histogram slots")

    @property
    def payload_bytes(self) -> int:
        if self.kind == HISTOGRAM:
            # bucket counts (incl. +Inf) + sum + count
            base = 8 * (len(self.buckets) + 1) + 8 + 8
            if self.exemplars:
                base += _EXEMPLAR_BYTES * (len(self.buckets) + 1)
            return base
        return 8

    @property
    def slot_bytes(self) -> int:
        return _align(8 + self.payload_bytes)

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "kind": self.kind,
            "name": self.name,
            "labels": [list(kv) for kv in self.labels],
            "buckets": list(self.buckets),
            "help": self.help,
        }
        if self.exemplars:
            doc["exemplars"] = True
        return doc

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SlotSpec":
        return cls(
            kind=str(payload["kind"]),
            name=str(payload["name"]),
            labels=tuple(
                (str(k), str(v)) for k, v in payload.get("labels", [])
            ),
            buckets=tuple(float(b) for b in payload.get("buckets", [])),
            help=str(payload.get("help", "")),
            exemplars=bool(payload.get("exemplars", False)),
        )


@dataclass(frozen=True)
class SlotValue:
    """One decoded slot: scalar for counters/gauges, buckets for histograms."""

    spec: SlotSpec
    value: float = 0.0
    bucket_counts: tuple[int, ...] = ()   # per-bucket (not cumulative), +Inf last
    sum: float = 0.0
    count: int = 0
    torn: bool = False
    exemplars: tuple = ()                 # Exemplar | None per bucket, +Inf last


@dataclass(frozen=True)
class PlaneSnapshot:
    """A consistent point-in-time read of one plane."""

    path: str
    meta: dict[str, Any] = field(default_factory=dict)
    slots: tuple[SlotValue, ...] = ()

    @property
    def n_torn(self) -> int:
        return sum(1 for s in self.slots if s.torn)


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _pad_ascii(text: str, width: int) -> bytes:
    raw = text.encode("ascii", "replace")[:width]
    return raw + b"\x00" * (width - len(raw))


def _encode_exemplar(exemplar: Exemplar) -> bytes:
    ts = exemplar.ts_unix or time.time()
    return (
        struct.pack("<d", float(exemplar.value))
        + _pad_ascii(exemplar.trace_id, EXEMPLAR_TRACE_ID_BYTES)
        + _pad_ascii(exemplar.provenance_key, EXEMPLAR_KEY_BYTES)
        + struct.pack("<d", float(ts))
    )


def _decode_exemplar(raw: bytes) -> "Exemplar | None":
    (value,) = struct.unpack_from("<d", raw, 0)
    trace_end = 8 + EXEMPLAR_TRACE_ID_BYTES
    key_end = trace_end + EXEMPLAR_KEY_BYTES
    (ts,) = struct.unpack_from("<d", raw, key_end)
    if ts == 0.0:
        return None  # never written
    return Exemplar(
        value=value,
        trace_id=raw[8:trace_end].rstrip(b"\x00").decode("ascii", "replace"),
        provenance_key=raw[trace_end:key_end].rstrip(b"\x00").decode(
            "ascii", "replace"
        ),
        ts_unix=ts,
    )


def _schema_blob(specs: Sequence[SlotSpec], meta: Mapping[str, Any]) -> bytes:
    doc = {"meta": dict(meta), "slots": [s.to_dict() for s in specs]}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _slot_offsets(specs: Sequence[SlotSpec], schema_len: int) -> list[int]:
    offset = _align(12 + schema_len)
    out = []
    for spec in specs:
        out.append(offset)
        offset += spec.slot_bytes
    return out


class MetricsPlane:
    """One mmap'd metrics segment: single writer, any number of readers.

    Construct with :meth:`create` (writer side — attaches to an existing
    file when the schema matches byte-for-byte, otherwise replaces it
    atomically) or :meth:`open` (reader side).  The writer serializes its
    own threads with an internal lock; cross-process safety is the
    seqlock, not the lock.
    """

    def __init__(
        self,
        path: str,
        specs: tuple[SlotSpec, ...],
        meta: dict[str, Any],
        mm: mmap.mmap,
        fh,
        writable: bool,
    ) -> None:
        self.path = path
        self.specs = specs
        self.meta = meta
        self._mm = mm
        self._fh = fh
        self._writable = writable
        self._lock = threading.Lock()
        schema_len = len(_schema_blob(specs, meta))
        self._offsets = _slot_offsets(specs, schema_len)
        self._index: dict[tuple[str, tuple[tuple[str, str], ...]], int] = {
            (spec.name, spec.labels): i for i, spec in enumerate(specs)
        }

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        specs: Iterable[SlotSpec],
        meta: Mapping[str, Any] | None = None,
    ) -> "MetricsPlane":
        """Writer-side plane; attaches when ``path`` already matches.

        Attach-on-match is what keeps counters monotonic across worker
        restarts: the restarted worker keeps accumulating into the same
        slots instead of zeroing the fleet's history.
        """
        specs = tuple(specs)
        meta = dict(meta or {})
        blob = _schema_blob(specs, meta)
        total = _slot_offsets(specs, len(blob))
        size = (total[-1] + specs[-1].slot_bytes) if specs else _align(12 + len(blob))
        if os.path.exists(path):
            try:
                existing = cls.open(path)
                match = existing.specs == specs and existing.meta == meta
                existing.close()
            except (PlaneSchemaError, OSError, ValueError):
                match = False
            if match:
                fh = open(path, "r+b")
                mm = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_WRITE)
                return cls(path, specs, meta, mm, fh, writable=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            f.write(MAGIC)
            f.write(struct.pack("<I", len(blob)))
            f.write(blob)
            f.truncate(size)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        fh = open(path, "r+b")
        mm = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_WRITE)
        return cls(path, specs, meta, mm, fh, writable=True)

    @classmethod
    def open(cls, path: str) -> "MetricsPlane":
        """Reader-side plane (raises :class:`PlaneSchemaError` on junk)."""
        fh = open(path, "rb")
        try:
            head = fh.read(12)
            if len(head) < 12 or head[:8] != MAGIC:
                raise PlaneSchemaError(f"not a metrics plane: {path!r}")
            (schema_len,) = struct.unpack_from("<I", head, 8)
            blob = fh.read(schema_len)
            if len(blob) != schema_len:
                raise PlaneSchemaError(f"truncated plane header: {path!r}")
            try:
                doc = json.loads(blob.decode("utf-8"))
                specs = tuple(SlotSpec.from_dict(s) for s in doc["slots"])
                meta = dict(doc.get("meta", {}))
            except (ValueError, KeyError, TypeError) as exc:
                raise PlaneSchemaError(f"bad plane schema in {path!r}: {exc}")
            offsets = _slot_offsets(specs, schema_len)
            size = (
                (offsets[-1] + specs[-1].slot_bytes) if specs
                else _align(12 + schema_len)
            )
            if os.fstat(fh.fileno()).st_size < size:
                raise PlaneSchemaError(f"plane file too small: {path!r}")
            mm = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ)
        except Exception:
            fh.close()
            raise
        return cls(path, specs, meta, mm, fh, writable=False)

    def close(self) -> None:
        with self._lock:
            if self._mm is not None:
                self._mm.close()
                self._mm = None
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- addressing -----------------------------------------------------
    def slot(self, name: str, **labels: Any) -> int:
        """Slot index for ``name`` + exact label set (KeyError if absent)."""
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        return self._index[key]

    # -- writer side ----------------------------------------------------
    def _begin(self, offset: int) -> int:
        (epoch,) = struct.unpack_from("<Q", self._mm, offset)
        struct.pack_into("<Q", self._mm, offset, epoch + 1)
        return epoch + 2

    def _commit(self, offset: int, epoch: int) -> None:
        struct.pack_into("<Q", self._mm, offset, epoch)

    def inc(self, index: int, n: float = 1.0) -> None:
        """Counter add (also the gauge ``add``); seqlocked."""
        offset = self._offsets[index]
        with self._lock:
            epoch = self._begin(offset)
            (value,) = struct.unpack_from("<d", self._mm, offset + 8)
            struct.pack_into("<d", self._mm, offset + 8, value + n)
            self._commit(offset, epoch)

    def set(self, index: int, value: float) -> None:
        offset = self._offsets[index]
        with self._lock:
            epoch = self._begin(offset)
            struct.pack_into("<d", self._mm, offset + 8, float(value))
            self._commit(offset, epoch)

    def observe(
        self, index: int, value: float, exemplar: "Exemplar | None" = None
    ) -> None:
        spec = self.specs[index]
        if spec.kind != HISTOGRAM:
            raise TypeError(f"slot {index} ({spec.name}) is not a histogram")
        bounds = spec.buckets
        bucket = 0
        while bucket < len(bounds) and value > bounds[bucket]:
            bucket += 1
        offset = self._offsets[index]
        base = offset + 8
        with self._lock:
            epoch = self._begin(offset)
            (count,) = struct.unpack_from("<Q", self._mm, base + 8 * bucket)
            struct.pack_into("<Q", self._mm, base + 8 * bucket, count + 1)
            sum_off = base + 8 * (len(bounds) + 1)
            (total,) = struct.unpack_from("<d", self._mm, sum_off)
            struct.pack_into("<d", self._mm, sum_off, total + float(value))
            (n,) = struct.unpack_from("<Q", self._mm, sum_off + 8)
            struct.pack_into("<Q", self._mm, sum_off + 8, n + 1)
            if spec.exemplars and exemplar is not None and exemplars_enabled():
                # Same epoch guards the exemplar bytes: a reader either
                # sees the whole (counts + exemplar) update or retries.
                ex_off = sum_off + 16 + _EXEMPLAR_BYTES * bucket
                self._mm[ex_off: ex_off + _EXEMPLAR_BYTES] = _encode_exemplar(
                    exemplar
                )
            self._commit(offset, epoch)

    # -- reader side ----------------------------------------------------
    def _read_slot(self, index: int) -> SlotValue:
        spec = self.specs[index]
        offset = self._offsets[index]
        payload = spec.payload_bytes
        for _ in range(_MAX_READ_RETRIES):
            (e1,) = struct.unpack_from("<Q", self._mm, offset)
            if e1 % 2:
                time.sleep(0.0001)
                continue
            raw = bytes(self._mm[offset + 8: offset + 8 + payload])
            (e2,) = struct.unpack_from("<Q", self._mm, offset)
            if e1 != e2:
                continue
            if spec.kind == HISTOGRAM:
                n_buckets = len(spec.buckets) + 1
                counts = struct.unpack_from(f"<{n_buckets}Q", raw, 0)
                total, n = struct.unpack_from("<dQ", raw, 8 * n_buckets)
                exemplars: tuple = ()
                if spec.exemplars:
                    ex_base = 8 * n_buckets + 16
                    exemplars = tuple(
                        _decode_exemplar(
                            raw[ex_base + _EXEMPLAR_BYTES * b:
                                ex_base + _EXEMPLAR_BYTES * (b + 1)]
                        )
                        for b in range(n_buckets)
                    )
                return SlotValue(
                    spec, bucket_counts=tuple(counts), sum=total, count=n,
                    exemplars=exemplars,
                )
            (value,) = struct.unpack_from("<d", raw, 0)
            return SlotValue(spec, value=value)
        return SlotValue(spec, torn=True)

    def read(self) -> PlaneSnapshot:
        """A torn-safe snapshot of every slot."""
        return PlaneSnapshot(
            path=self.path,
            meta=dict(self.meta),
            slots=tuple(self._read_slot(i) for i in range(len(self.specs))),
        )


# ---------------------------------------------------------------------------
# Scraping and merging
# ---------------------------------------------------------------------------
def scrape_planes(
    directory: str, pattern: str = "metrics-*.shm"
) -> list[PlaneSnapshot]:
    """Read every plane in ``directory`` (skips unreadable/foreign files).

    This is the router's zero-IPC scrape path: it touches only the mmap'd
    files, never a worker pipe — a dead or wedged worker's last published
    values remain scrapeable.
    """
    out = []
    for path in sorted(glob.glob(os.path.join(directory, pattern))):
        try:
            plane = MetricsPlane.open(path)
        except (PlaneSchemaError, OSError):
            continue
        try:
            out.append(plane.read())
        finally:
            plane.close()
    return out


def merge_snapshots(
    snapshots: Iterable[PlaneSnapshot],
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Fold plane snapshots into one registry view.

    Counters and histogram buckets *sum* across planes; gauges
    *max-merge* (the fleet-wide value of "snapshot version lag" is the
    worst worker's, not an average).  Torn slots are skipped — a bounded
    seqlock retry must degrade to omission, never to a half-written
    bucket vector.
    """
    registry = registry or MetricsRegistry()
    gauges: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for snapshot in snapshots:
        for slot in snapshot.slots:
            if slot.torn:
                continue
            spec = slot.spec
            labels = dict(spec.labels)
            if spec.kind == COUNTER:
                registry.counter(spec.name, spec.help).inc(
                    max(0.0, slot.value), **labels
                )
            elif spec.kind == GAUGE:
                key = (spec.name, spec.labels)
                if key not in gauges or slot.value > gauges[key]:
                    gauges[key] = slot.value
                    registry.gauge(spec.name, spec.help).set(slot.value, **labels)
            else:
                hist = registry.histogram(
                    spec.name, spec.help, buckets=spec.buckets
                )
                hist.merge_raw(slot.bucket_counts, slot.sum, **labels)
                if slot.exemplars and any(
                    e is not None for e in slot.exemplars
                ):
                    hist.merge_exemplars(slot.exemplars, **labels)
    return registry


def merged_registry(
    directory: str,
    base: MetricsRegistry | None = None,
    pattern: str = "metrics-*.shm",
) -> MetricsRegistry:
    """Scrape ``directory`` and merge into a fresh (or given) registry."""
    return merge_snapshots(scrape_planes(directory, pattern), registry=base)


__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "MetricsPlane",
    "PlaneSchemaError",
    "PlaneSnapshot",
    "SlotSpec",
    "SlotValue",
    "merge_snapshots",
    "merged_registry",
    "scrape_planes",
]
