"""Case studies (Section V-E): why geocoding is not enough.

Reproduces the paper's three failure modes on the synthetic world:

1. Parse confusion — similar complex names send the geocode to the wrong
   residential area (the paper's "San Yi Li" vs "San Yi Xi Li", 258 m off).
2. Coarse POI database — several addresses in different buildings collapse
   onto one geocoded point at the complex centroid.
3. Preference blindness — two addresses in the same building with
   different delivery locations (doorstep vs the convenience-store-style
   pickup point) get the same geocode.

For each, the script shows the geocoder error and what DLInfMA infers.

Run:  python examples/case_studies.py
"""

from collections import defaultdict

import numpy as np

from repro.core import DLInfMA, DLInfMAConfig
from repro.eval import Workload
from repro.geo import haversine_m
from repro.synth import SpotKind, downbj_config, generate_dataset


def err_m(a, b) -> float:
    return haversine_m(a.lng, a.lat, b.lng, b.lat)


def main() -> None:
    dataset = generate_dataset(downbj_config(seed=7))
    workload = Workload.from_dataset(dataset)
    city = dataset.city

    print("Fitting DLInfMA ...")
    model = DLInfMA(DLInfMAConfig())
    model.fit(
        workload.trips, workload.addresses, workload.ground_truth,
        workload.train_ids, workload.val_ids, projection=workload.projection,
    )
    delivered = dataset.delivered_address_ids
    inferred = model.predict(delivered)

    def report(address_id: str, label: str) -> None:
        address = workload.addresses[address_id]
        truth = workload.ground_truth[address_id]
        geo_err = err_m(address.geocode, truth)
        our_err = err_m(inferred[address_id], truth) if address_id in inferred else float("nan")
        print(f"  [{label}] {address.text!r}")
        print(f"    geocoding error: {geo_err:7.1f} m   DLInfMA error: {our_err:7.1f} m")

    # ------------------------------------------------------------------
    print("\nCase 1: parse confusion (similar complex names)")
    confused = []
    for address_id in delivered:
        address = workload.addresses[address_id]
        building = city.buildings[address.building_id]
        x, y = city.projection.to_xy(address.geocode.lng, address.geocode.lat)
        if np.hypot(x - building.x, y - building.y) > 150.0:
            confused.append(address_id)
    if confused:
        for address_id in confused[:3]:
            report(address_id, "confused")
    else:
        print("  (no parse-confused address in this sample)")

    # ------------------------------------------------------------------
    print("\nCase 2: coarse POI database (one geocode, many buildings)")
    by_geocode = defaultdict(list)
    for address_id in delivered:
        g = workload.addresses[address_id].geocode
        by_geocode[(round(g.lng, 4), round(g.lat, 4))].append(address_id)
    shared = [ids for ids in by_geocode.values()
              if len({workload.addresses[a].building_id for a in ids}) > 1]
    if shared:
        group = max(shared, key=len)
        print(f"  {len(group)} addresses across "
              f"{len({workload.addresses[a].building_id for a in group})} buildings "
              "share (approximately) one geocode:")
        for address_id in group[:4]:
            report(address_id, "coarse")
    else:
        print("  (no shared-geocode group in this sample)")

    # ------------------------------------------------------------------
    print("\nCase 3: customer preference (same building, different locations)")
    by_building = defaultdict(list)
    for address_id in delivered:
        by_building[workload.addresses[address_id].building_id].append(address_id)
    shown = 0
    for building_id, ids in by_building.items():
        spots = {city.addresses[a].spot_id for a in ids}
        if len(spots) > 1 and shown < 2:
            kinds = {city.spots[s].kind for s in spots}
            print(f"  building {building_id}: {len(ids)} addresses, "
                  f"{len(spots)} delivery locations ({', '.join(k.value for k in kinds)})")
            for address_id in ids[:3]:
                kind = city.spots[city.addresses[address_id].spot_id].kind
                report(address_id, kind.value)
            shown += 1
    if not shown:
        print("  (no preference-split building in this sample)")

    # ------------------------------------------------------------------
    errors_geo = [err_m(workload.addresses[a].geocode, workload.ground_truth[a]) for a in delivered]
    errors_ours = [err_m(inferred[a], workload.ground_truth[a]) for a in delivered if a in inferred]
    print(f"\nOverall over {len(delivered)} delivered addresses:")
    print(f"  geocoding MAE: {np.mean(errors_geo):6.1f} m")
    print(f"  DLInfMA  MAE:  {np.mean(errors_ours):6.1f} m")


if __name__ == "__main__":
    main()
