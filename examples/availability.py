"""Application 2 (Section VI-C): customer availability inference.

Availability labels built from *recorded* confirmation times are skewed by
batch confirmations; after DLInfMA finds the delivery locations, the actual
delivery time is recovered from the stay point near the inferred location.
This script compares hourly availability profiles built both ways against
the (simulation-known) true delivery times.

Run:  python examples/availability.py
"""

import numpy as np

from repro.apps import AvailabilityModel, actual_delivery_times
from repro.core import DLInfMA, DLInfMAConfig, extract_trip_stay_points
from repro.eval import Workload
from repro.synth import downbj_config, generate_dataset


def hourly_histogram(times: list[float]) -> np.ndarray:
    hist = np.zeros(24)
    for t in times:
        hist[int((t % 86_400.0) // 3_600.0)] += 1
    return hist / hist.sum() if hist.sum() else hist


def main() -> None:
    dataset = generate_dataset(downbj_config(seed=5))
    # Heavy delays make the recorded-vs-actual gap visible.
    trips = dataset.with_delays(0.8)
    workload = Workload.from_dataset(dataset, trips=trips)

    print("Fitting DLInfMA ...")
    model = DLInfMA(DLInfMAConfig())
    model.fit(
        workload.trips, workload.addresses, workload.ground_truth,
        workload.train_ids, workload.val_ids, projection=workload.projection,
    )
    delivered = dataset.delivered_address_ids
    locations = model.predict(delivered)

    stay_points = extract_trip_stay_points(workload.trips)
    corrected = actual_delivery_times(
        workload.trips, stay_points, locations, workload.projection
    )
    recorded = {}
    true_times = {}
    for sim in dataset.sim_trips:
        for waybill in next(t for t in workload.trips if t.trip_id == sim.trip.trip_id).waybills:
            recorded.setdefault(waybill.address_id, []).append(waybill.t_delivered)
            true_times.setdefault(waybill.address_id, []).append(
                sim.actual_delivery_time[waybill.waybill_id]
            )

    # How far are the two label sources from the truth, on average?
    def mean_abs_gap(estimate: dict) -> float:
        gaps = []
        for address_id, times in estimate.items():
            truth = true_times.get(address_id)
            if not truth or len(truth) != len(times):
                continue
            gaps.extend(abs(a - b) for a, b in zip(sorted(times), sorted(truth)))
        return float(np.mean(gaps))

    print(f"\nmean |label time - true delivery time|:")
    print(f"  recorded confirmation times: {mean_abs_gap(recorded):7.0f} s")
    print(f"  DLInfMA-corrected times:     {mean_abs_gap(corrected):7.0f} s")

    # Availability windows for the most active address.
    busiest = max(corrected, key=lambda a: len(corrected[a]))
    model_corrected = AvailabilityModel().fit(corrected)
    model_recorded = AvailabilityModel().fit(recorded)
    prof_c = model_corrected.profile(busiest)
    prof_r = model_recorded.profile(busiest)
    truth_hist = hourly_histogram(true_times[busiest])

    print(f"\nAddress {busiest} ({len(corrected[busiest])} deliveries):")
    print(f"  true peak delivery hour:        {truth_hist.argmax():02d}:00")
    print(f"  corrected-profile peak hour:    {prof_c.hourly().argmax():02d}:00")
    print(f"  recorded-profile peak hour:     {prof_r.hourly().argmax():02d}:00")
    threshold = 0.5 * float(prof_c.hourly().max())
    windows = prof_c.windows(threshold)
    print(f"  availability windows (corrected, >=50% of peak): "
          f"{[(f'{s:02d}:00', f'{e:02d}:00') for s, e in windows]}")


if __name__ == "__main__":
    main()
