"""Building-level inference (Section II: "our solution can also be easily
adapted to building-level inference") and the deployed store's fallback.

Fits DLInfMA at address level, derives building-level locations two ways —
(a) the store's mode-over-addresses aggregation and (b) direct
building-level feature extraction + the trained selector — and shows how a
never-seen address is answered by the building tier.

Run:  python examples/building_level.py
"""

from collections import Counter

import numpy as np

from repro.apps import DeliveryLocationStore, QuerySource
from repro.core import DLInfMA, DLInfMAConfig, infer_building_locations
from repro.eval import Workload, evaluate
from repro.geo import haversine_m
from repro.synth import downbj_config, generate_dataset
from repro.trajectory import Address


def building_ground_truth(dataset):
    """Most common true delivery spot per building."""
    votes = {}
    for record in dataset.city.addresses.values():
        votes.setdefault(record.building_id, Counter())[record.spot_id] += 1
    out = {}
    for building_id, counter in votes.items():
        spot = dataset.city.spots[counter.most_common(1)[0][0]]
        out[building_id] = dataset.city.projection.unproject_point(spot.x, spot.y)
    return out


def main() -> None:
    dataset = generate_dataset(downbj_config(seed=11))
    workload = Workload.from_dataset(dataset)

    print("Fitting DLInfMA at address level ...")
    model = DLInfMA(DLInfMAConfig())
    model.fit(
        workload.trips, workload.addresses, workload.ground_truth,
        workload.train_ids, workload.val_ids, projection=workload.projection,
    )
    delivered = dataset.delivered_address_ids
    address_locations = model.predict(delivered)

    buildings = sorted({workload.addresses[a].building_id for a in delivered})
    truth = building_ground_truth(dataset)

    # (a) store aggregation: mode of member addresses' inferred locations.
    store = DeliveryLocationStore(address_locations, workload.addresses)
    store_locations = {
        b: p for b, p in store.building_locations.items() if b in truth
    }
    # (b) direct building-level inference with the trained selector.
    direct_locations = infer_building_locations(model.extractor, model.selector, buildings)

    res_store = evaluate(store_locations, truth)
    res_direct = evaluate({b: p for b, p in direct_locations.items() if b in truth}, truth)
    print(f"\nBuilding-level accuracy over {len(buildings)} buildings:")
    print(f"  store aggregation (mode):   MAE {res_store.mae:6.1f} m  β50 {res_store.beta50:5.1f}%")
    print(f"  direct building inference:  MAE {res_direct.mae:6.1f} m  β50 {res_direct.beta50:5.1f}%")

    # A brand-new address in a known building: the fallback chain answers.
    known_building = buildings[0]
    member = next(a for a in delivered if workload.addresses[a].building_id == known_building)
    newcomer = Address(
        address_id="new-customer",
        text="never seen before, same building",
        building_id=known_building,
        geocode=workload.addresses[member].geocode,
        poi_category=0,
    )
    result = store.query(newcomer)
    err = haversine_m(
        result.location.lng, result.location.lat,
        truth[known_building].lng, truth[known_building].lat,
    )
    print(f"\nNever-seen address in building {known_building}:")
    print(f"  answered by the {result.source.value!r} tier, {err:.1f} m from the "
          "building's modal delivery location")
    assert result.source == QuerySource.BUILDING


if __name__ == "__main__":
    main()
