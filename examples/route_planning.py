"""Application 1 (Section VI-B): route planning for new couriers.

Plans a delivery tour for a batch of waybills three ways — on geocoded
locations, on DLInfMA-inferred locations, and on the (normally unknown)
ground truth — then scores each plan by how long the tour *actually* is
when the courier walks to the real delivery locations in the planned
order.  Inferred locations should recover most of the gap between the
geocode plan and the oracle plan.

Run:  python examples/route_planning.py
"""

import numpy as np

from repro.apps import DeliveryLocationStore, RoutePlanner, route_length
from repro.core import DLInfMA, DLInfMAConfig
from repro.eval import Workload
from repro.synth import downbj_config, generate_dataset


def actual_tour_length(city, order, start_xy) -> float:
    """Length of a tour executed over the TRUE delivery locations."""
    true_points = np.array(
        [city.projection.to_xy(*_true(city, a).as_tuple()) for a in order]
    )
    return route_length(true_points, list(range(len(order))), start_xy)


def _true(city, address):
    return city.true_location(address.address_id)


def main() -> None:
    dataset = generate_dataset(downbj_config(seed=3))
    workload = Workload.from_dataset(dataset)
    city = dataset.city

    print("Fitting DLInfMA for the location store ...")
    model = DLInfMA(DLInfMAConfig())
    model.fit(
        workload.trips, workload.addresses, workload.ground_truth,
        workload.train_ids, workload.val_ids, projection=workload.projection,
    )
    delivered = dataset.delivered_address_ids
    inferred_store = DeliveryLocationStore(model.predict(delivered), workload.addresses)
    geocode_store = DeliveryLocationStore(
        {a: workload.addresses[a].geocode for a in delivered}, workload.addresses
    )
    oracle_store = DeliveryLocationStore(
        {a: workload.ground_truth[a] for a in delivered}, workload.addresses
    )

    # A new courier gets a batch of 12 waybills in the test region.
    rng = np.random.default_rng(0)
    batch_ids = list(rng.choice(workload.test_ids, size=min(12, len(workload.test_ids)), replace=False))
    batch = [workload.addresses[a] for a in batch_ids]
    start_xy = city.station_xy
    print(f"\nPlanning a tour over {len(batch)} waybills from the station ...")

    rows = []
    for label, store in [
        ("geocoded locations", geocode_store),
        ("DLInfMA locations", inferred_store),
        ("ground truth (oracle)", oracle_store),
    ]:
        planner = RoutePlanner(store, city.projection)
        order, planned_len = planner.plan(batch, start_xy)
        actual_len = actual_tour_length(city, order, start_xy)
        rows.append((label, planned_len, actual_len))

    print(f"\n{'planned on':<24} {'planned(m)':>12} {'actual(m)':>12}")
    print("-" * 50)
    for label, planned, actual in rows:
        print(f"{label:<24} {planned:12.0f} {actual:12.0f}")

    geo_actual = rows[0][2]
    ours_actual = rows[1][2]
    oracle_actual = rows[2][2]
    if geo_actual > oracle_actual:
        recovered = (geo_actual - ours_actual) / (geo_actual - oracle_actual) * 100.0
        print(f"\nDLInfMA recovers {recovered:.0f}% of the geocode-vs-oracle tour gap.")


if __name__ == "__main__":
    main()
