"""Quickstart: infer delivery locations from courier trajectories.

Generates a small synthetic courier world (standing in for the paper's
proprietary JD Logistics data), runs the full DLInfMA pipeline, and
compares the inferred delivery locations against the geocoder output.

Run:  python examples/quickstart.py
"""

from repro.core import DLInfMA, DLInfMAConfig
from repro.eval import Workload, evaluate, metrics_table
from repro.synth import downbj_config, generate_dataset


def main() -> None:
    # 1. Data: trips (trajectories + waybills with possibly delayed
    #    confirmation times), an address book with geocodes, and ground
    #    truth delivery locations for the labeled (train/val) regions.
    print("Generating a DowBJ-like synthetic dataset ...")
    dataset = generate_dataset(downbj_config())
    workload = Workload.from_dataset(dataset)
    stats = dataset.stats()
    print(
        f"  {stats['trips']:.0f} trips, {stats['addresses']:.0f} addresses, "
        f"{stats['waybills']:.0f} waybills, {stats['gps_points']:.0f} GPS points"
    )
    print(
        f"  split: {len(workload.train_ids)} train / {len(workload.val_ids)} val "
        f"/ {len(workload.test_ids)} test (spatially disjoint regions)"
    )

    # 2. Fit DLInfMA: stay-point extraction -> candidate pool (D=40 m)
    #    -> per-address candidate retrieval -> features -> LocMatcher.
    print("\nFitting DLInfMA (LocMatcher selector) ...")
    model = DLInfMA(DLInfMAConfig())
    model.fit(
        workload.trips,
        workload.addresses,
        workload.ground_truth,
        workload.train_ids,
        workload.val_ids,
        projection=workload.projection,
    )
    for stage, seconds in model.timings.items():
        print(f"  {stage:<28} {seconds:6.2f}s")
    print(f"  candidate pool size: {len(model.pool)}")

    # 3. Predict the held-out addresses and evaluate.
    predictions = model.predict(workload.test_ids)
    geocodes = {a: workload.addresses[a].geocode for a in workload.test_ids}
    results = {
        "Geocoding": evaluate(geocodes, workload.ground_truth),
        "DLInfMA": evaluate(predictions, workload.ground_truth),
    }
    print()
    print(metrics_table(results, title="Held-out test addresses:"))

    # 4. Inspect one address end to end.
    address_id = workload.test_ids[0]
    example = model.examples[address_id]
    print(f"\nAddress {address_id}: {example.n_candidates} candidates, "
          f"{example.n_deliveries} deliveries")
    scores = model.selector.scores(example)
    best = scores.argmax()
    print(f"  selected candidate #{example.candidate_ids[best]} "
          f"with probability {scores[best]:.2f}")
    print(f"  inferred location: {predictions[address_id]}")
    print(f"  ground truth:      {workload.ground_truth[address_id]}")


if __name__ == "__main__":
    main()
