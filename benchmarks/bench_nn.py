"""LocMatcher compute-core benchmark: eager vs lazy/fused engines.

Times the three inference paths through :mod:`repro.nn` — per-example
eager scoring (the pre-refactor baseline), eager batched scoring, and
the jit-replayed fused schedule — plus full ``fit`` under both engines,
on the DowntownBJ preset.  Machine-readable results land in
``benchmarks/results/BENCH_nn.json``; the same gates run as assertions
so a perf or parity regression fails the suite.

``test_nn_bench_smoke`` is the CI-sized variant: synthetic examples
instead of the generated city, gating only fused-not-slower-than-eager
and numerical parity (wall-clock speedup gates need a quiet machine).
"""

import time

import numpy as np

from repro.core import LocMatcherConfig, LocMatcherSelector
from repro.core.pipeline import DLInfMAConfig, build_artifacts
from repro.eval import series_table
from repro.nn import eager_mode, lazy_mode
from tests.core.test_locmatcher import synthetic_examples

#: Fixed epoch budget (patience never triggers) so both engines do
#: identical optimization work and the timing ratio is pure engine cost.
#: 24 epochs reflects a realistic convergence budget (the paper trains
#: LocMatcher to early stopping, typically tens of epochs) and amortizes
#: the one-time trace/compile cost the lazy engine pays per fit.
FIT_EPOCHS = 24
FIT_CFG = LocMatcherConfig(max_epochs=FIT_EPOCHS, patience=FIT_EPOCHS)

#: Fits per engine when timing (best-of, to shed scheduler noise).
FIT_REPEAT = 2

#: How many addresses each inference measurement scores.
N_INFER = 512


def _labeled_examples(workload, config=None):
    artifacts = build_artifacts(
        workload.trips, workload.addresses, workload.projection,
        config or DLInfMAConfig(),
    )
    out = []
    for address_id in workload.train_ids + workload.val_ids + workload.test_ids:
        example = artifacts.examples.get(address_id)
        truth = workload.ground_truth.get(address_id)
        if example is None or truth is None:
            continue
        artifacts.extractor.label_example(example, truth)
        out.append(example)
    return out


def _timed_fit(examples, mode):
    best, selector = np.inf, None
    for _ in range(FIT_REPEAT):
        with mode():
            selector = LocMatcherSelector(config=FIT_CFG)
            t0 = time.perf_counter()
            selector.fit(examples)
            best = min(best, time.perf_counter() - t0)
    return best, selector


def _rate(fn, n_addresses, repeat=3):
    fn()  # warm-up: traces plans / compiles kernels outside the timing
    best = min(_once(fn) for _ in range(repeat))
    return n_addresses / max(best, 1e-9)


def _once(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _inference_rates(selector, examples):
    batch = [examples[i % len(examples)] for i in range(N_INFER)]

    def serial_eager():
        with eager_mode():
            for example in batch:
                selector.scores(example)

    def batched_eager():
        with eager_mode():
            selector.scores_batch(batch)

    def batched_fused():
        with lazy_mode():
            selector.scores_batch(batch)

    return {
        "serial_eager_addr_s": _rate(serial_eager, N_INFER, repeat=1),
        "batched_eager_addr_s": _rate(batched_eager, N_INFER),
        "batched_fused_addr_s": _rate(batched_fused, N_INFER),
    }


def _score_parity(selector, examples):
    with lazy_mode():
        fused = selector.scores_batch(examples)
    with eager_mode():
        eager = selector.scores_batch(examples)
    return max(
        float(np.max(np.abs(f - e))) if f.size else 0.0
        for f, e in zip(fused, eager)
    )


def _payload(examples):
    from repro.nn import schedule

    eager_s, _ = _timed_fit(examples, eager_mode)
    lazy_s, selector = _timed_fit(examples, lazy_mode)
    rates = _inference_rates(selector, examples)
    parity = _score_parity(selector, examples)
    return {
        # Counters from the last executed (non-jit) schedule: movement
        # no-ops skipped and dying buffers reused as kernel outputs.
        "schedule": dict(schedule.last_schedule_info),
        "n_examples": len(examples),
        "fit": {
            "epochs": FIT_EPOCHS,
            "eager_s": eager_s,
            "lazy_s": lazy_s,
            "speedup": eager_s / max(lazy_s, 1e-9),
        },
        "inference": {
            "n_addresses": N_INFER,
            **rates,
            "fused_vs_serial": rates["batched_fused_addr_s"]
            / max(rates["serial_eager_addr_s"], 1e-9),
            "fused_vs_batched_eager": rates["batched_fused_addr_s"]
            / max(rates["batched_eager_addr_s"], 1e-9),
        },
        "parity": {"max_abs_score_diff": parity, "tolerance": 1e-5},
    }


def _report(payload, write_result, write_json, name):
    fit, infer = payload["fit"], payload["inference"]
    rows = [
        ("fit eager", f"{fit['eager_s']:.2f}s", "1.0x"),
        ("fit lazy+jit", f"{fit['lazy_s']:.2f}s", f"{fit['speedup']:.1f}x"),
        ("infer serial eager", f"{infer['serial_eager_addr_s']:.0f} addr/s", "1.0x"),
        ("infer batched eager", f"{infer['batched_eager_addr_s']:.0f} addr/s",
         f"{infer['batched_eager_addr_s'] / infer['serial_eager_addr_s']:.1f}x"),
        ("infer batched fused", f"{infer['batched_fused_addr_s']:.0f} addr/s",
         f"{infer['fused_vs_serial']:.1f}x"),
    ]
    text = series_table(
        rows,
        headers=["path", "rate", "speedup"],
        title=f"repro.nn compute core: eager vs fused ({name}), "
        f"score parity {payload['parity']['max_abs_score_diff']:.2e}",
    )
    write_result(name, text)
    write_json("BENCH_nn" if name == "nn_compute" else name, payload)


def test_nn_compute_core(dow_workload, write_result, write_json):
    examples = _labeled_examples(dow_workload)
    payload = _payload(examples)
    _report(payload, write_result, write_json, "nn_compute")

    assert payload["parity"]["max_abs_score_diff"] <= 1e-5
    assert payload["fit"]["speedup"] >= 2.0, payload["fit"]
    assert payload["inference"]["fused_vs_serial"] >= 5.0, payload["inference"]


def test_nn_bench_smoke(write_result, write_json):
    examples = synthetic_examples(48, seed=2)
    payload = _payload(examples)
    _report(payload, write_result, write_json, "nn_compute_smoke")

    # CI gate: the fused path must never lose to eager batched inference
    # or drift numerically; wall-clock speedup gates live in the full run.
    assert payload["parity"]["max_abs_score_diff"] <= 1e-5
    assert payload["inference"]["fused_vs_batched_eager"] >= 1.0, payload["inference"]
