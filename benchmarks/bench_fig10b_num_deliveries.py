"""Figure 10(b) — MAE by number-of-deliveries group on DowBJ.

Test addresses are split into three equal-frequency groups by how many
trips involve them; MAE of GeoCloud, MaxTC-ILC, GeoRank, UNet-based and
DLInfMA is reported per group.  Paper shape: annotation-based methods
improve with more deliveries; DLInfMA stays best in every group and is not
severely degraded on few-delivery addresses (distance still helps).
"""

from collections import Counter

import numpy as np

from repro.eval import error_meters, run_methods, series_table

METHODS = ["GeoCloud", "MaxTC-ILC", "GeoRank", "UNet-based", "DLInfMA"]


def _delivery_counts(workload):
    counts = Counter()
    for trip in workload.trips:
        for address_id in trip.address_ids:
            counts[address_id] += 1
    return counts


def test_fig10b_mae_by_delivery_count(dow_workload, write_result, benchmark):
    workload = dow_workload
    counts = _delivery_counts(workload)
    test_ids = [a for a in workload.test_ids if a in counts]
    ordered = sorted(test_ids, key=lambda a: counts[a])
    terciles = np.array_split(np.array(ordered), 3)

    runs = benchmark.pedantic(
        lambda: run_methods(workload, METHODS), rounds=1, iterations=1
    )

    rows = []
    group_mae: dict[tuple[str, int], float] = {}
    for g, group in enumerate(terciles):
        group_truth = {a: workload.ground_truth[a] for a in group}
        label = f"G{g+1} (<= {counts[group[-1]]} deliveries)"
        for name in METHODS:
            preds = {a: p for a, p in runs[name].predictions.items() if a in group_truth}
            errors = error_meters(preds, group_truth)
            mae = float(errors.mean())
            rows.append((label, name, mae, len(group)))
            group_mae[(name, g)] = mae
    text = series_table(
        rows,
        headers=["group", "method", "MAE(m)", "n"],
        title="Fig 10(b): MAE by # of deliveries (DowBJ-like)",
    )
    write_result("fig10b_num_deliveries", text)

    # The paper's claims: (1) DLInfMA is not severely degraded on
    # few-delivery addresses — it must win the lowest group, where
    # annotation-based methods lack data; (2) it stays competitive in
    # every group even as annotation methods catch up with more data.
    few = 0
    assert group_mae[("DLInfMA", few)] <= min(
        group_mae[(m, few)] for m in METHODS if m != "DLInfMA"
    )
    for g in range(3):
        ours = group_mae[("DLInfMA", g)]
        best = min(group_mae[(m, g)] for m in METHODS if m != "DLInfMA")
        assert ours <= max(best * 2.5, best + 15.0)
