"""Figure 10(a) — clustering distance selection.

MAE of DLInfMA while sweeping the candidate-pool clustering distance
D in {20, 30, 40, 50, 60} m on both datasets.  The paper reports a
U-shape: too-small D floods the selector with near-duplicate candidates,
too-large D degrades candidate precision; D = 40 m sits at the turn.
"""

import numpy as np

from repro.core import DLInfMA, DLInfMAConfig, LocMatcherConfig, build_artifacts
from repro.eval import evaluate, series_table

SWEEP_D = [20.0, 30.0, 40.0, 50.0, 60.0]


def _mae_at(workload, d):
    config = DLInfMAConfig(cluster_distance_m=d, locmatcher=LocMatcherConfig())
    artifacts = build_artifacts(workload.trips, workload.addresses, workload.projection, config)
    model = DLInfMA(config)
    model.fit(
        workload.trips, workload.addresses, workload.ground_truth,
        workload.train_ids, workload.val_ids,
        projection=workload.projection, artifacts=artifacts,
    )
    result = evaluate(model.predict(workload.test_ids), workload.ground_truth)
    return result.mae, len(artifacts.pool)


def test_fig10a_cluster_distance_sweep(dow_workload, sub_workload, write_result, benchmark):
    rows = []
    maes = {}
    for name, workload in (("DowBJ", dow_workload), ("SubBJ", sub_workload)):
        for d in SWEEP_D:
            if name == "DowBJ" and d == 40.0:
                mae, pool = benchmark.pedantic(_mae_at, args=(workload, d), rounds=1, iterations=1)
            else:
                mae, pool = _mae_at(workload, d)
            rows.append((name, d, mae, pool))
            maes[(name, d)] = mae
    text = series_table(
        rows,
        headers=["dataset", "D(m)", "MAE(m)", "pool size"],
        title="Fig 10(a): MAE vs clustering distance D (paper: minimum near 40 m)",
    )
    write_result("fig10a_cluster_distance", text)

    # Pool size must shrink monotonically as D grows.
    for name in ("DowBJ", "SubBJ"):
        pools = [r[3] for r in rows if r[0] == name]
        assert all(a >= b for a, b in zip(pools, pools[1:]))
    # The chosen D=40 should beat the extreme settings on average.
    avg = lambda d: np.mean([maes[("DowBJ", d)], maes[("SubBJ", d)]])
    assert avg(40.0) <= max(avg(20.0), avg(60.0)) + 1e-9
