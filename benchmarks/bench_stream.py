"""Streaming ingestion tier: sustained rate, freshness lag, gate checks.

Drives the full ``repro.stream`` pipeline — unbounded synthetic event
stream with bounded disorder and duplicates → bus → online stay-point
extraction → sharded incremental merge → gate-checked promotion into a
live :class:`~repro.serve.QueryServer` under concurrent query load — via
the same :func:`repro.stream.bench.run_stream_bench` harness the
``repro stream-bench`` CLI and the CI smoke gate use.  Records sustained
events/sec, freshness-lag percentiles (event arrival → servable
snapshot), the exhaustive ingest-outcome accounting (the zero-loss
proof), online-vs-batch stay parity, and the poisoned-batch rejection
probe.  Results land in ``benchmarks/results/BENCH_stream.json``.
"""

from repro.eval import series_table
from repro.stream.bench import StreamBenchConfig, run_stream_bench

DURATION_S = 3.0


def test_stream_bench(write_result, write_json):
    config = StreamBenchConfig(
        preset="tiny",
        duration_s=DURATION_S,
        serve_rate_rps=100.0,
        refresh_interval_s=0.5,
    )
    payload = run_stream_bench(config)

    ingest = payload["ingest"]
    freshness = payload["freshness"]
    promos = payload["promotions"]
    parity = payload["parity"]
    poison = payload["poison"]
    rows = [
        ("events offered", float(ingest["offered"])),
        ("events/sec sustained", ingest["events_per_sec"]),
        ("accepted", float(ingest.get("accepted", 0))),
        ("duplicates dropped", float(ingest.get("duplicate", 0))),
        ("late dropped", float(ingest.get("late", 0))),
        ("shed", float(ingest.get("shed", 0))),
        ("lost (late+shed)", float(ingest["lost"])),
        ("stays emitted", float(ingest["stays_emitted"])),
        ("freshness p50 (s)", freshness["p50_s"] or 0.0),
        ("freshness p95 (s)", freshness["p95_s"] or 0.0),
        ("promotions", float(promos["n_promoted"])),
        ("rejections", float(promos["n_rejected"])),
        ("serve errors", float(payload["serve"]["n_errors"])),
    ]
    text = series_table(
        [(name, value) for name, value in rows],
        headers=["metric", "value"],
        title="Streaming ingestion: rate, freshness, loss accounting",
    )
    write_result("BENCH_stream", text)
    write_json("BENCH_stream", payload)

    # The acceptance gates, asserted on the recorded artifact itself.
    assert payload["zero_loss"], ingest
    assert parity["equal"], parity
    assert promos["n_promoted"] >= 1, promos
    assert poison["rejected"] and poison["served_version_unchanged"], poison
    assert payload["serve"]["n_errors"] == 0, payload["serve"]
