"""Section V-F — pipeline stage timings.

The paper reports stay-point extraction (7 min over 66 M points), candidate
pool construction (1 min), and training times (GeoRank 0.2 min fastest,
DLInfMA 13.6 min, UNet-based 27 min slowest).  At our synthetic scale the
absolute numbers shrink, but the orderings should survive: pool
construction cheaper than stay-point extraction, GeoRank training fastest,
UNet-based slower than GeoRank.
"""

import time

from repro.eval import run_methods, series_table


def test_secVF_stage_timings(dow_workload, write_result, benchmark):
    workload = dow_workload
    runs = benchmark.pedantic(
        lambda: run_methods(workload, ["GeoRank", "UNet-based", "DLInfMA"]),
        rounds=1,
        iterations=1,
    )

    dlinfma = runs["DLInfMA"].method
    rows = [
        ("stay point extraction", dlinfma.timings["stay_point_extraction_s"]),
        ("candidate pool construction", dlinfma.timings["pool_construction_s"]),
        ("feature extraction", dlinfma.timings["feature_extraction_s"]),
        ("train: GeoRank", runs["GeoRank"].fit_seconds),
        ("train: UNet-based", runs["UNet-based"].fit_seconds),
        ("train: DLInfMA (LocMatcher)", dlinfma.timings["training_s"]),
    ]
    text = series_table(
        rows,
        headers=["stage", "seconds"],
        title="Section V-F: pipeline stage timings",
    )
    write_result("secVF_stage_timings", text)

    timings = dict(rows)
    assert timings["train: GeoRank"] < timings["train: DLInfMA (LocMatcher)"]
    assert timings["train: GeoRank"] < timings["train: UNet-based"]
