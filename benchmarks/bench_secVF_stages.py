"""Section V-F — pipeline stage timings.

The paper reports stay-point extraction (7 min over 66 M points), candidate
pool construction (1 min), and training times (GeoRank 0.2 min fastest,
DLInfMA 13.6 min, UNet-based 27 min slowest).  At our synthetic scale the
absolute numbers shrink, but the orderings should survive: pool
construction cheaper than stay-point extraction, GeoRank training fastest,
UNet-based slower than GeoRank.

Stage timings come from the engine's ``RunContext`` (``model.context``),
which every registered stage reports into; the same numbers are emitted as
a machine-readable JSON artifact next to the text table.
"""

from repro.eval import run_methods, series_table


def test_secVF_stage_timings(dow_workload, write_result, write_json, benchmark):
    workload = dow_workload
    runs = benchmark.pedantic(
        lambda: run_methods(workload, ["GeoRank", "UNet-based", "DLInfMA"]),
        rounds=1,
        iterations=1,
    )

    dlinfma = runs["DLInfMA"].method
    engine = dlinfma.context.timings
    rows = [
        ("stay point extraction", engine["stay_point_extraction_s"]),
        ("candidate pool construction", engine["pool_construction_s"]),
        ("profile build", engine["profile_build_s"]),
        ("feature extraction", engine["feature_extraction_s"]),
        ("train: GeoRank", runs["GeoRank"].fit_seconds),
        ("train: UNet-based", runs["UNet-based"].fit_seconds),
        ("train: DLInfMA (LocMatcher)", engine["training_s"]),
    ]
    text = series_table(
        rows,
        headers=["stage", "seconds"],
        title="Section V-F: pipeline stage timings",
    )
    write_result("secVF_stage_timings", text)
    write_json(
        "secVF_stage_timings",
        {
            "engine_timings_s": dict(engine),
            "engine_counters": dict(dlinfma.context.counters),
            "train_seconds": {
                "GeoRank": runs["GeoRank"].fit_seconds,
                "UNet-based": runs["UNet-based"].fit_seconds,
                "DLInfMA": engine["training_s"],
            },
        },
    )

    timings = dict(rows)
    assert timings["train: GeoRank"] < timings["train: DLInfMA (LocMatcher)"]
    assert timings["train: GeoRank"] < timings["train: UNet-based"]
