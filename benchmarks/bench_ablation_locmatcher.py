"""Ablation — LocMatcher hyperparameter sensitivity.

The paper grid-searches hyperparameters (Section V-B) and lands on z=8,
3 encoder layers.  This bench sweeps the representation width and depth on
the DowBJ-like data to document how flat/sharp that choice is at our
scale.
"""

from dataclasses import replace

from repro.core import DLInfMA, DLInfMAConfig, LocMatcherConfig, build_artifacts
from repro.eval import evaluate, series_table

SWEEP = [
    ("z=4,layers=3", dict(z=4)),
    ("z=8,layers=3", dict()),  # paper setting
    ("z=16,layers=3", dict(z=16)),
    ("z=8,layers=1", dict(n_layers=1)),
    ("z=8,heads=1", dict(n_heads=1)),
]


def test_ablation_locmatcher_hparams(dow_workload, write_result, benchmark):
    workload = dow_workload
    artifacts = build_artifacts(
        workload.trips, workload.addresses, workload.projection, DLInfMAConfig()
    )

    def run(overrides):
        config = DLInfMAConfig(locmatcher=replace(LocMatcherConfig(), **overrides))
        model = DLInfMA(config)
        model.fit(
            workload.trips, workload.addresses, workload.ground_truth,
            workload.train_ids, workload.val_ids,
            projection=workload.projection, artifacts=artifacts,
        )
        return evaluate(model.predict(workload.test_ids), workload.ground_truth)

    rows = []
    results = {}
    for label, overrides in SWEEP:
        if label == "z=8,layers=3":
            result = benchmark.pedantic(run, args=(overrides,), rounds=1, iterations=1)
        else:
            result = run(overrides)
        results[label] = result
        rows.append((label, result.mae, result.beta50))
    text = series_table(
        rows,
        headers=["configuration", "MAE(m)", "beta50(%)"],
        title="Ablation: LocMatcher width/depth (DowBJ-like)",
    )
    write_result("ablation_locmatcher_hparams", text)

    # The paper setting must be within striking distance of the sweep best.
    best_mae = min(r.mae for r in results.values())
    assert results["z=8,layers=3"].mae <= max(best_mae * 1.8, best_mae + 15.0)
