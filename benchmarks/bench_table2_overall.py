"""Table II — overall effectiveness on both datasets.

Every baseline, DLInfMA, every selector variant and every feature ablation,
scored with MAE / P95 / beta50 on spatially held-out test addresses.

Expected shape (the paper's findings, not its absolute numbers):
- DLInfMA best on all three metrics on both datasets;
- Annotation and MaxTC worst; Geocoding poor;
- GeoRank / UNet-based the strongest baselines on beta50;
- variants (independent classification, pairwise ranking, LSTM encoder,
  grid pooling) below DLInfMA; dropping TC or distance hurts the most.
"""

import pytest

from repro.eval import evaluate, metrics_table, run_methods

ORDER = [
    "Geocoding", "Annotation", "GeoCloud", "GeoRank", "UNet-based",
    "MinDist", "MaxTC", "MaxTC-ILC",
    "DLInfMA",
    "DLInfMA-GBDT", "DLInfMA-RF", "DLInfMA-MLP", "DLInfMA-RkDT",
    "DLInfMA-RkNet", "DLInfMA-PN", "DLInfMA-Grid",
    "DLInfMA-nTC", "DLInfMA-nD", "DLInfMA-nP", "DLInfMA-nLC",
    "DLInfMA-nA", "DLInfMA-LCaddr",
]


@pytest.mark.parametrize("dataset_name", ["DowBJ", "SubBJ"])
def test_table2_overall_effectiveness(
    dataset_name, dow_workload, sub_workload, write_result, benchmark
):
    workload = dow_workload if dataset_name == "DowBJ" else sub_workload

    def run_all():
        runs = run_methods(workload, ORDER)
        return {
            name: evaluate(run.predictions, workload.ground_truth)
            for name, run in runs.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = metrics_table(
        results, title=f"Table II ({dataset_name}-like): overall effectiveness", order=ORDER
    )
    write_result(f"table2_overall_{dataset_name.lower()}", text)

    ours = results["DLInfMA"]
    baselines = ["Geocoding", "Annotation", "GeoCloud", "GeoRank", "UNet-based",
                 "MinDist", "MaxTC", "MaxTC-ILC"]
    best_baseline_beta = max(results[b].beta50 for b in baselines)
    # Headline claims, as soft shape checks.
    assert ours.beta50 >= best_baseline_beta - 1.0, "DLInfMA should lead on beta50"
    assert ours.mae <= min(results[b].mae for b in baselines) * 1.15
    assert results["MaxTC"].beta50 <= ours.beta50
    assert results["Annotation"].beta50 <= ours.beta50
