"""Table I — dataset statistics for the DowBJ-like and SubBJ-like presets.

The paper reports trips, addresses, waybills and GPS points per dataset;
this bench regenerates those rows for the synthetic stand-ins and times
dataset generation itself.
"""

from repro.eval import series_table
from repro.synth import downbj_config, generate_dataset


def test_table1_dataset_statistics(dow_dataset, sub_dataset, write_result, benchmark):
    rows = []
    for ds in (dow_dataset, sub_dataset):
        stats = ds.stats()
        rows.append(
            (
                ds.name,
                stats["couriers"],
                stats["trips"],
                stats["addresses"],
                stats["waybills"],
                stats["gps_points"],
                stats["buildings"],
            )
        )
    text = series_table(
        rows,
        headers=["dataset", "couriers", "trips", "addresses", "waybills", "gps_pts", "buildings"],
        title="Table I: dataset statistics (synthetic stand-ins)",
    )
    write_result("table1_datasets", text)

    # Time a fresh end-to-end generation of the DowBJ-like preset.
    benchmark.pedantic(lambda: generate_dataset(downbj_config()), rounds=2, iterations=1)
