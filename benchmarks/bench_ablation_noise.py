"""Ablation — robustness to GPS noise.

Not a paper table, but a design-space check DESIGN.md calls for: the
trajectory-based method depends on stay-point detection, which degrades as
GPS scatter approaches the stay threshold (D_max = 20 m).  We sweep the
simulator's noise sigma and compare DLInfMA with the annotation-based
GeoRank.  Expected: both degrade with noise; DLInfMA retains its lead at
realistic urban noise (<= ~8 m); extreme noise hurts the trajectory method
more (stays fragment).
"""

from dataclasses import replace

from repro.eval import Workload, evaluate, run_methods, series_table
from repro.synth import downbj_config, generate_dataset

SIGMAS = [4.0, 8.0, 12.0]


def test_ablation_gps_noise(write_result, benchmark):
    def sweep():
        rows = []
        for sigma in SIGMAS:
            base = downbj_config()
            config = replace(base, sim=replace(base.sim, gps_sigma_m=sigma))
            dataset = generate_dataset(config)
            workload = Workload.from_dataset(dataset)
            runs = run_methods(workload, ["GeoRank", "DLInfMA"])
            for name, run in runs.items():
                result = evaluate(run.predictions, workload.ground_truth)
                rows.append((sigma, name, result.mae, result.beta50))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = series_table(
        rows,
        headers=["gps sigma (m)", "method", "MAE(m)", "beta50(%)"],
        title="Ablation: GPS noise robustness (DowBJ-like)",
    )
    write_result("ablation_gps_noise", text)

    by = {(sigma, name): mae for sigma, name, mae, _ in rows}
    # DLInfMA keeps a lead at realistic noise levels.
    for sigma in (4.0, 8.0):
        assert by[(sigma, "DLInfMA")] <= by[(sigma, "GeoRank")] * 1.1
