"""Shared benchmark fixtures: datasets generated once per session.

Every bench writes the table/figure it regenerates to
``benchmarks/results/<name>.txt`` (and the same text is returned for
pytest-benchmark's captured output), so the EXPERIMENTS.md record can be
refreshed by re-running ``pytest benchmarks/ --benchmark-only``.
"""

import pathlib

import pytest

from repro.eval import Workload
from repro.synth import downbj_config, generate_dataset, subbj_config

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def dow_dataset():
    return generate_dataset(downbj_config())


@pytest.fixture(scope="session")
def sub_dataset():
    return generate_dataset(subbj_config())


@pytest.fixture(scope="session")
def dow_workload(dow_dataset):
    return Workload.from_dataset(dow_dataset)


@pytest.fixture(scope="session")
def sub_workload(sub_dataset):
    return Workload.from_dataset(sub_dataset)


@pytest.fixture(scope="session")
def write_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> str:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return text

    return _write


@pytest.fixture(scope="session")
def write_json():
    """Machine-readable companion to ``write_result``.

    Dict payloads are stamped with a ``run_meta`` provenance block (git
    sha, timestamp, config fingerprint of the payload itself) so saved
    artifacts can be matched to the code + config that produced them.
    """
    import json

    from repro.obs import run_metadata

    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, payload) -> pathlib.Path:
        if isinstance(payload, dict) and "run_meta" not in payload:
            payload = {"run_meta": run_metadata({"benchmark": name}), **payload}
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[json written to {path}]")
        return path

    return _write
