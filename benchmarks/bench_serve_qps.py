"""Serving-tier throughput and latency (Figure 14 deployment, online half).

Load-tests :mod:`repro.serve` over the DowntownBJ-scale synthetic city:
a closed loop for saturated QPS across cache configurations, an open loop
(Poisson arrivals) for tail latency at a controlled rate, and a refresh
churning the sharded store mid-load to demonstrate the copy-on-write
atomic swap serves zero errors during rebuilds.  A ``multiprocess``
section then benches the mmap'd-columnar-snapshot worker pool
(:mod:`repro.serve.mp`) at 1/2/4 workers — per-request and batched cold
paths, refresh churn through the durable publish protocol, and
snapshot-load percentiles.  Results land in
``benchmarks/results/BENCH_serve.json``.
"""

import json
import os
import random
import threading
import time

from repro.eval import series_table
from repro.obs.health import SLO
from repro.obs.trace import configure_tracing, disable_tracing
from repro.serve import (
    GeohashShardStrategy,
    LoadGenerator,
    ProcessRouter,
    QueryServer,
    ServeStatus,
    ServerConfig,
    ShardedLocationStore,
    SnapshotPublisher,
)

#: Cold worker-pool config: no result cache, generous deadline (the
#: closed loops saturate a shared single-core runner).
MP_CONFIG = ServerConfig(queue_capacity=256, cache_capacity=0,
                         default_timeout_s=10.0)
MP_BATCH = 512

DURATION_S = 1.0
N_CLIENTS = 4

#: The objectives every scenario is verdicted against (live windows, with
#: burn rates); lenient enough for shared CI runners, tight enough to
#: catch a deadlocked worker pool or a broken cache.
BENCH_SLOS = [
    SLO(name="p95-latency", metric="serve_request_latency_seconds",
        kind="quantile", quantile=0.95, objective=0.25),
    SLO(name="error-rate", metric="serve_requests_total",
        kind="error_rate", objective=0.01, bad=(("status", ("error",)),)),
]


def _run(store, config, address_ids, seed, refresh_with=None, workload="closed",
         rate=500.0):
    with QueryServer(store, config) as server:
        generator = LoadGenerator(server, address_ids, random.Random(seed))
        stop = threading.Event()
        churn = None
        if refresh_with is not None:
            def _churn():
                while not stop.wait(0.05):
                    server.apply_refresh(refresh_with)

            churn = threading.Thread(target=_churn)
            churn.start()
        if workload == "closed":
            report = generator.run_closed(n_clients=N_CLIENTS, duration_s=DURATION_S,
                                          slos=BENCH_SLOS)
        else:
            report = generator.run_open(rate_rps=rate, duration_s=DURATION_S,
                                        slos=BENCH_SLOS)
        if churn is not None:
            stop.set()
            churn.join()
        return report


def _closed_batched(router, address_ids, seed, n_clients=2, duration_s=0.75,
                    churn=None):
    """Closed loop over ``query_batch``: the worker pool's native shape.

    Returns ``(ids_per_s, n_ok, n_not_ok, errors)`` where ``errors`` are
    the non-OK ``(status, error)`` pairs (expected empty).
    """
    counts = [0] * n_clients
    bad: list[tuple[str, str | None]] = []

    def client(k: int) -> None:
        rng = random.Random(seed + k)
        end = time.monotonic() + duration_s
        while time.monotonic() < end:
            chunk = [address_ids[rng.randrange(len(address_ids))]
                     for _ in range(MP_BATCH)]
            for response in router.query_batch(chunk):
                if response.status is ServeStatus.OK:
                    counts[k] += 1
                else:
                    bad.append((response.status.value, response.error))

    threads = [threading.Thread(target=client, args=(k,))
               for k in range(n_clients)]
    t0 = time.monotonic()
    for thread in threads:
        thread.start()
    stop = threading.Event()
    n_refreshes = 0
    if churn is not None:
        while any(t.is_alive() for t in threads):
            if stop.wait(0.1):
                break
            churn()
            n_refreshes += 1
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - t0
    return sum(counts) / elapsed, sum(counts), n_refreshes, bad


def _multiprocess_section(workload, locations, snapshot_dir,
                          single_process_cold_qps):
    """Worker-pool numbers: per-request + batched cold QPS at 1/2/4 workers,
    refresh churn through the durable publish path, snapshot-load tail."""
    address_ids = sorted(workload.addresses)
    store = ShardedLocationStore(
        locations, workload.addresses,
        strategy=GeohashShardStrategy(8, precision=6),
    )
    publisher = SnapshotPublisher(snapshot_dir)
    publisher.publish(store)

    workers = {}
    for n_workers in (1, 2, 4):
        with ProcessRouter(snapshot_dir, n_workers=n_workers,
                           config=MP_CONFIG) as router:
            per_request = LoadGenerator(
                router, address_ids, random.Random(0)
            ).run_closed(n_clients=4, duration_s=0.75)
            batched_qps, n_ok, _, bad = _closed_batched(
                router, address_ids, seed=n_workers
            )
            stats = router.stats()
        workers[str(n_workers)] = {
            "per_request_qps": per_request.throughput_rps,
            "per_request_errors": per_request.n_errors,
            "batched_ids_per_s": batched_qps,
            "batched_n_ok": n_ok,
            "batched_not_ok": bad[:5],
            "snapshot_load_ms": stats["snapshot_load_ms"],
        }

    # Refresh churn through the full durable protocol (log -> swap ->
    # snapshot file -> version-counter flip) while two clients hammer the
    # pool: the acceptance bar is zero non-OK responses.
    with ProcessRouter(snapshot_dir, n_workers=2, config=MP_CONFIG) as router:
        churn_qps, churn_ok, n_refreshes, churn_bad = _closed_batched(
            router, address_ids, seed=99, duration_s=1.0,
            churn=lambda: publisher.refresh(store, locations),
        )
        churn_stats = router.stats()

    # Ring-search parity: the geohash spatial index must agree with the
    # exhaustive linear scan on every probe.
    rng = random.Random(5)
    parity = True
    for _ in range(40):
        aid = address_ids[rng.randrange(len(address_ids))]
        probe = workload.addresses[aid].geocode
        ring = store.nearest(probe.lng, probe.lat)
        linear = store.nearest(probe.lng, probe.lat, linear=True)
        if ring is None or linear is None or abs(ring[2] - linear[2]) > 1e-6:
            parity = False
            break

    cold_4w = workers["4"]["batched_ids_per_s"]
    return {
        "cpu_count": os.cpu_count(),
        "batch_size": MP_BATCH,
        "workers": workers,
        "single_process_cold_qps": single_process_cold_qps,
        "cold_qps_4w": cold_4w,
        "cold_speedup_4w_vs_single_process": (
            cold_4w / max(single_process_cold_qps, 1e-9)
        ),
        "refresh_churn": {
            "n_refreshes": n_refreshes,
            "n_ok": churn_ok,
            "ids_per_s": churn_qps,
            "not_ok": churn_bad[:5],
            "final_store_version": churn_stats["store_version"],
            "worker_restarts": churn_stats["worker_restarts"],
        },
        "snapshot_load_ms": churn_stats["snapshot_load_ms"],
        "nearest_ring_parity": parity,
        "note": (
            "Cold path resolves batches against the mmap'd columnar "
            "snapshot (vectorized lookup) vs. the single-process "
            "micro-batched cold scenario above (per-object dict walk). "
            f"On a {os.cpu_count()}-core runner the worker count buys "
            "isolation and page-cache sharing, not CPU parallelism; "
            "per-worker scaling numbers are reported unmassaged."
        ),
    }


def _observability_section(workload, locations, snapshot_dir, trace_dir):
    """Fleet observability on a *dedicated, fresh* snapshot dir.

    The shared-memory planes attach-preserve across runs, so the exact
    count-conservation assertion (per-worker counters summing to the
    router's totals) is only meaningful here, where nothing else has
    written to the planes — not in ``_multiprocess_section``, whose
    snapshot dir is reused across the 1/2/4-worker scenarios.
    """
    address_ids = sorted(workload.addresses)
    store = ShardedLocationStore(
        locations, workload.addresses,
        strategy=GeohashShardStrategy(8, precision=6),
    )
    publisher = SnapshotPublisher(snapshot_dir)
    publisher.publish(store)

    os.makedirs(trace_dir, exist_ok=True)
    merged_trace = os.path.join(trace_dir, "merged-trace.jsonl")
    configure_tracing(os.path.join(trace_dir, "router-trace.jsonl"))
    try:
        with ProcessRouter(snapshot_dir, n_workers=2,
                           config=MP_CONFIG) as router:
            rng = random.Random(7)
            n_issued = 0
            for _ in range(6):
                chunk = [address_ids[rng.randrange(len(address_ids))]
                         for _ in range(64)]
                n_issued += len(router.query_batch(chunk))
            router.stop()  # flush worker planes + span files before scraping
            merged = router.metrics().to_dict()
            fleet = router.fleet_verdict(BENCH_SLOS + [
                SLO(name="worker-restarts",
                    metric="serve_worker_restarts_total",
                    kind="max", objective=0),
            ]).to_dict()
            trace_stats = router.trace_dump(merged_trace)
    finally:
        disable_tracing()

    families = {m["name"]: m for m in merged["metrics"]}

    def status_sums(name):
        out = {}
        for sample in families.get(name, {}).get("samples", []):
            status = sample["labels"].get("status", "")
            out[status] = out.get(status, 0.0) + sample["value"]
        return out

    with open(merged_trace) as fh:
        spans = [json.loads(line) for line in fh]
    routes = {s["span_id"]: s for s in spans if s["name"] == "serve.route"}
    linked = [
        s for s in spans
        if s["name"] == "serve.request"
        and s.get("parent_id") in routes
        and s["trace_id"] == routes[s["parent_id"]]["trace_id"]
    ]

    return {
        "n_issued": n_issued,
        "router_requests_by_status": status_sums("serve_requests_total"),
        "worker_requests_by_status": status_sums(
            "serve_worker_requests_total"
        ),
        "fleet_slo": fleet,
        "trace": trace_stats,
        "n_cross_process_links": len(linked),
    }


def test_serve_qps(dow_workload, write_result, write_json, tmp_path):
    workload = dow_workload
    locations = dict(workload.ground_truth)
    address_ids = sorted(workload.addresses)

    scenarios = {}
    rows = []
    configs = [
        ("cached", ServerConfig(n_workers=4, queue_capacity=256)),
        ("uncached", ServerConfig(n_workers=4, queue_capacity=256,
                                  cache_capacity=0)),
        ("batched", ServerConfig(n_workers=4, queue_capacity=256,
                                 cache_capacity=0, batch_window_s=0.0005)),
    ]
    for name, config in configs:
        store = ShardedLocationStore(locations, workload.addresses, n_shards=8)
        report = _run(store, config, address_ids, seed=0)
        scenarios[name] = report.to_dict()
        rows.append((name, report.throughput_rps, report.latency_ms["p50"],
                     report.latency_ms["p99"], report.cache_hit_rate * 100.0))

    # Refresh churn: swaps every 50 ms while the closed loop hammers away.
    store = ShardedLocationStore(locations, workload.addresses, n_shards=8)
    churn_report = _run(store, configs[0][1], address_ids, seed=0,
                        refresh_with=locations)
    scenarios["cached+refresh-churn"] = churn_report.to_dict()
    rows.append(("cached+refresh-churn", churn_report.throughput_rps,
                 churn_report.latency_ms["p50"], churn_report.latency_ms["p99"],
                 churn_report.cache_hit_rate * 100.0))

    # Open loop at a fixed rate for honest tail latency.
    store = ShardedLocationStore(locations, workload.addresses, n_shards=8)
    open_report = _run(store, configs[0][1], address_ids, seed=0,
                       workload="open", rate=500.0)
    scenarios["open-500rps"] = open_report.to_dict()
    rows.append(("open-500rps", open_report.throughput_rps,
                 open_report.latency_ms["p50"], open_report.latency_ms["p99"],
                 open_report.cache_hit_rate * 100.0))

    multiprocess = _multiprocess_section(
        workload, locations, str(tmp_path / "snapshots"),
        single_process_cold_qps=scenarios["batched"]["throughput_rps"],
    )
    observability = _observability_section(
        workload, locations, str(tmp_path / "obs-snapshots"),
        str(tmp_path / "obs-traces"),
    )
    multiprocess["observability"] = observability
    for n_workers in ("1", "2", "4"):
        w = multiprocess["workers"][n_workers]
        rows.append((f"process-cold-{n_workers}w (batched)",
                     w["batched_ids_per_s"], 0.0, 0.0, 0.0))

    text = series_table(
        rows,
        headers=["scenario", "qps", "p50(ms)", "p99(ms)", "cache-hit(%)"],
        title="Serving tier: throughput / latency by configuration",
    )
    write_result("BENCH_serve", text)
    write_json("BENCH_serve", {
        "duration_s": DURATION_S,
        "scenarios": scenarios,
        "multiprocess": multiprocess,
    })

    for name, report_dict in scenarios.items():
        assert report_dict["n_errors"] == 0, (name, report_dict)
        assert report_dict["n_ok"] > 0, (name, report_dict)
        # Each scenario carries its queue-depth series and live SLO verdict.
        assert report_dict["queue_depth_series"], (name, report_dict)
        verdict = report_dict["slo"]
        assert verdict is not None and verdict["ok"], (name, verdict)
        assert len(verdict["results"]) == len(BENCH_SLOS), (name, verdict)
    # The swap is invisible to readers: zero non-OK outcomes during churn.
    assert churn_report.n_ok == churn_report.n_issued

    # -- worker-pool acceptance gates -----------------------------------
    for n_workers, w in multiprocess["workers"].items():
        assert w["per_request_errors"] == 0, (n_workers, w)
        assert w["batched_not_ok"] == [], (n_workers, w)
        assert w["snapshot_load_ms"]["p95"] >= 0.0, (n_workers, w)
    churn_mp = multiprocess["refresh_churn"]
    assert churn_mp["n_refreshes"] >= 2, churn_mp
    assert churn_mp["not_ok"] == [], churn_mp
    assert churn_mp["final_store_version"] > 1, churn_mp
    assert multiprocess["nearest_ring_parity"] is True
    assert multiprocess["cold_speedup_4w_vs_single_process"] >= 3.0, multiprocess

    # -- fleet observability gates (fresh planes, exact conservation) ---
    router_counts = observability["router_requests_by_status"]
    worker_counts = observability["worker_requests_by_status"]
    n_issued = observability["n_issued"]
    assert n_issued > 0
    assert sum(router_counts.values()) == n_issued, observability
    assert sum(worker_counts.values()) == n_issued, observability
    assert router_counts.get("ok") == worker_counts.get("ok") == n_issued, \
        observability
    assert observability["fleet_slo"]["ok"], observability["fleet_slo"]
    assert observability["n_cross_process_links"] >= 1, observability
    assert observability["trace"]["n_kept_spans"] >= 2, observability["trace"]
