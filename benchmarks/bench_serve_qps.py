"""Serving-tier throughput and latency (Figure 14 deployment, online half).

Load-tests :mod:`repro.serve` over the DowntownBJ-scale synthetic city:
a closed loop for saturated QPS across cache configurations, an open loop
(Poisson arrivals) for tail latency at a controlled rate, and a refresh
churning the sharded store mid-load to demonstrate the copy-on-write
atomic swap serves zero errors during rebuilds.  Results land in
``benchmarks/results/BENCH_serve.json``.
"""

import random
import threading

from repro.eval import series_table
from repro.obs.health import SLO
from repro.serve import (
    LoadGenerator,
    QueryServer,
    ServerConfig,
    ShardedLocationStore,
)

DURATION_S = 1.0
N_CLIENTS = 4

#: The objectives every scenario is verdicted against (live windows, with
#: burn rates); lenient enough for shared CI runners, tight enough to
#: catch a deadlocked worker pool or a broken cache.
BENCH_SLOS = [
    SLO(name="p95-latency", metric="serve_request_latency_seconds",
        kind="quantile", quantile=0.95, objective=0.25),
    SLO(name="error-rate", metric="serve_requests_total",
        kind="error_rate", objective=0.01, bad=(("status", ("error",)),)),
]


def _run(store, config, address_ids, seed, refresh_with=None, workload="closed",
         rate=500.0):
    with QueryServer(store, config) as server:
        generator = LoadGenerator(server, address_ids, random.Random(seed))
        stop = threading.Event()
        churn = None
        if refresh_with is not None:
            def _churn():
                while not stop.wait(0.05):
                    server.apply_refresh(refresh_with)

            churn = threading.Thread(target=_churn)
            churn.start()
        if workload == "closed":
            report = generator.run_closed(n_clients=N_CLIENTS, duration_s=DURATION_S,
                                          slos=BENCH_SLOS)
        else:
            report = generator.run_open(rate_rps=rate, duration_s=DURATION_S,
                                        slos=BENCH_SLOS)
        if churn is not None:
            stop.set()
            churn.join()
        return report


def test_serve_qps(dow_workload, write_result, write_json):
    workload = dow_workload
    locations = dict(workload.ground_truth)
    address_ids = sorted(workload.addresses)

    scenarios = {}
    rows = []
    configs = [
        ("cached", ServerConfig(n_workers=4, queue_capacity=256)),
        ("uncached", ServerConfig(n_workers=4, queue_capacity=256,
                                  cache_capacity=0)),
        ("batched", ServerConfig(n_workers=4, queue_capacity=256,
                                 cache_capacity=0, batch_window_s=0.0005)),
    ]
    for name, config in configs:
        store = ShardedLocationStore(locations, workload.addresses, n_shards=8)
        report = _run(store, config, address_ids, seed=0)
        scenarios[name] = report.to_dict()
        rows.append((name, report.throughput_rps, report.latency_ms["p50"],
                     report.latency_ms["p99"], report.cache_hit_rate * 100.0))

    # Refresh churn: swaps every 50 ms while the closed loop hammers away.
    store = ShardedLocationStore(locations, workload.addresses, n_shards=8)
    churn_report = _run(store, configs[0][1], address_ids, seed=0,
                        refresh_with=locations)
    scenarios["cached+refresh-churn"] = churn_report.to_dict()
    rows.append(("cached+refresh-churn", churn_report.throughput_rps,
                 churn_report.latency_ms["p50"], churn_report.latency_ms["p99"],
                 churn_report.cache_hit_rate * 100.0))

    # Open loop at a fixed rate for honest tail latency.
    store = ShardedLocationStore(locations, workload.addresses, n_shards=8)
    open_report = _run(store, configs[0][1], address_ids, seed=0,
                       workload="open", rate=500.0)
    scenarios["open-500rps"] = open_report.to_dict()
    rows.append(("open-500rps", open_report.throughput_rps,
                 open_report.latency_ms["p50"], open_report.latency_ms["p99"],
                 open_report.cache_hit_rate * 100.0))

    text = series_table(
        rows,
        headers=["scenario", "qps", "p50(ms)", "p99(ms)", "cache-hit(%)"],
        title="Serving tier: throughput / latency by configuration",
    )
    write_result("BENCH_serve", text)
    write_json("BENCH_serve", {"duration_s": DURATION_S, "scenarios": scenarios})

    for name, report_dict in scenarios.items():
        assert report_dict["n_errors"] == 0, (name, report_dict)
        assert report_dict["n_ok"] > 0, (name, report_dict)
        # Each scenario carries its queue-depth series and live SLO verdict.
        assert report_dict["queue_depth_series"], (name, report_dict)
        verdict = report_dict["slo"]
        assert verdict is not None and verdict["ok"], (name, verdict)
        assert len(verdict["results"]) == len(BENCH_SLOS), (name, verdict)
    # The swap is invisible to readers: zero non-OK outcomes during churn.
    assert churn_report.n_ok == churn_report.n_issued
