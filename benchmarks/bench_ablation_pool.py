"""Ablation — candidate-pool construction strategy.

DESIGN.md calls out two pool-construction choices to validate:

1. *Bi-weekly batching + incremental merge* vs one-shot clustering of all
   stay points (Section III-B adopts batching for efficiency; the result
   should be nearly identical pools).
2. *Hierarchical threshold clustering* vs grid merging: the grid must
   produce more (boundary-split) candidates for the same D.
"""

import numpy as np

from repro.core import DLInfMAConfig, build_candidate_pool, extract_trip_stay_points
from repro.eval import series_table


def test_ablation_pool_construction(dow_workload, write_result, benchmark):
    workload = dow_workload
    stay_points = [
        sp
        for stays in extract_trip_stay_points(workload.trips).values()
        for sp in stays
    ]
    projection = workload.projection

    one_shot = build_candidate_pool(
        stay_points, projection, 40.0, batch_period_s=1e18  # single batch
    )
    biweekly = benchmark.pedantic(
        lambda: build_candidate_pool(stay_points, projection, 40.0),
        rounds=3,
        iterations=1,
    )
    grid = build_candidate_pool(stay_points, projection, 40.0, method="grid")

    # Pool-to-pool distance: for each bi-weekly candidate, the nearest
    # one-shot candidate should be close (merging preserves the geometry).
    dists = []
    for candidate in biweekly.candidates:
        nearest = one_shot.nearest(candidate.x, candidate.y)
        dists.append(float(np.hypot(nearest.x - candidate.x, nearest.y - candidate.y)))
    rows = [
        ("one-shot hierarchical", len(one_shot)),
        ("bi-weekly + merge", len(biweekly)),
        ("grid merging (DLInfMA-Grid)", len(grid)),
        ("merge-vs-oneshot mean centroid gap (m)", float(np.mean(dists))),
    ]
    text = series_table(
        rows,
        headers=["pool strategy", "value"],
        title="Ablation: candidate pool construction (same stay points, D=40 m)",
    )
    write_result("ablation_pool_construction", text)

    assert abs(len(biweekly) - len(one_shot)) <= max(3, 0.15 * len(one_shot))
    assert float(np.mean(dists)) < 20.0
    assert len(grid) >= len(one_shot)
