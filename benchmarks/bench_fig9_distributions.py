"""Figure 9 — the four dataset distributions.

(a) distinct delivery locations per building, (b) CDF of deliveries per
address, (c) stay points per trip, (d) location candidates per address.
The paper's headline numbers: >22%/14% of buildings have more than one
delivery location; half of addresses have <5 (DowBJ) / <4 (SubBJ)
deliveries; average stays per trip 24/27; average candidates 32/38 (ours
are smaller-scale but the DowBJ<SubBJ ordering must hold).
"""

from collections import Counter

import numpy as np

from repro.core import DLInfMAConfig, build_artifacts, extract_trip_stay_points
from repro.eval import histogram_text, series_table


def _locations_per_building(dataset):
    by_building = {}
    for addr in dataset.city.addresses.values():
        by_building.setdefault(addr.building_id, set()).add(addr.spot_id)
    return Counter(len(spots) for spots in by_building.values())


def _deliveries_per_address(workload):
    counts = Counter()
    for trip in workload.trips:
        for address_id in trip.address_ids:
            counts[address_id] += 1
    return np.array(sorted(counts.values()))


def test_fig9a_delivery_locations_per_building(dow_dataset, sub_dataset, write_result, benchmark):
    blocks = []
    for ds in (dow_dataset, sub_dataset):
        hist = benchmark.pedantic(_locations_per_building, args=(ds,), rounds=1, iterations=1) \
            if ds is dow_dataset else _locations_per_building(ds)
        multi = sum(v for k, v in hist.items() if k > 1) / sum(hist.values()) * 100
        blocks.append(
            histogram_text(hist, title=f"Fig 9(a) {ds.name}: # delivery locations per building "
                                        f"(>1 location: {multi:.0f}% of buildings)")
        )
    write_result("fig9a_locations_per_building", "\n\n".join(blocks))


def test_fig9b_deliveries_per_address(dow_workload, sub_workload, write_result, benchmark):
    rows = []
    for name, wl in (("DowBJ", dow_workload), ("SubBJ", sub_workload)):
        counts = benchmark.pedantic(_deliveries_per_address, args=(wl,), rounds=1, iterations=1) \
            if wl is dow_workload else _deliveries_per_address(wl)
        rows.append(
            (
                name,
                float(np.median(counts)),
                float(counts.mean()),
                float((counts < 5).mean() * 100),
                int(counts.max()),
            )
        )
    text = series_table(
        rows,
        headers=["dataset", "median", "mean", "%<5", "max"],
        title="Fig 9(b): deliveries per address",
    )
    write_result("fig9b_deliveries_per_address", text)


def test_fig9c_stay_points_per_trip(dow_workload, sub_workload, write_result, benchmark):
    rows = []
    for name, wl in (("DowBJ", dow_workload), ("SubBJ", sub_workload)):
        stays = (
            benchmark.pedantic(extract_trip_stay_points, args=(wl.trips,), rounds=1, iterations=1)
            if wl is dow_workload
            else extract_trip_stay_points(wl.trips)
        )
        per_trip = np.array([len(v) for v in stays.values()])
        rows.append((name, float(per_trip.mean()), float(np.median(per_trip)), int(per_trip.max())))
    text = series_table(
        rows,
        headers=["dataset", "mean", "median", "max"],
        title="Fig 9(c): stay points per trip (paper: DowBJ 24 < SubBJ 27)",
    )
    write_result("fig9c_staypoints_per_trip", text)
    # The ordering the paper reports must hold.
    assert rows[0][1] < rows[1][1], "SubBJ must average more stays per trip"


def test_fig9d_candidates_per_address(dow_workload, sub_workload, write_result, benchmark):
    rows = []
    for name, wl in (("DowBJ", dow_workload), ("SubBJ", sub_workload)):
        build = lambda wl=wl: build_artifacts(wl.trips, wl.addresses, wl.projection, DLInfMAConfig())
        artifacts = (
            benchmark.pedantic(build, rounds=1, iterations=1) if wl is dow_workload else build()
        )
        n_cands = np.array([e.n_candidates for e in artifacts.examples.values()])
        rows.append((name, float(n_cands.mean()), float(np.median(n_cands)), int(n_cands.max()), len(artifacts.pool)))
    text = series_table(
        rows,
        headers=["dataset", "mean", "median", "max", "pool"],
        title="Fig 9(d): location candidates per address (paper: DowBJ 32 < SubBJ 38)",
    )
    write_result("fig9d_candidates_per_address", text)
    assert rows[0][1] < rows[1][1], "SubBJ must average more candidates per address"
