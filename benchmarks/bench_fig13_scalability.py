"""Figure 13 — inference scalability.

Inference time versus number of addresses for the heuristics, GeoCloud,
GeoRank, UNet-based and DLInfMA.  Paper shape: time grows linearly with
the number of addresses; heuristics fastest; DLInfMA faster than
UNet-based and practical (the paper reports ~1 K addresses/s; ours is a
pure-numpy substrate so the absolute rate differs).
"""

import time

import numpy as np

from repro.eval import run_methods, series_table

METHODS = ["GeoCloud", "GeoRank", "UNet-based", "MaxTC-ILC", "DLInfMA"]


def test_fig13_inference_scalability(dow_workload, write_result, benchmark):
    workload = dow_workload
    runs = run_methods(workload, METHODS)
    base_ids = workload.test_ids + workload.train_ids + workload.val_ids

    sizes = [50, 100, 200, 400]
    rows = []
    rates = {}
    for name in METHODS:
        method = runs[name].method
        for size in sizes:
            ids = [base_ids[i % len(base_ids)] for i in range(size)]
            t0 = time.perf_counter()
            method.predict(ids)
            elapsed = time.perf_counter() - t0
            rows.append((name, size, elapsed * 1e3, size / max(elapsed, 1e-9)))
            rates[(name, size)] = elapsed
    text = series_table(
        rows,
        headers=["method", "addresses", "time(ms)", "addr/s"],
        title="Fig 13: inference time vs # addresses (linear growth expected)",
    )
    write_result("fig13_scalability", text)

    # Linearity: quadrupling the input should not grow time superlinearly
    # by more than 2.5x the proportional amount.
    for name in METHODS:
        ratio = rates[(name, 400)] / max(rates[(name, 100)], 1e-9)
        assert ratio < 10.0, f"{name} scaling ratio {ratio}"

    # Benchmark DLInfMA inference throughput properly.
    dlinfma = runs["DLInfMA"].method
    ids = [base_ids[i % len(base_ids)] for i in range(200)]
    benchmark(lambda: dlinfma.predict(ids))
