"""Table III — robustness against confirmation delays (synthetic sweeps).

Delays are re-injected at p_d in {0.2, 0.6, 1.0} (batch-confirmation model
of Section V-D) and the main methods re-evaluated.  Paper shape:
- Geocoding is delay-invariant;
- annotation-based methods (Annotation, GeoCloud, GeoRank, UNet-based)
  degrade sharply and end up *worse than Geocoding* at p_d = 1.0;
- candidate-based heuristics are less sensitive;
- DLInfMA stays best across all delay levels.
"""

import pytest

from repro.eval import Workload, evaluate, metrics_table, run_methods

METHODS = [
    "Geocoding", "Annotation", "GeoCloud", "GeoRank", "UNet-based",
    "MinDist", "MaxTC", "MaxTC-ILC", "DLInfMA",
]
P_DELAYS = [0.2, 0.6, 1.0]


@pytest.mark.parametrize("dataset_name", ["DowBJ", "SubBJ"])
def test_table3_delay_robustness(
    dataset_name, dow_dataset, sub_dataset, write_result, benchmark
):
    dataset = dow_dataset if dataset_name == "DowBJ" else sub_dataset

    def sweep():
        tables = {}
        for p_delay in P_DELAYS:
            trips = dataset.with_delays(p_delay)
            workload = Workload.from_dataset(dataset, trips=trips)
            runs = run_methods(workload, METHODS)
            tables[p_delay] = {
                name: evaluate(run.predictions, workload.ground_truth)
                for name, run in runs.items()
            }
        return tables

    tables = benchmark.pedantic(sweep, rounds=1, iterations=1)

    blocks = []
    for p_delay, results in tables.items():
        blocks.append(
            metrics_table(
                results,
                title=f"Table III ({dataset_name}-like, p_d={p_delay}):",
                order=METHODS,
            )
        )
    write_result(f"table3_delays_{dataset_name.lower()}", "\n\n".join(blocks))

    # Shape checks.
    heavy = tables[1.0]
    light = tables[0.2]
    annotation_methods = ["Annotation", "GeoCloud", "GeoRank", "UNet-based"]
    # Annotation-based methods degrade with heavier delays...
    for name in annotation_methods:
        assert heavy[name].mae >= light[name].mae * 0.9
    # ...and at p_d=1.0 the annotation family loses to Geocoding on MAE.
    worst_annotation = max(heavy[m].mae for m in annotation_methods)
    assert worst_annotation > heavy["Geocoding"].mae * 0.9
    # DLInfMA stays on top at every delay level.
    for p_delay, results in tables.items():
        ours = results["DLInfMA"]
        best_other = min(r.mae for n, r in results.items() if n != "DLInfMA")
        assert ours.mae <= best_other * 1.25, f"DLInfMA not competitive at p_d={p_delay}"
