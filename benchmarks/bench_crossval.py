"""Spatial cross-validation of the headline comparison.

Beyond the paper: rotate the spatially disjoint test region over 3 folds
and report pooled MAE with bootstrap confidence intervals for the key
methods, so the Table II conclusion (DLInfMA leads) is not an artifact of
one split.
"""

from repro.eval import cross_validate, series_table

METHODS = ["Geocoding", "GeoCloud", "GeoRank", "DLInfMA"]


def test_crossval_headline_comparison(dow_dataset, write_result, benchmark):
    results = benchmark.pedantic(
        lambda: cross_validate(dow_dataset, METHODS, n_folds=3),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name in METHODS:
        cv = results[name]
        lo, hi = cv.mae_ci
        rows.append((name, cv.mae_mean, lo, hi, cv.beta50_mean))
    text = series_table(
        rows,
        headers=["method", "MAE(m)", "CI lo", "CI hi", "β50(%)"],
        title="3-fold spatial cross-validation (DowBJ-like), pooled errors",
    )
    write_result("crossval_headline", text)

    ours = results["DLInfMA"]
    for name in METHODS:
        if name == "DLInfMA":
            continue
        assert ours.mae_mean <= results[name].mae_mean * 1.1, name
    # DLInfMA's CI upper bound should sit below Geocoding's mean.
    assert ours.mae_ci[1] < results["Geocoding"].mae_mean
