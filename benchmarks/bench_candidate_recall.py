"""Diagnostic — candidate recall vs clustering distance D.

Explains the Figure 10(a) U-shape from the generation side: a selector can
never beat its candidate set, so recall@50 m of the retrieved candidates
upper-bounds beta50.  Small D keeps recall high but floods the selector
with near-duplicates; large D erodes candidate precision (recall at tight
radii collapses) — the two pressures whose balance sits near D = 40 m.
"""

from repro.core import DLInfMAConfig, build_artifacts
from repro.eval import candidate_recall, series_table

SWEEP_D = [20.0, 40.0, 60.0, 80.0]


def test_candidate_recall_vs_cluster_distance(dow_workload, write_result, benchmark):
    workload = dow_workload

    def recall_at(d):
        config = DLInfMAConfig(cluster_distance_m=d)
        artifacts = build_artifacts(
            workload.trips, workload.addresses, workload.projection, config
        )
        tight = candidate_recall(
            artifacts.examples, workload.ground_truth,
            artifacts.pool.projection, artifacts.pool, radius_m=20.0,
        )
        loose = candidate_recall(
            artifacts.examples, workload.ground_truth,
            artifacts.pool.projection, artifacts.pool, radius_m=50.0,
        )
        return tight, loose, len(artifacts.pool)

    rows = []
    recalls = {}
    for d in SWEEP_D:
        if d == 40.0:
            tight, loose, pool = benchmark.pedantic(recall_at, args=(d,), rounds=1, iterations=1)
        else:
            tight, loose, pool = recall_at(d)
        rows.append((d, tight * 100, loose * 100, pool))
        recalls[d] = (tight, loose)
    text = series_table(
        rows,
        headers=["D(m)", "recall@20m %", "recall@50m %", "pool"],
        title="Candidate recall vs clustering distance (DowBJ-like)",
    )
    write_result("candidate_recall_vs_d", text)

    # Tight-radius recall must degrade as candidates coarsen.
    assert recalls[20.0][0] >= recalls[80.0][0]
    # At the paper's D=40, the loose recall stays near-perfect: selection,
    # not generation, is the binding constraint.
    assert recalls[40.0][1] > 0.9
