"""Query server: worker pool, backpressure, deadlines, obs wiring."""

import threading

import pytest

from repro.apps import QuerySource
from repro.obs import get_registry
from repro.serve import (
    QueryRouter,
    QueryServer,
    ServeStatus,
    ServerConfig,
)
from tests.core.helpers import point_at


class GatedRouter(QueryRouter):
    """Router whose resolution blocks until released (concurrency probes)."""

    def __init__(self, store):
        super().__init__(store)
        self.entered = threading.Event()
        self.release = threading.Event()

    def resolve(self, address_id):
        self.entered.set()
        assert self.release.wait(5.0), "gate never released"
        return super().resolve(address_id)


class TestBasicServing:
    def test_query_resolves_with_provenance(self, served_world):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=2)) as server:
            response = server.query("a0")
            assert response.ok
            assert response.status is ServeStatus.OK
            assert response.result.source == QuerySource.ADDRESS
            assert response.cache_state == "miss"
            assert response.latency_s > 0
            # Second hit comes from the cache.
            again = server.query("a0")
            assert again.cache_state == "hit"
            assert again.result == response.result

    def test_unknown_address_is_structured_not_a_crash(self, served_world):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=1)) as server:
            response = server.query("never-seen")
            assert response.status is ServeStatus.UNKNOWN_ADDRESS
            assert response.result is None
            assert "never-seen" in response.error
            # The worker survives and keeps serving.
            assert server.query("a1").ok

    def test_fallback_tiers_travel_through_the_server(self, served_world):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=1)) as server:
            assert server.query("a0").result.source == QuerySource.ADDRESS
            # a8..a11 have no inferred location; b-buildings 0..2 all have
            # located addresses, so the building tier answers.
            assert server.query("a8").result.source == QuerySource.BUILDING

    def test_lifecycle_guards(self, served_world):
        _, _, store = served_world
        server = QueryServer(store, ServerConfig(n_workers=1))
        with pytest.raises(RuntimeError):
            server.submit("a0")
        server.start()
        with pytest.raises(RuntimeError):
            server.start()
        server.stop()
        server.stop()  # idempotent
        with pytest.raises(RuntimeError):
            server.submit("a0")


class TestBackpressure:
    def test_full_queue_rejects_immediately(self, served_world):
        _, _, store = served_world
        router = GatedRouter(store)
        config = ServerConfig(n_workers=1, queue_capacity=1)
        with QueryServer(store, config, router=router) as server:
            held = server.submit("a0", timeout_s=5.0)
            assert router.entered.wait(5.0)   # worker is busy with a0
            queued = server.submit("a1", timeout_s=5.0)
            rejected = server.submit("a2", timeout_s=5.0)
            assert rejected.done()            # no waiting: instant verdict
            response = rejected.result()
            assert response.status is ServeStatus.REJECTED
            assert "queue full" in response.error
            router.release.set()
            assert held.result().ok
            assert queued.result().ok
        counts = server.stats()["requests_by_status"]
        assert counts["rejected"] == 1
        assert counts["ok"] == 2

    def test_client_side_deadline(self, served_world):
        _, _, store = served_world
        router = GatedRouter(store)
        config = ServerConfig(n_workers=1, queue_capacity=4)
        with QueryServer(store, config, router=router) as server:
            held = server.submit("a0", timeout_s=5.0)
            assert router.entered.wait(5.0)
            starved = server.submit("a1", timeout_s=0.05)
            response = starved.result()
            assert response.status is ServeStatus.TIMED_OUT
            router.release.set()
            assert held.result().ok
        counts = server.stats()["requests_by_status"]
        assert counts["timed_out"] == 1

    def test_worker_discards_expired_queued_work(self, served_world):
        _, _, store = served_world
        router = GatedRouter(store)
        config = ServerConfig(n_workers=1, queue_capacity=4)
        with QueryServer(store, config, router=router) as server:
            held = server.submit("a0", timeout_s=5.0)
            assert router.entered.wait(5.0)
            starved = server.submit("a1", timeout_s=0.01)
            import time
            time.sleep(0.05)                  # expire it while queued
            router.release.set()
            assert held.result().ok
            assert starved.result().status is ServeStatus.TIMED_OUT


class TestRefresh:
    def test_apply_refresh_swaps_and_invalidates_cache(self, served_world):
        addresses, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=2)) as server:
            before = server.query("a0")
            assert server.query("a0").cache_state == "hit"
            moved = point_at(999.0, 0.0)
            version = server.apply_refresh({"a0": moved})
            assert version == 2
            after = server.query("a0")
            assert after.cache_state == "miss"   # cache dropped on swap
            assert after.result.location == moved
            assert before.result.location != moved

    def test_refresh_mid_load_causes_zero_errors(self, served_world):
        """Acceptance: atomic shard swap is invisible to the query path."""
        addresses, locations, store = served_world
        config = ServerConfig(n_workers=4, queue_capacity=256,
                              cache_ttl_s=0.005)
        ids = sorted(addresses)
        with QueryServer(store, config) as server:
            stop = threading.Event()
            moved = {aid: point_at(1000.0 + i, 0.0)
                     for i, aid in enumerate(ids)}

            def churn():
                flip = False
                while not stop.wait(0.0005):
                    server.apply_refresh(moved if flip else locations,
                                         replace=flip)
                    flip = not flip

            churner = threading.Thread(target=churn)
            churner.start()
            responses = []
            for i in range(600):
                responses.append(server.query(ids[i % len(ids)],
                                              timeout_s=5.0))
            stop.set()
            churner.join()
        bad = [r for r in responses
               if r.status not in (ServeStatus.OK,)]
        assert bad == []
        assert store.swap_stats.swaps > 0


class TestObservability:
    def test_metrics_are_registered_and_labeled(self, served_world):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=2)) as server:
            server.query("a0")
            server.query("a0")
            server.query("missing-id")
        registry = get_registry()
        requests = registry.counter("serve_requests_total")
        assert requests.value(status="ok") == 2
        assert requests.value(status="unknown_address") == 1
        latency = registry.histogram("serve_request_latency_seconds")
        assert latency.count(source="address", cache="miss") == 1
        assert latency.count(source="address", cache="hit") == 1
        cache_events = registry.counter("serve_cache_events_total")
        assert cache_events.value(event="hit") == 1
        assert cache_events.value(event="miss") >= 1
        assert registry.gauge("serve_queue_depth").value() is not None

    def test_stats_snapshot_shape(self, served_world):
        _, _, store = served_world
        config = ServerConfig(n_workers=3, queue_capacity=7,
                              batch_window_s=0.001)
        with QueryServer(store, config) as server:
            server.query("a0")
            stats = server.stats()
        assert stats["n_workers"] == 3
        assert stats["queue_capacity"] == 7
        assert stats["store_version"] == 1
        assert len(stats["shard_sizes"]) == store.n_shards
        assert stats["requests_by_status"]["ok"] == 1
        assert "cache" in stats and "batch" in stats

    def test_request_spans_are_emitted(self, served_world, tmp_path):
        from repro.obs import configure_tracing, disable_tracing, read_trace

        _, _, store = served_world
        trace_path = tmp_path / "serve-trace.jsonl"
        configure_tracing(trace_path)
        try:
            with QueryServer(store, ServerConfig(n_workers=1)) as server:
                server.query("a0")
        finally:
            disable_tracing()
        spans = read_trace(trace_path)
        serve_spans = [s for s in spans if s["name"] == "serve.request"]
        assert len(serve_spans) == 1
        assert serve_spans[0]["attributes"]["address_id"] == "a0"
        assert serve_spans[0]["attributes"]["status"] == "ok"


class TestMicroBatchedServing:
    def test_batched_server_answers_correctly_under_concurrency(
        self, served_world
    ):
        addresses, _, store = served_world
        config = ServerConfig(n_workers=4, queue_capacity=256,
                              cache_capacity=0, batch_window_s=0.002)
        ids = sorted(addresses)
        with QueryServer(store, config) as server:
            pendings = [server.submit(ids[i % len(ids)], timeout_s=5.0)
                        for i in range(64)]
            responses = [p.result() for p in pendings]
        assert all(r.ok for r in responses)
        stats = server.router.batch_stats()
        assert stats is not None
        assert stats.submitted == 64


class TestServerHealth:
    def test_worker_span_reparents_under_submitter(self, served_world, tmp_path):
        from repro.obs import configure_tracing, disable_tracing, read_trace, span

        _, _, store = served_world
        trace_path = tmp_path / "reparent-trace.jsonl"
        configure_tracing(trace_path)
        try:
            with QueryServer(store, ServerConfig(n_workers=1)) as server:
                with span("caller.batch"):
                    server.submit("a0").result()
        finally:
            disable_tracing()
        spans = {s["name"]: s for s in read_trace(trace_path)}
        request = spans["serve.request"]
        caller = spans["caller.batch"]
        # The worker runs on its own thread, yet its span threads back to
        # the submitting span instead of floating as a new trace root.
        assert request["parent_id"] == caller["span_id"]
        assert request["trace_id"] == caller["trace_id"]

    def test_health_windows_record_requests_and_depth(self, served_world):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=2)) as server:
            for _ in range(5):
                server.query("a0")
            stats = server.health.stats(60.0)
        assert stats.n == 5
        assert stats.errors == 0
        assert stats.quantile(0.5) is not None
        assert server.health.queue_depth_series()

    def test_live_verdict_from_server(self, served_world):
        from repro.obs.health import SLO

        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=2)) as server:
            for _ in range(10):
                server.query("a0")
            report = server.verdict([
                SLO(name="p95", metric="serve_request_latency_seconds",
                    objective=5.0, kind="quantile", quantile=0.95),
                SLO(name="err", metric="serve_requests_total",
                    objective=0.01, kind="error_rate"),
            ])
        assert report.source == "live"
        assert report.ok and report.exit_code == 0
