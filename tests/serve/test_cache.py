"""LRU + TTL cache: recency eviction, expiry, and counter accounting."""

import pytest

from repro.serve import TTLLRUCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestLRU:
    def test_hit_and_miss_counters(self, clock):
        cache = TTLLRUCache(capacity=2, ttl_s=10.0, clock=clock)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self, clock):
        cache = TTLLRUCache(capacity=2, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_existing_updates_without_eviction(self, clock):
        cache = TTLLRUCache(capacity=2, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a") == 10
        assert cache.get("b") == 2
        assert cache.stats().evictions == 0

    def test_invalidate_and_clear(self, clock):
        cache = TTLLRUCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.clear() == 1
        assert len(cache) == 0


class TestTTL:
    def test_entry_expires_after_ttl(self, clock):
        cache = TTLLRUCache(capacity=4, ttl_s=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(4.999)
        assert cache.get("a") == 1
        clock.advance(0.002)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_put_refreshes_ttl(self, clock):
        cache = TTLLRUCache(capacity=4, ttl_s=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(4.0)
        cache.put("a", 2)
        clock.advance(4.0)
        assert cache.get("a") == 2

    def test_invalid_parameters(self, clock):
        with pytest.raises(ValueError):
            TTLLRUCache(capacity=0)
        with pytest.raises(ValueError):
            TTLLRUCache(ttl_s=0.0)
