"""Micro-batcher: coalescing, dedup, and per-key error fan-out."""

import threading

import pytest

from repro.serve import MicroBatcher


class TestSingleThread:
    def test_single_submit_resolves(self):
        calls = []

        def batch_fn(keys):
            calls.append(list(keys))
            return {k: k.upper() for k in keys}

        batcher = MicroBatcher(batch_fn, max_batch=4, max_wait_s=0.0)
        assert batcher.submit("a") == "A"
        assert calls == [["a"]]
        stats = batcher.stats()
        assert stats.batches == 1
        assert stats.submitted == 1

    def test_missing_key_in_result_raises(self):
        batcher = MicroBatcher(lambda keys: {}, max_wait_s=0.0)
        with pytest.raises(KeyError):
            batcher.submit("a")

    def test_exception_value_is_raised_per_key(self):
        def batch_fn(keys):
            return {k: ValueError(k) if k == "bad" else k for k in keys}

        batcher = MicroBatcher(batch_fn, max_wait_s=0.0)
        assert batcher.submit("ok") == "ok"
        with pytest.raises(ValueError):
            batcher.submit("bad")

    def test_batch_fn_failure_propagates(self):
        def batch_fn(keys):
            raise RuntimeError("store down")

        batcher = MicroBatcher(batch_fn, max_wait_s=0.0)
        with pytest.raises(RuntimeError, match="store down"):
            batcher.submit("a")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda k: {}, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda k: {}, max_wait_s=-1.0)


class TestCoalescing:
    def test_concurrent_misses_share_batches(self):
        calls = []
        gate = threading.Barrier(8 + 1)

        def batch_fn(keys):
            calls.append(list(keys))
            return {k: k * 2 for k in keys}

        batcher = MicroBatcher(batch_fn, max_batch=8, max_wait_s=0.05)
        results = {}

        def worker(key):
            gate.wait()
            results[key] = batcher.submit(key)

        threads = [
            threading.Thread(target=worker, args=(f"k{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        gate.wait()
        for t in threads:
            t.join()
        assert results == {f"k{i}": f"k{i}" * 2 for i in range(8)}
        # 8 concurrent submits collapsed into far fewer evaluations.
        stats = batcher.stats()
        assert stats.batches == len(calls)
        assert stats.batches < 8
        assert stats.largest_batch >= 2
        assert sum(len(c) for c in calls) == 8  # every key evaluated once

    def test_duplicate_keys_deduplicate(self):
        calls = []
        gate = threading.Barrier(6 + 1)

        def batch_fn(keys):
            calls.append(list(keys))
            return {k: "v" for k in keys}

        batcher = MicroBatcher(batch_fn, max_batch=16, max_wait_s=0.05)

        def worker():
            gate.wait()
            assert batcher.submit("hot") == "v"

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        gate.wait()
        for t in threads:
            t.join()
        # "hot" was evaluated once per batch, never once per caller.
        assert all(c == ["hot"] for c in calls)
        stats = batcher.stats()
        assert stats.submitted == 6
        assert stats.coalesced >= 6 - stats.batches

    def test_full_batch_flushes_before_window(self):
        calls = []

        def batch_fn(keys):
            calls.append(list(keys))
            return {k: k for k in keys}

        # Window is huge; max_batch=1 forces immediate flush anyway.
        batcher = MicroBatcher(batch_fn, max_batch=1, max_wait_s=60.0)
        assert batcher.submit("a") == "a"
        assert calls == [["a"]]
