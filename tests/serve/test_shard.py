"""Sharded store: partitioning, copy-on-write swap, concurrent safety."""

import random
import threading

import pytest

from repro.apps import DeliveryLocationStore, QuerySource, UnknownAddressError
from repro.serve import (
    GeohashShardStrategy,
    HashShardStrategy,
    ProcessRouter,
    ShardedLocationStore,
    SnapshotPublisher,
)
from repro.serve.shard import _stable_hash
from tests.core.helpers import make_address, point_at


@pytest.fixture()
def world():
    addresses = {
        "a1": make_address("a1", "b1", (0.0, 0.0)),
        "a2": make_address("a2", "b1", (5.0, 0.0)),
        "a3": make_address("a3", "b1", (10.0, 0.0)),
        "a4": make_address("a4", "b2", (500.0, 0.0)),
    }
    locations = {
        "a1": point_at(20.0, 0.0),
        "a2": point_at(20.0, 0.0),
        "a3": point_at(300.0, 0.0),
    }
    return addresses, locations


class TestStrategies:
    def test_hash_strategy_in_range_and_deterministic(self):
        strategy = HashShardStrategy(4)
        ids = [f"a{i:04d}" for i in range(200)]
        shards = [strategy.shard_of(i) for i in ids]
        assert all(0 <= s < 4 for s in shards)
        assert shards == [strategy.shard_of(i) for i in ids]
        # Uniform-ish: every shard gets some of 200 ids.
        assert len(set(shards)) == 4

    def test_geohash_strategy_groups_nearby_addresses(self):
        strategy = GeohashShardStrategy(8, precision=5)
        # Two addresses a few meters apart share a geohash-5 cell
        # (~4.9 km x 4.9 km) and therefore a shard.
        near1 = make_address("n1", "b", (0.0, 0.0))
        near2 = make_address("n2", "b", (5.0, 5.0))
        assert strategy.shard_of("n1", near1) == strategy.shard_of("n2", near2)

    def test_geohash_strategy_falls_back_without_address(self):
        strategy = GeohashShardStrategy(8)
        assert 0 <= strategy.shard_of("nowhere", None) < 8

    def test_invalid_shard_counts(self):
        with pytest.raises(ValueError):
            HashShardStrategy(0)
        with pytest.raises(ValueError):
            GeohashShardStrategy(4, precision=0)


class TestQueryParity:
    """The sharded store answers exactly like the flat store."""

    @pytest.mark.parametrize("strategy_cls", [HashShardStrategy, GeohashShardStrategy])
    def test_all_tiers_match_flat_store(self, world, strategy_cls):
        addresses, locations = world
        flat = DeliveryLocationStore(locations, addresses)
        sharded = ShardedLocationStore(
            locations, addresses, strategy=strategy_cls(3)
        )
        probes = list(addresses.values()) + [
            make_address("new", "b1", (2.0, 2.0)),       # building tier
            make_address("s", "nowhere", (42.0, 0.0)),    # geocode tier
        ]
        for probe in probes:
            assert sharded.query(probe) == flat.query(probe), probe.address_id

    def test_query_id_and_unknown(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses)
        assert store.query_id("a1").source == QuerySource.ADDRESS
        with pytest.raises(UnknownAddressError):
            store.query_id("missing")
        with pytest.raises(KeyError):  # back-compat contract
            store.query_id("missing")

    def test_batch_resolution_mixes_results_and_errors(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses)
        out = store.query_ids_batch(["a1", "missing", "a4"])
        assert out["a1"].source == QuerySource.ADDRESS
        assert isinstance(out["missing"], UnknownAddressError)
        assert out["a4"].source == QuerySource.GEOCODE


class TestCopyOnWrite:
    def test_update_swaps_snapshot_and_bumps_version(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses, n_shards=4)
        before = store.snapshot()
        store.update({"a4": point_at(510.0, 0.0)})
        after = store.snapshot()
        assert after is not before
        assert after.version == before.version + 1
        # The old generation is untouched.
        assert "a4" not in {k for shard in before.shards for k in shard}
        assert store.query_id("a4").source == QuerySource.ADDRESS

    def test_untouched_shards_are_shared_not_copied(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses, n_shards=4)
        before = store.snapshot()
        store.update({"a4": point_at(510.0, 0.0)})
        after = store.snapshot()
        idx = store._strategy.shard_of("a4", addresses["a4"])
        shared = [
            i for i in range(4)
            if i != idx and after.shards[i] is before.shards[i]
        ]
        assert len(shared) == 3

    def test_empty_update_is_a_noop(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses)
        before = store.snapshot()
        store.update({})
        assert store.snapshot() is before

    def test_replace_rebuilds_everything(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses)
        store.replace({"a4": point_at(510.0, 0.0)})
        assert len(store) == 1
        assert store.query_id("a1").source != QuerySource.ADDRESS

    def test_building_fallback_is_global_across_shards(self, world):
        addresses, locations = world
        # Many shards: b1's addresses scatter, yet the building vote
        # still aggregates across all of them.
        store = ShardedLocationStore(locations, addresses, n_shards=16)
        flat = DeliveryLocationStore(locations, addresses)
        assert store.building_locations == flat.building_locations

    def test_merged_views(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses, n_shards=4)
        assert store.address_locations == locations
        assert len(store) == len(locations)
        assert sum(store.snapshot().shard_sizes()) == len(locations)


class TestShardAssignmentStability:
    """Shard assignment is a compatibility surface: the multi-process
    router derives a worker from the *shard* (``shard % n_workers``), so
    neither the hash nor the address→shard mapping may drift with worker
    count — or across releases."""

    #: Pinned crc32 values; a change here silently re-shards every
    #: deployed snapshot, so it must be a loud, deliberate break.
    PINNED_HASHES = {
        "": 0,
        "a0000": 1336914574,
        "a0001": 950567448,
        "addr-42": 3441695549,
        "courier/9": 4028651208,
    }

    def test_stable_hash_values_are_pinned(self):
        for key, expected in self.PINNED_HASHES.items():
            assert _stable_hash(key) == expected, key

    def test_hash_strategy_assignments_are_pinned(self):
        strategy = HashShardStrategy(8)
        ids = sorted(self.PINNED_HASHES)
        assert [strategy.shard_of(i) for i in ids] == [
            self.PINNED_HASHES[i] % 8 for i in ids
        ]

    def test_assignment_independent_of_worker_count(self, world, tmp_path):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses, n_shards=4)
        SnapshotPublisher(str(tmp_path)).publish(store)
        ids = list(addresses) + ["unseen-a", "unseen-b"]
        by_workers = {
            n: [ProcessRouter(str(tmp_path), n_workers=n).shard_for(i) for i in ids]
            for n in (1, 2, 4, 7)
        }
        # Address -> shard never moves when the pool is resized.
        assert len({tuple(v) for v in by_workers.values()}) == 1
        # Known ids follow the store's own strategy; unknown ids the hash.
        shards = by_workers[1]
        for aid, shard in zip(list(addresses), shards):
            assert shard == store.strategy.shard_of(aid, addresses[aid])
        for aid, shard in zip(ids[len(addresses):], shards[len(addresses):]):
            assert shard == _stable_hash(aid) % 4


class TestNearestParity:
    """The geohash ring search must agree with the exact linear scan."""

    def test_ring_matches_linear_scan(self):
        rng = random.Random(7)
        addresses, locations = {}, {}
        for i in range(150):
            aid = f"n{i:03d}"
            x, y = rng.uniform(-3000, 3000), rng.uniform(-3000, 3000)
            addresses[aid] = make_address(aid, f"b{i % 5}", (x, y))
            locations[aid] = point_at(x + rng.uniform(-40, 40), y + rng.uniform(-40, 40))
        store = ShardedLocationStore(
            locations, addresses, strategy=GeohashShardStrategy(4, precision=6)
        )
        for _ in range(60):
            probe = point_at(rng.uniform(-4000, 4000), rng.uniform(-4000, 4000))
            ring = store.nearest(probe.lng, probe.lat)
            linear = store.nearest(probe.lng, probe.lat, linear=True)
            assert ring is not None and linear is not None
            rid, rpt, rdist = ring
            lid, lpt, ldist = linear
            assert rdist == pytest.approx(ldist, abs=1e-6)
            assert rid == lid

    def test_empty_store_returns_none(self):
        store = ShardedLocationStore({}, {}, n_shards=2)
        assert store.nearest(0.0, 0.0) is None


class TestAtomicSwapUnderLoad:
    """Acceptance: a refresh mid-load causes zero query errors."""

    def test_concurrent_queries_during_refresh(self, world):
        addresses, locations = world
        store = ShardedLocationStore(locations, addresses, n_shards=4)
        ids = list(addresses)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            i = 0
            while not stop.is_set():
                try:
                    result = store.query_id(ids[i % len(ids)])
                    assert result.location is not None
                    assert result.source in (
                        QuerySource.ADDRESS, QuerySource.BUILDING,
                        QuerySource.GEOCODE,
                    )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                i += 1

        readers = [threading.Thread(target=reader) for _ in range(8)]
        for thread in readers:
            thread.start()
        moved = {aid: point_at(700.0 + i, 0.0) for i, aid in enumerate(ids)}
        for round_no in range(200):
            if round_no % 2 == 0:
                store.update(moved)
            else:
                store.replace(locations)
        stop.set()
        for thread in readers:
            thread.join()
        assert errors == []
        assert store.swap_stats.swaps == 200
        assert store.version == 201
