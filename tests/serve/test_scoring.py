"""Live model scoring in the serving path (ModelScoringTier + wiring)."""

import numpy as np
import pytest

from repro.apps import DeliveryLocationService, QuerySource
from repro.core import DLInfMAConfig
from repro.geo import Point
from repro.serve import ModelScoringTier, QueryRouter, ServerConfig
from repro.serve.shard import ShardedLocationStore
from tests.core.helpers import make_address, point_at


class _StubExample:
    def __init__(self, candidate_ids):
        self.candidate_ids = candidate_ids


class _StubSelector:
    """Batch-capable selector that records how it was called."""

    def __init__(self):
        self.batch_calls = []

    def predict_index_batch(self, examples):
        self.batch_calls.append(len(examples))
        return [0] * len(examples)


class _StubExtractor:
    def candidate_point(self, candidate_id):
        return Point(float(candidate_id), 0.0)


class _StubPipeline:
    def __init__(self, examples):
        self.examples = examples
        self.selector = _StubSelector()
        self.extractor = _StubExtractor()


@pytest.fixture()
def stub_world():
    addresses = {
        f"a{i}": make_address(f"a{i}", f"b{i % 2}", (float(i), 0.0))
        for i in range(6)
    }
    locations = {f"a{i}": point_at(float(i) + 0.5, 0.0) for i in range(6)}
    store = ShardedLocationStore(locations, addresses, n_shards=2)
    examples = {"a0": _StubExample([7]), "a1": _StubExample([9])}
    return _StubPipeline(examples), store


class TestModelScoringTier:
    def test_scorable_ids_answered_by_model(self, stub_world):
        pipeline, store = stub_world
        tier = ModelScoringTier(pipeline, store)
        out = tier.query_ids_batch(["a0", "a1"])
        assert out["a0"].source == QuerySource.MODEL
        assert out["a0"].location == Point(7.0, 0.0)
        assert out["a1"].location == Point(9.0, 0.0)
        # One batched forward for the whole burst, not one per key.
        assert pipeline.selector.batch_calls == [2]

    def test_mixed_batch_falls_back_to_store(self, stub_world):
        pipeline, store = stub_world
        tier = ModelScoringTier(pipeline, store)
        out = tier.query_ids_batch(["a0", "a3", "missing"])
        assert out["a0"].source == QuerySource.MODEL
        assert out["a3"].source == QuerySource.ADDRESS
        assert isinstance(out["missing"], KeyError)

    def test_router_batch_fn_enables_batcher(self, stub_world):
        pipeline, store = stub_world
        tier = ModelScoringTier(pipeline, store)
        router = QueryRouter.build(
            store, batch_window_s=0.0, batch_fn=tier.query_ids_batch
        )
        assert router.batcher is not None
        routed = router.resolve("a0")
        assert routed.result.source == QuerySource.MODEL
        # A cache hit must not re-invoke the model.
        router.resolve("a0")
        assert pipeline.selector.batch_calls == [1]


class TestLiveScoringServer:
    @pytest.fixture(scope="class")
    def service(self, tiny_workload):
        svc = DeliveryLocationService(
            tiny_workload.addresses,
            tiny_workload.projection,
            config=DLInfMAConfig(selector="maxtc-ilc"),  # fast, no NN training
        )
        svc.refresh(
            tiny_workload.trips,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
        )
        return svc

    def test_requires_fitted_pipeline(self, tiny_workload):
        svc = DeliveryLocationService(
            tiny_workload.addresses, tiny_workload.projection
        )
        with pytest.raises(RuntimeError, match="fitted"):
            svc.server(live_scoring=True)

    def test_model_answers_match_refresh_table(self, service, tiny_workload):
        example_backed = [
            a for a in tiny_workload.test_ids if a in service.pipeline.examples
        ]
        assert example_backed, "tiny workload should produce example-backed ids"
        config = ServerConfig(cache_capacity=0)  # force every query cold
        with service.server(config, live_scoring=True) as server:
            for address_id in example_backed[:4]:
                response = server.query(address_id)
                assert response.ok
                assert response.result.source == QuerySource.MODEL
                # Live scoring recomputes the same argmax the refresh stored.
                table = service.query_id(address_id)
                assert np.isclose(
                    response.result.location.lng, table.location.lng
                )
                assert np.isclose(
                    response.result.location.lat, table.location.lat
                )
