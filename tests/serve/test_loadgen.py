"""Load generator: seeded determinism, report math, end-to-end runs."""

import random

import pytest

from repro.apps.store import QueryResult, QuerySource
from repro.serve import (
    LoadGenerator,
    QueryServer,
    ServeResponse,
    ServeStatus,
    ServerConfig,
    build_report,
    closed_sequences,
    percentile,
    poisson_schedule,
)
from tests.core.helpers import point_at

IDS = [f"a{i}" for i in range(12)]


class TestDeterminism:
    """All randomness flows from the explicit rng; no module-level state."""

    def test_poisson_schedule_identical_at_same_seed(self):
        one = poisson_schedule(IDS, 200.0, 1.5, random.Random(42))
        two = poisson_schedule(IDS, 200.0, 1.5, random.Random(42))
        assert one == two
        assert len(one) > 100  # ~300 expected arrivals

    def test_poisson_schedule_differs_across_seeds(self):
        one = poisson_schedule(IDS, 200.0, 1.5, random.Random(1))
        two = poisson_schedule(IDS, 200.0, 1.5, random.Random(2))
        assert one != two

    def test_closed_sequences_identical_at_same_seed(self):
        one = closed_sequences(IDS, 4, 64, random.Random(7))
        two = closed_sequences(IDS, 4, 64, random.Random(7))
        assert one == two
        assert len(one) == 4
        assert all(len(seq) == 64 for seq in one)

    def test_global_random_state_is_untouched(self):
        random.seed(123)
        before = random.getstate()
        poisson_schedule(IDS, 100.0, 0.5, random.Random(0))
        closed_sequences(IDS, 2, 16, random.Random(0))
        assert random.getstate() == before

    def test_schedule_offsets_are_sorted_within_duration(self):
        schedule = poisson_schedule(IDS, 300.0, 0.5, random.Random(0))
        offsets = [r.offset_s for r in schedule]
        assert offsets == sorted(offsets)
        assert all(0.0 < t < 0.5 for t in offsets)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_schedule([], 100.0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            poisson_schedule(IDS, 0.0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            closed_sequences(IDS, 0, 8, random.Random(0))


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0

    def test_small_and_empty(self):
        assert percentile([], 99.0) == 0.0
        assert percentile([3.0], 50.0) == 3.0
        assert percentile([3.0], 99.0) == 3.0


def _response(status, latency=0.001, cache_state=None, source=None):
    result = (
        QueryResult(point_at(0.0, 0.0), source) if source is not None else None
    )
    return ServeResponse("a0", status, result, cache_state, latency)


class TestBuildReport:
    def test_counts_and_rates(self):
        responses = (
            [_response(ServeStatus.OK, 0.001, "hit", QuerySource.ADDRESS)] * 6
            + [_response(ServeStatus.OK, 0.002, "miss", QuerySource.BUILDING)] * 2
            + [_response(ServeStatus.REJECTED)] * 3
            + [_response(ServeStatus.TIMED_OUT)]
            + [_response(ServeStatus.UNKNOWN_ADDRESS)]
        )
        report = build_report("closed", responses, duration_s=2.0)
        assert report.n_issued == 13
        assert report.n_ok == 8
        assert report.n_rejected == 3
        assert report.n_timed_out == 1
        assert report.n_unknown == 1
        assert report.n_errors == 0
        assert report.throughput_rps == pytest.approx(4.0)
        assert report.cache_hit_rate == pytest.approx(6 / 8)
        assert report.by_source == {"address": 6, "building": 2}
        assert report.latency_ms["p50"] == pytest.approx(1.0)
        assert report.latency_ms["max"] == pytest.approx(2.0)

    def test_report_round_trips_and_renders(self):
        report = build_report(
            "open", [_response(ServeStatus.OK, 0.001, "hit", QuerySource.ADDRESS)],
            duration_s=1.0,
        )
        payload = report.to_dict()
        assert payload["workload"] == "open"
        assert payload["latency_ms"]["p99"] > 0
        text = report.render()
        assert "throughput" in text
        assert "cache hit rate" in text


class TestEndToEnd:
    def test_closed_loop_against_live_server(self, served_world):
        addresses, _, store = served_world
        config = ServerConfig(n_workers=4, queue_capacity=128)
        with QueryServer(store, config) as server:
            generator = LoadGenerator(server, sorted(addresses), random.Random(0))
            report = generator.run_closed(n_clients=4, duration_s=0.3)
        assert report.workload == "closed"
        assert report.n_ok > 0
        assert report.n_errors == 0
        assert report.throughput_rps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p95"]
        assert report.latency_ms["p95"] <= report.latency_ms["p99"]
        assert report.server["requests_by_status"]["ok"] == report.n_ok

    def test_open_loop_issues_the_full_schedule(self, served_world):
        addresses, _, store = served_world
        config = ServerConfig(n_workers=2, queue_capacity=128)
        expected = len(
            poisson_schedule(sorted(addresses), 150.0, 0.4, random.Random(5))
        )
        with QueryServer(store, config) as server:
            generator = LoadGenerator(server, sorted(addresses), random.Random(5))
            report = generator.run_open(rate_rps=150.0, duration_s=0.4)
        assert report.workload == "open"
        assert report.n_issued == expected
        assert report.n_errors == 0

    def test_empty_address_pool_rejected(self, served_world):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=1)) as server:
            with pytest.raises(ValueError):
                LoadGenerator(server, [], random.Random(0))
