"""Multi-process serving: durability, routing, refresh churn, restarts.

Everything here runs real worker subprocesses over pipes (small pools,
tiny worlds) — the point is the cross-process contracts: version flips
observed through the mmap'd counter, typed errors surviving the pipe,
dead workers restarted mid-traffic, and crash recovery never serving a
torn snapshot.
"""

import os
import struct
import threading
import time

import pytest

from repro.apps import QuerySource, UnknownAddressError
from repro.geo import Point
from repro.obs import configure_tracing, disable_tracing, merge_traces, read_trace
from repro.obs.health import SLO
from repro.serve import (
    GeohashShardStrategy,
    ProcessRouter,
    ServeStatus,
    ServerConfig,
    ShardedLocationStore,
    SnapshotPublisher,
    VersionCounter,
)
from repro.serve.mp import WorkerHandle, append_log_record, read_log_records
from tests.core.helpers import make_address, point_at

#: Generous deadlines: restart-and-retry on a single-core CI box must
#: fit inside one request budget.
CONFIG = ServerConfig(default_timeout_s=10.0)


def small_world():
    addresses = {
        f"m{i}": make_address(f"m{i}", f"b{i % 3}", (i * 40.0, 0.0))
        for i in range(12)
    }
    locations = {
        f"m{i}": point_at(i * 40.0 + 5.0, 3.0) for i in range(8)
    }
    return addresses, locations


@pytest.fixture()
def store():
    addresses, locations = small_world()
    return ShardedLocationStore(
        locations, addresses, strategy=GeohashShardStrategy(4, precision=6)
    )


class TestVersionCounter:
    def test_writer_flips_are_visible_to_readers(self, tmp_path):
        path = str(tmp_path / "CURRENT")
        writer = VersionCounter(path, create=True)
        reader = VersionCounter(path)
        assert reader.get() == 0
        for version in (1, 2, 7, 7, 40):
            writer.set(version)
            assert reader.get() == version
        writer.close()
        reader.close()

    def test_open_missing_counter_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            VersionCounter(str(tmp_path / "CURRENT"))


class TestUpdateLog:
    def test_round_trip_preserves_order_and_points(self, tmp_path):
        path = str(tmp_path / "updates.log")
        batches = [
            (2, {"a": Point(1.0, 2.0)}),
            (3, {"b": Point(-3.5, 4.25), "c": Point(0.0, 0.0)}),
            (4, {}),
        ]
        for version, locations in batches:
            append_log_record(path, version, locations)
        assert read_log_records(path) == batches

    def test_torn_tail_is_discarded(self, tmp_path):
        path = str(tmp_path / "updates.log")
        append_log_record(path, 2, {"a": Point(1.0, 2.0)})
        append_log_record(path, 3, {"b": Point(5.0, 6.0)})
        blob = open(path, "rb").read()
        # Chop the last record mid-payload: writer died mid-append.
        with open(path, "wb") as f:
            f.write(blob[:-5])
        records = read_log_records(path)
        assert [v for v, _ in records] == [2]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = str(tmp_path / "updates.log")
        append_log_record(path, 2, {"a": Point(1.0, 2.0)})
        append_log_record(path, 3, {"b": Point(5.0, 6.0)})
        blob = bytearray(open(path, "rb").read())
        length = struct.unpack_from("<I", blob, 0)[0]
        blob[8 + length + 8] ^= 0xFF  # first payload byte of record two
        with open(path, "wb") as f:
            f.write(bytes(blob))
        assert [v for v, _ in read_log_records(path)] == [2]

    def test_missing_log_is_empty(self, tmp_path):
        assert read_log_records(str(tmp_path / "nope.log")) == []


class TestCrashRecovery:
    """Kill the writer mid-publish; restore must never serve a torn file."""

    def test_restore_skips_corrupt_newest_snapshot(self, store, tmp_path):
        publisher = SnapshotPublisher(str(tmp_path))
        publisher.publish(store)
        good_version = store.version
        # Crash scenario: the log record for the next refresh landed and
        # the snapshot file got renamed, but its payload never finished.
        moved = {"m0": point_at(999.0, 999.0)}
        publisher.log_update(moved, good_version + 1)
        with open(publisher.path_for(good_version + 1), "wb") as f:
            f.write(b"RSNAP001" + os.urandom(64))
        restored = ShardedLocationStore.restore(str(tmp_path))
        # Recovery: newest *intact* snapshot, then the log suffix replays
        # the batch the crash separated from its snapshot.
        assert restored.version == good_version + 1
        got = restored.query_id("m0")
        assert got.location.lng == pytest.approx(moved["m0"].lng)
        assert got.location.lat == pytest.approx(moved["m0"].lat)

    def test_restore_without_any_snapshot_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedLocationStore.restore(str(tmp_path))

    def test_restore_preserves_strategy_and_answers(self, store, tmp_path):
        SnapshotPublisher(str(tmp_path)).publish(store)
        restored = ShardedLocationStore.restore(str(tmp_path))
        assert isinstance(restored.strategy, GeohashShardStrategy)
        assert restored.version == store.version
        for aid in store.address_book:
            assert restored.query_id(aid) == store.query_id(aid)


class TestProcessRouter:
    def test_query_round_trip_with_confidence(self, store, tmp_path):
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG,
            confidences={"m0": 0.75},
        ) as router:
            response = router.query("m0")
            assert response.status is ServeStatus.OK
            assert response.result.source == QuerySource.ADDRESS
            assert response.result.confidence == pytest.approx(0.75, abs=1e-6)
            # Confidence is per-id, not smeared across the batch.
            other = router.query("m1")
            assert other.status is ServeStatus.OK
            assert other.result.confidence is None

    def test_unknown_address_crosses_the_process_boundary(
        self, store, tmp_path
    ):
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG
        ) as router:
            response = router.query("never-heard-of-it")
            assert response.status is ServeStatus.UNKNOWN_ADDRESS
            assert response.result is None
            with pytest.raises(UnknownAddressError):
                router.resolve("never-heard-of-it")
            # OK ids still resolve through the same typed contract.
            assert router.resolve("m1").location is not None

    def test_query_batch_mixes_statuses(self, store, tmp_path):
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG
        ) as router:
            ids = list(store.address_book) + ["missing-a", "missing-b"]
            responses = router.query_batch(ids)
            assert [r.address_id for r in responses] == ids
            by_id = {r.address_id: r for r in responses}
            for aid in store.address_book:
                assert by_id[aid].status is ServeStatus.OK, aid
            for aid in ("missing-a", "missing-b"):
                assert by_id[aid].status is ServeStatus.UNKNOWN_ADDRESS

    def test_start_requires_published_snapshot(self, tmp_path):
        router = ProcessRouter(str(tmp_path / "empty"), n_workers=1)
        with pytest.raises(FileNotFoundError):
            router.start()

    def test_worker_stats_report_version_and_requests(self, store, tmp_path):
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG
        ) as router:
            router.query_batch(list(store.address_book))
            stats = router.worker_stats()
            assert len(stats) == 2
            assert {s["worker_id"] for s in stats} == {0, 1}
            # A worker that served anything mapped the published version;
            # an idle one (geohash can route every shard elsewhere) stays
            # unmapped and honestly reports 0.
            for s in stats:
                assert s["version"] == (store.version if s["n_requests"] else 0)
            assert sum(s["n_requests"] for s in stats) >= len(
                store.address_book
            )


class TestWorkerDeath:
    def test_killed_worker_is_restarted_and_queries_recover(
        self, store, tmp_path
    ):
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG,
            heartbeat_interval_s=30.0,  # restarts must come from the query path
        ) as router:
            before = router.query_batch(list(store.address_book))
            assert all(r.status is ServeStatus.OK for r in before)
            # Which workers actually carry this world's shards?  Restart
            # is lazy — only a worker the query path dispatches to gets
            # resurrected, so the assertions track the serving set.
            serving = {
                s["worker_id"]: s["pid"]
                for s in router.worker_stats()
                if s["n_requests"]
            }
            assert serving
            for worker in list(router._workers):
                worker.process.kill()
                worker.process.join(5.0)
            after = router.query_batch(list(store.address_book))
            assert all(r.status is ServeStatus.OK for r in after), [
                (r.address_id, r.status, r.error) for r in after
            ]
            assert router.restarts >= len(serving)
            for index, old_pid in serving.items():
                replacement = router._workers[index]
                assert replacement.alive
                assert replacement.process.pid != old_pid


class TestFleetObservability:
    """Shared-memory planes, merged registry, and cross-process traces."""

    def _status_sums(self, registry, name):
        out = {}
        for family in registry.to_dict()["metrics"]:
            if family["name"] != name:
                continue
            for sample in family["samples"]:
                status = sample["labels"].get("status", "")
                out[status] = out.get(status, 0.0) + sample["value"]
        return out

    def test_merged_export_conserves_request_counts(self, store, tmp_path):
        ids = list(store.address_book)
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG
        ) as router:
            for _ in range(3):
                responses = router.query_batch(ids)
                assert all(r.status is ServeStatus.OK for r in responses)
            router.stop()  # flush worker planes before the final scrape
            registry = router.metrics()
        n_issued = 3 * len(ids)
        router_counts = self._status_sums(registry, "serve_requests_total")
        worker_counts = self._status_sums(
            registry, "serve_worker_requests_total"
        )
        # Conservation: every finished request was recorded by exactly
        # one worker plane, so the sums match the router's — exactly.
        assert router_counts.get("ok") == n_issued
        assert worker_counts.get("ok") == n_issued
        assert sum(router_counts.values()) == sum(worker_counts.values())
        # Healthy run: restart/heartbeat families are present (pre-seeded
        # per worker, fail-closed SLOs need the zero samples) and at zero.
        assert registry.counter("serve_worker_restarts_total").total() == 0
        assert registry.counter(
            "serve_worker_heartbeat_misses_total"
        ).total() == 0
        # Per-worker cache hit ratio gauges exist (no cache -> 0.0).
        assert registry.gauge("serve_worker_cache_hit_ratio") is not None

    def test_fleet_verdict_over_merged_planes(self, store, tmp_path):
        ids = list(store.address_book)
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG
        ) as router:
            assert all(
                r.status is ServeStatus.OK for r in router.query_batch(ids)
            )
            router.stop()
            report = router.fleet_verdict([
                SLO(name="error-rate", metric="serve_requests_total",
                    kind="error_rate", objective=0.01,
                    bad=(("status", ("error",)),)),
                SLO(name="restarts", metric="serve_worker_restarts_total",
                    kind="max", objective=0),
            ])
        assert report.ok, report.to_dict()
        assert report.source == "fleet"

    def test_metrics_scrape_touches_no_worker_pipes(
        self, store, tmp_path, monkeypatch
    ):
        ids = list(store.address_book)
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG,
            heartbeat_interval_s=30.0,
        ) as router:
            assert all(
                r.status is ServeStatus.OK for r in router.query_batch(ids)
            )

            def no_pipes(self, *args, **kwargs):
                raise AssertionError("metrics scrape sent a pipe message")

            monkeypatch.setattr(WorkerHandle, "send", no_pipes)
            registry = router.metrics()
        worker_total = registry.counter("serve_worker_requests_total").total()
        assert worker_total >= len(ids)

    def test_restart_counter_attributes_killed_workers(self, store, tmp_path):
        ids = list(store.address_book)
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG,
            heartbeat_interval_s=30.0,
        ) as router:
            assert all(
                r.status is ServeStatus.OK for r in router.query_batch(ids)
            )
            serving = {
                s["worker_id"] for s in router.worker_stats()
                if s["n_requests"]
            }
            assert serving
            for worker in list(router._workers):
                worker.process.kill()
                worker.process.join(5.0)
            after = router.query_batch(ids)
            assert all(r.status is ServeStatus.OK for r in after)
            registry = router.metrics()
            restarts = registry.counter("serve_worker_restarts_total")
            assert restarts.total() == router.restarts >= len(serving)
            for index in serving:
                assert restarts.value(worker=str(index)) >= 1, index
            # The restarted workers attached to the existing planes: the
            # pre-kill request counts survived the restart (monotonic).
            worker_counts = self._status_sums(
                registry, "serve_worker_requests_total"
            )
            assert worker_counts.get("ok", 0) >= len(ids)

    def test_cross_process_span_parentage(self, store, tmp_path):
        configure_tracing(tmp_path / "router-trace.jsonl")
        try:
            with ProcessRouter.from_store(
                store, str(tmp_path / "snap"), n_workers=2, config=CONFIG
            ) as router:
                responses = router.query_batch(list(store.address_book))
                assert all(r.status is ServeStatus.OK for r in responses)
                router.stop()  # workers flush their span files on shutdown
                stats = router.trace_dump(str(tmp_path / "merged.jsonl"))
        finally:
            disable_tracing()
        assert stats["n_files"] >= 2        # router file + >=1 worker file
        assert stats["n_kept_spans"] >= 2
        spans = read_trace(tmp_path / "merged.jsonl")
        routes = {s["span_id"]: s for s in spans if s["name"] == "serve.route"}
        requests = [s for s in spans if s["name"] == "serve.request"]
        assert routes and requests
        linked = [
            s for s in requests
            if s.get("parent_id") in routes
            and s["trace_id"] == routes[s["parent_id"]]["trace_id"]
        ]
        assert linked, spans
        # The child spans really come from other processes.
        assert all(
            s["attributes"].get("pid") not in (None, os.getpid())
            for s in linked
        )
        # Workers re-stamp the router's head-sampling decision, so a
        # post-mortem merge of the worker files ALONE (no router trace
        # file — the obs-export path after a front-end crash) still
        # keeps the sampled traces.
        assert all(s["attributes"].get("sampled") for s in linked)
        worker_files = sorted(
            os.path.join(router.obs_dir, name)
            for name in os.listdir(router.obs_dir)
            if name.startswith("trace-worker-")
        )
        worker_only = merge_traces(
            worker_files, tmp_path / "workers-only.jsonl"
        )
        assert worker_only["n_kept_spans"] >= len(linked)
        assert worker_only["kept_by_reason"]["sampled"] >= 1

    def test_tracing_off_means_no_worker_span_files(self, store, tmp_path):
        disable_tracing()
        with ProcessRouter.from_store(
            store, str(tmp_path), n_workers=2, config=CONFIG
        ) as router:
            router.query_batch(list(store.address_book))
            obs_dir = router.obs_dir
        assert [
            name for name in os.listdir(obs_dir)
            if name.startswith("trace-worker-")
        ] == []


class TestRefreshChurn:
    """Acceptance: readers in other processes see zero errors while the
    publisher keeps flipping versions under them."""

    def test_concurrent_readers_during_refresh(self, store, tmp_path):
        publisher = SnapshotPublisher(str(tmp_path))
        publisher.publish(store)
        ids = list(store.address_book)
        errors: list[str] = []
        stop = threading.Event()

        with ProcessRouter(
            str(tmp_path), n_workers=2, config=CONFIG
        ) as router:

            def reader() -> None:
                i = 0
                while not stop.is_set():
                    for response in router.query_batch(
                        [ids[i % len(ids)], ids[(i + 5) % len(ids)]]
                    ):
                        if response.status is not ServeStatus.OK:
                            errors.append(
                                f"{response.address_id}: "
                                f"{response.status.value} {response.error}"
                            )
                    i += 1

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                for round_no in range(6):
                    moved = {
                        aid: point_at(50.0 * round_no + i, 7.0)
                        for i, aid in enumerate(ids)
                    }
                    publisher.refresh(store, moved)
                    time.sleep(0.05)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(10.0)
            assert errors == [], errors[:5]
            # Workers converged on the newest version: the counter flip
            # propagated through mmap polling, no restart needed.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                router.query_batch(ids)
                serving = [
                    s for s in router.worker_stats() if s["n_requests"]
                ]
                if serving and all(
                    s["version"] == store.version for s in serving
                ):
                    break
            assert serving and all(
                s["version"] == store.version for s in serving
            )
            # The serving workers really did remap at least once mid-run.
            assert all(s["snapshot_loads"] >= 2 for s in serving)
        assert store.version > 1
