"""Columnar snapshot files: format round-trip, corruption, query parity."""

import os
import random

import numpy as np
import pytest

from repro.apps import QuerySource, UnknownAddressError
from repro.serve import (
    GeohashShardStrategy,
    ShardedLocationStore,
    SnapshotCorruptError,
    load_snapshot,
    write_snapshot,
)
from repro.serve.columnar import MAGIC
from tests.core.helpers import make_address, point_at


def make_world(n=40, seed=3, with_locations=0.6):
    """Addresses spread over a few km; a fraction get inferred locations."""
    rng = random.Random(seed)
    addresses, locations = {}, {}
    for i in range(n):
        aid = f"c{i:04d}"
        x, y = rng.uniform(-2500, 2500), rng.uniform(-2500, 2500)
        addresses[aid] = make_address(aid, f"b{i % 7}", (x, y))
        if rng.random() < with_locations:
            locations[aid] = point_at(x + rng.uniform(-30, 30), y + rng.uniform(-30, 30))
    return addresses, locations


@pytest.fixture()
def snapshot_world(tmp_path):
    addresses, locations = make_world()
    store = ShardedLocationStore(
        locations, addresses, strategy=GeohashShardStrategy(4, precision=6)
    )
    path = str(tmp_path / "snap.rsnap")
    info = write_snapshot(path, store, confidences={"c0000": 0.875})
    return store, path, info


class TestRoundTrip:
    def test_info_and_meta(self, snapshot_world):
        store, path, info = snapshot_world
        assert info.path == path
        assert info.version == store.version
        assert info.n_rows == len(store.address_book)
        snap = load_snapshot(path)
        assert snap.version == store.version
        assert snap.n_rows == info.n_rows
        assert snap.n_shards == 4
        assert snap.precision == 6
        assert snap.meta["strategy"] == "GeohashShardStrategy"

    def test_resolve_parity_with_store(self, snapshot_world):
        store, path, _ = snapshot_world
        snap = load_snapshot(path)
        ids = list(store.address_book) + ["missing-1", "missing-2"]
        got = snap.resolve_batch(ids)
        want = store.query_ids_batch(ids)
        for aid in ids:
            g, w = got[aid], want[aid]
            if isinstance(w, UnknownAddressError):
                assert isinstance(g, UnknownAddressError)
                continue
            assert g.source == w.source, aid
            assert g.location.lng == pytest.approx(w.location.lng, abs=1e-9)
            assert g.location.lat == pytest.approx(w.location.lat, abs=1e-9)

    def test_confidence_round_trips_as_float32(self, snapshot_world):
        store, path, _ = snapshot_world
        snap = load_snapshot(path)
        result = snap.resolve_batch(["c0000"])["c0000"]
        if result.source == QuerySource.ADDRESS:
            assert result.confidence == pytest.approx(0.875, abs=1e-6)
        # Every other answered id reports no confidence (NaN column).
        others = [a for a in store.address_book if a != "c0000"]
        for aid, res in snap.resolve_batch(others).items():
            assert res.confidence is None, aid

    def test_query_id_raises_unknown(self, snapshot_world):
        _, path, _ = snapshot_world
        snap = load_snapshot(path)
        with pytest.raises(UnknownAddressError):
            snap.query_id("nope")

    def test_address_book_reconstruction(self, snapshot_world):
        store, path, _ = snapshot_world
        snap = load_snapshot(path)
        rebuilt = snap.addresses()
        assert set(rebuilt) == set(store.address_book)
        for aid, address in store.address_book.items():
            again = rebuilt[aid]
            assert again.text == address.text
            assert again.building_id == address.building_id
            assert again.poi_category == address.poi_category
            assert again.geocode.lng == pytest.approx(address.geocode.lng, abs=1e-9)

    def test_address_locations_reconstruction(self, snapshot_world):
        store, path, _ = snapshot_world
        snap = load_snapshot(path)
        restored = snap.address_locations()
        assert set(restored) == set(store.address_locations)
        for aid, point in store.address_locations.items():
            assert restored[aid].lng == pytest.approx(point.lng, abs=1e-9)
            assert restored[aid].lat == pytest.approx(point.lat, abs=1e-9)

    def test_shards_for_ids_groups_rows(self, snapshot_world):
        store, path, _ = snapshot_world
        snap = load_snapshot(path)
        ids = list(store.address_book)
        shards = snap.shards_for_ids(ids + ["missing"])
        assert shards[-1] == -1
        for aid, shard in zip(ids, shards):
            assert shard == store.strategy.shard_of(aid, store.address_book[aid])

    def test_nearest_matches_store_ring_search(self, snapshot_world):
        store, path, _ = snapshot_world
        snap = load_snapshot(path)
        rng = random.Random(11)
        for _ in range(25):
            probe = point_at(rng.uniform(-3000, 3000), rng.uniform(-3000, 3000))
            got = snap.nearest(probe.lng, probe.lat)
            want = store.nearest(probe.lng, probe.lat, linear=True)
            assert got is not None and want is not None
            assert got[2] == pytest.approx(want[2], abs=1e-6)

    def test_empty_store_round_trips(self, tmp_path):
        store = ShardedLocationStore({}, {}, n_shards=2)
        path = str(tmp_path / "empty.rsnap")
        write_snapshot(path, store)
        snap = load_snapshot(path, verify=True)
        assert snap.n_rows == 0
        assert snap.resolve_batch([]) == {}
        assert snap.nearest(0.0, 0.0) is None


class TestCorruption:
    def test_verify_catches_flipped_payload_byte(self, snapshot_world):
        _, path, _ = snapshot_world
        blob = bytearray(open(path, "rb").read())
        blob[-8] ^= 0xFF  # flip a byte inside the last array's payload
        bad = path + ".bad"
        with open(bad, "wb") as f:
            f.write(bytes(blob))
        load_snapshot(bad)  # lazy load does not touch payload CRCs
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(bad, verify=True)

    def test_bad_magic_rejected(self, snapshot_world, tmp_path):
        _, path, _ = snapshot_world
        blob = bytearray(open(path, "rb").read())
        blob[:len(MAGIC)] = b"NOTASNAP"
        bad = str(tmp_path / "magic.rsnap")
        with open(bad, "wb") as f:
            f.write(bytes(blob))
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(bad)

    def test_truncated_file_rejected(self, snapshot_world, tmp_path):
        _, path, _ = snapshot_world
        blob = open(path, "rb").read()
        for cut in (4, len(blob) // 3):
            bad = str(tmp_path / f"cut{cut}.rsnap")
            with open(bad, "wb") as f:
                f.write(blob[:cut])
            with pytest.raises(SnapshotCorruptError):
                load_snapshot(bad)

    def test_no_tmp_file_left_behind(self, snapshot_world):
        _, path, _ = snapshot_world
        directory = os.path.dirname(path)
        assert not [n for n in os.listdir(directory) if ".tmp." in n]
