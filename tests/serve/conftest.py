"""Serve-test fixtures: a fresh metrics registry and a tiny served world."""

import pytest

from repro.obs import MetricsRegistry, set_registry
from repro.serve import ShardedLocationStore
from tests.core.helpers import make_address, point_at


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate each test's counters/gauges/histograms."""
    previous = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(previous)


@pytest.fixture()
def served_world():
    """Addresses + locations + a 4-shard store, one per test."""
    addresses = {
        f"a{i}": make_address(f"a{i}", f"b{i % 3}", (float(i * 10), 0.0))
        for i in range(12)
    }
    locations = {
        f"a{i}": point_at(float(i * 10 + 5), 0.0) for i in range(8)
    }
    store = ShardedLocationStore(locations, addresses, n_shards=4)
    return addresses, locations, store
