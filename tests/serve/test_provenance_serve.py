"""Provenance minted at serve time, on both serving backends."""

import os

import pytest

from repro.obs.provenance import (
    ProvenanceRing,
    merge_provenance,
    read_provenance,
    reset_provenance_ring,
    set_provenance_ring,
)
from repro.obs.shm import PlaneSchemaError
from repro.serve import (
    ProcessRouter,
    QueryServer,
    ServerConfig,
    ServeStatus,
    SnapshotPublisher,
)


@pytest.fixture(autouse=True)
def fresh_ring():
    ring = ProvenanceRing(capacity=128)
    previous = set_provenance_ring(ring)
    try:
        yield ring
    finally:
        set_provenance_ring(previous)
        reset_provenance_ring()


class TestThreadBackendProvenance:
    def test_ok_answer_mints_a_record(self, served_world, fresh_ring):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=2)) as server:
            response = server.query("a1")
        assert response.status is ServeStatus.OK
        found = fresh_ring.find("a1")
        assert found, "no provenance minted for a served answer"
        record = found[0]
        assert record.status == "ok"
        assert record.lng == pytest.approx(response.result.location.lng)
        assert record.source == response.result.source.value
        assert record.snapshot_version == store.version

    def test_unknown_address_is_always_kept(self, served_world, fresh_ring):
        _, _, store = served_world
        with QueryServer(store, ServerConfig(n_workers=1)) as server:
            for i in range(50):
                server.query(f"a{i % 8}")
            response = server.query("missing-id")
        assert response.status is ServeStatus.UNKNOWN_ADDRESS
        found = fresh_ring.find("missing-id")
        assert found and found[0].status == "unknown_address"
        assert found[0].error

    def test_cache_hit_records_cache_tier(self, served_world, fresh_ring):
        _, _, store = served_world
        config = ServerConfig(n_workers=1, cache_capacity=64)
        with QueryServer(store, config) as server:
            server.query("a2")
            server.query("a2")
        states = [r.cache_state for r in fresh_ring.find("a2")]
        assert "hit" in states


class TestProcessBackendProvenance:
    @pytest.fixture()
    def snapshot_dir(self, served_world, tmp_path):
        _, _, store = served_world
        publisher = SnapshotPublisher(str(tmp_path))
        publisher.publish(store)
        yield str(tmp_path)
        publisher.close()

    def test_workers_persist_rings_on_shutdown(self, snapshot_dir):
        with ProcessRouter(snapshot_dir, n_workers=2) as router:
            for i in range(8):
                router.query(f"a{i}")
            router.query("missing-id")
        obs_dir = os.path.join(snapshot_dir, "obs")
        files = sorted(
            f for f in os.listdir(obs_dir)
            if f.startswith("provenance-worker-")
        )
        assert files, "workers persisted no provenance"
        records, stats = merge_provenance(
            [os.path.join(obs_dir, f) for f in files]
        )
        assert stats["n_torn_lines"] == 0
        by_address = {r.address_id for r in records}
        assert "missing-id" in by_address  # always-keep survived sampling
        ok = [r for r in records if r.status == "ok"]
        assert ok and all(r.key.startswith("w") for r in ok)
        assert all(r.snapshot_version is not None for r in ok)

    def test_provenance_dump_merges_fleet(self, snapshot_dir, fresh_ring):
        with ProcessRouter(snapshot_dir, n_workers=2) as router:
            for i in range(8):
                router.query(f"a{i}")
        # Router object survives stop(); dump after workers persisted.
        records, stats = router.provenance_dump()
        assert stats["n_files"] >= 1
        assert records

    def test_fleet_verdict_refuses_empty_obs_dir(self, tmp_path):
        router = ProcessRouter(str(tmp_path), n_workers=1)
        router.obs_dir = str(tmp_path / "nothing-here")
        os.makedirs(router.obs_dir, exist_ok=True)
        with pytest.raises(PlaneSchemaError, match="no metrics planes"):
            router.fleet_verdict([])
