"""CLI integration tests (in-process, no subprocess)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-data")
    code = main(["generate", "--preset", "tiny", "--seed", "0", "--out", str(out)])
    assert code == 0
    return out


class TestGenerate:
    def test_writes_all_files(self, data_dir):
        for name in ("trips.jsonl", "addresses.json", "ground_truth.json", "split.json"):
            assert (data_dir / name).exists(), name

    def test_split_file_contents(self, data_dir):
        split = json.loads((data_dir / "split.json").read_text())
        assert split["train"] and split["test"]
        assert not set(split["train"]) & set(split["test"])


class TestEvaluate:
    def test_prints_metrics_table(self, data_dir, capsys):
        code = main([
            "evaluate", "--data", str(data_dir),
            "--methods", "Geocoding,MinDist,MaxTC-ILC", "--fast",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Geocoding" in out and "MaxTC-ILC" in out
        assert "MAE" in out

    def test_timings_flag_prints_engine_stages(self, data_dir, capsys):
        code = main([
            "evaluate", "--data", str(data_dir),
            "--methods", "Geocoding,MaxTC-ILC", "--fast", "--timings",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-stage engine timings" in out
        # Only the DLInfMA-family method has engine stages.
        assert "MaxTC-ILC:" in out
        assert "Geocoding:" not in out
        for stage_name in ("stay_point_extraction", "pool_construction",
                           "profile_build", "feature_extraction", "training"):
            assert stage_name in out


class TestEvaluateObservability:
    def test_json_report(self, data_dir, capsys):
        code = main([
            "evaluate", "--data", str(data_dir),
            "--methods", "Geocoding,MaxTC-ILC", "--fast", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["methods"]) == {"Geocoding", "MaxTC-ILC"}
        entry = payload["methods"]["MaxTC-ILC"]
        assert entry["mae_m"] >= 0
        stages = [stage for stage, _ in entry["stage_timings_s"]]
        assert stages == [
            "stay_point_extraction", "pool_construction", "profile_build",
            "feature_extraction", "training",
        ]
        # Non-engine methods report no stage timings.
        assert payload["methods"]["Geocoding"]["stage_timings_s"] == []

    def test_trace_and_metrics_out(self, data_dir, tmp_path, capsys):
        from repro.obs import load_metrics, read_trace

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main([
            "evaluate", "--data", str(data_dir),
            "--methods", "MaxTC-ILC", "--fast",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ])
        assert code == 0
        names = {s["name"] for s in read_trace(trace)}
        assert "dlinfma.fit" in names and "training" in names
        payload = load_metrics(metrics)
        assert "timestamp_unix" in payload["meta"]
        assert "config_fingerprint" in payload["meta"]
        metric_names = {m["name"] for m in payload["metrics"]}
        assert "engine_stage_seconds" in metric_names
        # The exported file renders through the metrics subcommand.
        capsys.readouterr()
        assert main(["metrics", str(metrics)]) == 0
        assert "engine_stage_seconds" in capsys.readouterr().out

    def test_prometheus_metrics_out(self, data_dir, tmp_path):
        metrics = tmp_path / "metrics.prom"
        code = main([
            "evaluate", "--data", str(data_dir),
            "--methods", "Geocoding", "--fast", "--metrics-out", str(metrics),
        ])
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE eval_fit_seconds histogram" in text


class TestUpdate:
    def test_update_absorbs_new_batch(self, data_dir, tmp_path, capsys):
        from repro.synth.io import load_trips, save_trips

        trips = sorted(load_trips(data_dir / "trips.jsonl"), key=lambda t: t.t_start)
        half = len(trips) // 2
        base = tmp_path / "base"
        base.mkdir()
        for name in ("addresses.json", "ground_truth.json", "split.json"):
            (base / name).write_text((data_dir / name).read_text())
        save_trips(trips[:half], base / "trips.jsonl")
        new_trips = tmp_path / "new_trips.jsonl"
        save_trips(trips[half:], new_trips)

        locations = tmp_path / "locations.json"
        code = main([
            "update", "--data", str(base), "--new-trips", str(new_trips),
            "--out", str(locations), "--selector", "maxtc-ilc", "--timings",
        ])
        assert code == 0
        assert len(json.loads(locations.read_text())) > 0
        out = capsys.readouterr().out
        assert f"absorbed {len(trips) - half} new trips" in out
        assert f"of {len(trips) - half} submitted ({len(trips)} total)" in out
        assert "initial fit:" in out
        assert "incremental update" in out
        assert "stay_point_extraction" in out

    def test_update_json_report(self, data_dir, tmp_path, capsys):
        from repro.synth.io import load_trips, save_trips

        trips = sorted(load_trips(data_dir / "trips.jsonl"), key=lambda t: t.t_start)
        half = len(trips) // 2
        base = tmp_path / "base"
        base.mkdir()
        for name in ("addresses.json", "ground_truth.json", "split.json"):
            (base / name).write_text((data_dir / name).read_text())
        save_trips(trips[:half], base / "trips.jsonl")
        new_trips = tmp_path / "new_trips.jsonl"
        save_trips(trips[half:], new_trips)

        code = main([
            "update", "--data", str(base), "--new-trips", str(new_trips),
            "--out", str(tmp_path / "loc.json"), "--selector", "maxtc-ilc",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["submitted"] == len(trips) - half
        assert payload["absorbed"] == len(trips) - half
        assert payload["total_trips"] == len(trips)
        fit_stages = [s for s, _ in payload["fit_stage_timings_s"]]
        assert fit_stages[0] == "stay_point_extraction"
        update_stages = [s for s, _ in payload["update_stage_timings_s"]]
        assert update_stages == [
            "stay_point_extraction", "pool_construction", "profile_build",
            "feature_extraction", "training",
        ]


class TestInferAndQuery:
    def test_infer_then_query(self, data_dir, capsys):
        locations = data_dir / "locations.json"
        code = main([
            "infer", "--data", str(data_dir),
            "--out", str(locations), "--selector", "maxtc-ilc",
        ])
        assert code == 0
        assert locations.exists()
        payload = json.loads(locations.read_text())
        assert len(payload) > 0

        address_id = next(iter(payload))
        capsys.readouterr()
        code = main([
            "query", "--data", str(data_dir),
            "--locations", str(locations), "--address-id", address_id,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "source    address" in out

    def test_query_unknown_address(self, data_dir, tmp_path, capsys):
        locations = tmp_path / "empty.json"
        locations.write_text("{}")
        code = main([
            "query", "--data", str(data_dir),
            "--locations", str(locations), "--address-id", "nope",
        ])
        assert code == 1


class TestExportGeojson:
    def test_exports_candidates_and_predictions(self, data_dir, tmp_path, capsys):
        locations = data_dir / "locations-geo.json"
        main(["infer", "--data", str(data_dir), "--out", str(locations),
              "--selector", "mindist"])
        out_dir = tmp_path / "geo"
        code = main([
            "export-geojson", "--data", str(data_dir),
            "--out", str(out_dir), "--locations", str(locations),
        ])
        assert code == 0
        candidates = json.loads((out_dir / "candidates.geojson").read_text())
        predictions = json.loads((out_dir / "predictions.geojson").read_text())
        assert candidates["features"]
        kinds = {f["properties"]["kind"] for f in predictions["features"]}
        assert "prediction" in kinds


class TestCrossval:
    def test_crossval_command(self, capsys):
        code = main([
            "crossval", "--preset", "tiny", "--folds", "2",
            "--methods", "Geocoding,MaxTC-ILC", "--fast",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-validation" in out
        assert "MaxTC-ILC" in out


class TestServeBench:
    def test_closed_loop_report_and_artifact(self, data_dir, tmp_path, capsys):
        out_path = tmp_path / "BENCH_serve.json"
        code = main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--duration", "0.3", "--workers", "4",
            "--refresh-every", "0.05", "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "throughput" in out
        assert "cache hit rate" in out
        assert "rejected" in out
        assert "refreshes" in out
        payload = json.loads(out_path.read_text())
        assert payload["report"]["n_errors"] == 0
        assert payload["report"]["n_ok"] > 0
        assert payload["config"]["workers"] == 4
        assert payload["refreshes_mid_run"] >= 1

    def test_open_loop_json_is_deterministic_in_schedule(self, data_dir, capsys):
        code = main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--workload", "open", "--rate", "150", "--duration", "0.3",
            "--seed", "7", "--json",
        ])
        assert code == 0
        first = json.loads(capsys.readouterr().out)
        code = main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--workload", "open", "--rate", "150", "--duration", "0.3",
            "--seed", "7", "--json",
        ])
        assert code == 0
        second = json.loads(capsys.readouterr().out)
        # Identical seeds issue identical request schedules.
        assert first["report"]["n_issued"] == second["report"]["n_issued"]
        assert first["report"]["n_errors"] == 0


class TestStats:
    def test_prints_distributions(self, data_dir, capsys):
        code = main(["stats", "--data", str(data_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Dataset statistics" in out
        assert "Deliveries per address" in out
        assert "Stay points per trip" in out
        assert "Candidates per address" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x"])
        assert args.preset == "downbj"
        assert args.scale == 1.0


HEALTH_SLO = """\
slos:
  - name: fit-p95
    metric: eval_fit_seconds
    kind: quantile
    quantile: 0.95
    objective: {objective}
"""

SERVE_SLO = """\
slos:
  - name: p95-latency
    metric: serve_request_latency_seconds
    kind: quantile
    quantile: 0.95
    objective: {objective}
  - name: error-rate
    metric: serve_requests_total
    kind: error_rate
    objective: 0.05
    bad:
      status: [error]
"""


class TestHealthCommand:
    @pytest.fixture(scope="class")
    def metrics_path(self, data_dir, tmp_path_factory):
        path = tmp_path_factory.mktemp("health") / "metrics.json"
        code = main([
            "evaluate", "--data", str(data_dir),
            "--methods", "MaxTC-ILC", "--fast", "--metrics-out", str(path),
        ])
        assert code == 0
        return path

    def test_healthy_slo_exits_zero(self, metrics_path, tmp_path, capsys):
        slo = tmp_path / "slo.yaml"
        slo.write_text(HEALTH_SLO.format(objective=120.0))
        code = main(["health", "--metrics", str(metrics_path), "--slo", str(slo)])
        assert code == 0
        assert "health: OK" in capsys.readouterr().out

    def test_violated_slo_exits_one(self, metrics_path, tmp_path, capsys):
        slo = tmp_path / "slo.yaml"
        slo.write_text(HEALTH_SLO.format(objective=0.000001))
        code = main(["health", "--metrics", str(metrics_path), "--slo", str(slo)])
        assert code == 1
        assert "health: VIOLATED" in capsys.readouterr().out

    def test_json_report(self, metrics_path, tmp_path, capsys):
        slo = tmp_path / "slo.yaml"
        slo.write_text(HEALTH_SLO.format(objective=120.0))
        code = main([
            "health", "--metrics", str(metrics_path), "--slo", str(slo), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["results"][0]["name"] == "fit-p95"
        assert payload["results"][0]["ok"] is True

    def test_missing_files_exit_two(self, metrics_path, tmp_path, capsys):
        slo = tmp_path / "slo.yaml"
        slo.write_text(HEALTH_SLO.format(objective=1.0))
        assert main(["health", "--metrics", "/nonexistent.json",
                     "--slo", str(slo)]) == 2
        assert main(["health", "--metrics", str(metrics_path),
                     "--slo", "/nonexistent.yaml"]) == 2
        bad_spec = tmp_path / "bad.yaml"
        bad_spec.write_text("slos:\n  - name: x\n")  # missing metric/objective
        assert main(["health", "--metrics", str(metrics_path),
                     "--slo", str(bad_spec)]) == 2


class TestProfileCommand:
    def test_wraps_subcommand_and_writes_speedscope(self, data_dir, tmp_path, capsys):
        out = tmp_path / "prof.speedscope.json"
        code = main([
            "profile", "--out", str(out), "--top", "5", "--",
            "evaluate", "--data", str(data_dir),
            "--methods", "MaxTC-ILC", "--fast",
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["profiles"][0]["type"] == "sampled"
        assert doc["shared"]["frames"]
        stdout = capsys.readouterr().out
        assert "MAE" in stdout          # inner command output passes through
        assert "self" in stdout and "total" in stdout  # hotspot table

    def test_propagates_inner_exit_code(self, tmp_path, capsys):
        code = main([
            "profile", "--", "health",
            "--metrics", "/nonexistent.json", "--slo", "/nonexistent.yaml",
        ])
        assert code == 2

    def test_no_subcommand_exits_two(self, capsys):
        assert main(["profile", "--out", "/tmp/ignored.json"]) == 2

    def test_evaluate_profile_and_memory_flags(self, data_dir, tmp_path, capsys):
        profile_out = tmp_path / "eval.speedscope.json"
        memory_out = tmp_path / "eval-memory.json"
        code = main([
            "evaluate", "--data", str(data_dir),
            "--methods", "MaxTC-ILC", "--fast",
            "--profile", str(profile_out), "--memory", str(memory_out),
        ])
        assert code == 0
        assert json.loads(profile_out.read_text())["profiles"]
        snapshots = json.loads(memory_out.read_text())["snapshots"]
        labels = [s["label"] for s in snapshots]
        assert any(label.endswith(":training") for label in labels)


class TestServeBenchSLO:
    def test_lenient_slo_passes_and_prints_verdict(self, data_dir, tmp_path, capsys):
        slo = tmp_path / "slo.yaml"
        slo.write_text(SERVE_SLO.format(objective=10.0))
        code = main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--duration", "0.3", "--slo", str(slo),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "live SLO verdict" in out
        assert "OK " in out and "p95-latency" in out
        assert "VIOLATED" not in out

    def test_impossible_slo_fails_the_bench(self, data_dir, tmp_path, capsys):
        slo = tmp_path / "slo.yaml"
        slo.write_text(SERVE_SLO.format(objective=0.000000001))
        code = main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--duration", "0.3", "--slo", str(slo),
        ])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_bad_slo_spec_exits_two(self, data_dir, tmp_path):
        slo = tmp_path / "broken.yaml"
        slo.write_text("slos: []\n")
        assert main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--duration", "0.1", "--slo", str(slo),
        ]) == 2


class TestUpdateDrift:
    def test_drift_out_writes_report(self, data_dir, tmp_path, capsys):
        from repro.synth.io import load_trips, save_trips

        trips = sorted(load_trips(data_dir / "trips.jsonl"), key=lambda t: t.t_start)
        half = len(trips) // 2
        base = tmp_path / "base"
        base.mkdir()
        for name in ("addresses.json", "ground_truth.json", "split.json"):
            (base / name).write_text((data_dir / name).read_text())
        save_trips(trips[:half], base / "trips.jsonl")
        new_trips = tmp_path / "new_trips.jsonl"
        save_trips(trips[half:], new_trips)

        drift_out = tmp_path / "drift.json"
        code = main([
            "update", "--data", str(base), "--new-trips", str(new_trips),
            "--out", str(tmp_path / "loc.json"), "--selector", "maxtc-ilc",
            "--drift-out", str(drift_out), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        report = json.loads(drift_out.read_text())
        assert payload["drift"]["reports"] == report["reports"]
        assert payload["drift"]["drifted"] == report["drifted"]
        kinds = [r["kind"] for r in report["reports"]]
        assert "pool" in kinds
        for entry in report["reports"]:
            assert {"kind", "drifted", "dimensions"} <= set(entry)


class TestObsExport:
    """Post-mortem scrape of metrics planes + per-worker span files."""

    @pytest.fixture()
    def obs_dir(self, tmp_path):
        from repro.obs.shm import MetricsPlane, SlotSpec

        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        for worker in ("0", "1"):
            plane = MetricsPlane.create(
                str(obs_dir / f"metrics-worker-{worker}.shm"),
                (SlotSpec("counter", "serve_worker_requests_total",
                          (("status", "ok"), ("worker", worker))),),
                meta={"worker": worker},
            )
            plane.inc(plane.slot("serve_worker_requests_total",
                                 status="ok", worker=worker), 5)
            plane.close()
        (obs_dir / "trace-worker-0.jsonl").write_text(json.dumps({
            "name": "serve.request", "trace_id": "t1", "span_id": "s1",
            "parent_id": None, "start_unix": 1.0, "end_unix": 1.1,
            "duration_s": 0.1, "status": "error",
            "attributes": {"worker": 0},
        }) + "\n")
        return obs_dir

    def test_renders_merged_prometheus_text(self, obs_dir, capsys):
        code = main(["obs-export", "--obs-dir", str(obs_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve_worker_requests_total" in out

    def test_out_writes_prometheus_file(self, obs_dir, tmp_path, capsys):
        out_path = tmp_path / "fleet.prom"
        code = main(["obs-export", "--obs-dir", str(obs_dir),
                     "--out", str(out_path)])
        assert code == 0
        text = out_path.read_text()
        assert ('serve_worker_requests_total'
                '{status="ok",worker="0"} 5') in text
        assert ('serve_worker_requests_total'
                '{status="ok",worker="1"} 5') in text
        assert str(out_path) in capsys.readouterr().out

    def test_json_document_sums_planes(self, obs_dir, capsys):
        code = main(["obs-export", "--obs-dir", str(obs_dir), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (family,) = [m for m in payload["metrics"]
                     if m["name"] == "serve_worker_requests_total"]
        assert sum(s["value"] for s in family["samples"]) == 10
        assert "timestamp_unix" in payload["meta"]

    def test_trace_out_merges_worker_spans(self, obs_dir, tmp_path, capsys):
        merged = tmp_path / "merged.jsonl"
        code = main(["obs-export", "--obs-dir", str(obs_dir),
                     "--trace-out", str(merged)])
        assert code == 0
        spans = [json.loads(line)
                 for line in merged.read_text().splitlines()]
        assert [s["name"] for s in spans] == ["serve.request"]

    def test_slo_gate_pass_and_fail(self, obs_dir, tmp_path, capsys):
        good = tmp_path / "good.yaml"
        good.write_text(
            "slos:\n"
            "  - name: worker-errors\n"
            "    metric: serve_worker_requests_total\n"
            "    kind: error_rate\n"
            "    objective: 0.01\n"
            "    bad:\n"
            "      status: [error]\n"
        )
        assert main(["obs-export", "--obs-dir", str(obs_dir),
                     "--slo", str(good)]) == 0
        assert "health: OK" in capsys.readouterr().out
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "slos:\n"
            "  - name: impossible\n"
            "    metric: serve_worker_requests_total\n"
            "    kind: max\n"
            "    objective: 0\n"
        )
        assert main(["obs-export", "--obs-dir", str(obs_dir),
                     "--slo", str(bad)]) == 1
        assert "health: VIOLATED" in capsys.readouterr().out

    def test_missing_or_empty_directory_exits_two(self, tmp_path, capsys):
        assert main(["obs-export", "--obs-dir",
                     str(tmp_path / "nope")]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["obs-export", "--obs-dir", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "not a directory" in err
        assert "no metrics planes" in err


class TestServeBenchProcessFleet:
    def test_fleet_capture_conserves_counts(self, data_dir, tmp_path, capsys):
        out_path = tmp_path / "BENCH_mp.json"
        merged_trace = tmp_path / "merged-trace.jsonl"
        slo = tmp_path / "slo.yaml"
        slo.write_text(SERVE_SLO.format(objective=5.0))
        code = main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--backend", "process", "--workers", "2",
            "--duration", "0.3", "--timeout", "10",
            "--snapshot-dir", str(tmp_path / "snapshots"),
            "--slo", str(slo),
            "--trace", str(tmp_path / "router-trace.jsonl"),
            "--trace-merged", str(merged_trace),
            "--out", str(out_path),
        ])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["report"]["n_errors"] == 0
        fleet = payload["fleet"]
        assert fleet is not None
        # The merged plane view conserves the router's own counts.
        assert fleet["worker_requests_total"] >= payload["report"]["n_ok"]
        assert fleet["worker_restarts"] == 0
        assert fleet["slo"]["ok"], fleet["slo"]
        assert fleet["slo"]["source"] == "fleet"
        # The merged trace carries cross-process parentage.
        spans = [json.loads(line)
                 for line in merged_trace.read_text().splitlines()]
        routes = {s["span_id"] for s in spans if s["name"] == "serve.route"}
        assert any(
            s["name"] == "serve.request" and s.get("parent_id") in routes
            for s in spans
        ), fleet["trace"]

    def test_thread_backend_has_no_fleet_section(self, data_dir, tmp_path):
        out_path = tmp_path / "BENCH_thread.json"
        code = main([
            "serve-bench", "--data", str(data_dir),
            "--locations", str(data_dir / "ground_truth.json"),
            "--duration", "0.2", "--out", str(out_path),
        ])
        assert code == 0
        assert json.loads(out_path.read_text())["fleet"] is None
