"""Shared fixtures: a tiny synthetic dataset generated once per session."""

import pytest

from repro.core import DLInfMAConfig, build_artifacts
from repro.eval import Workload
from repro.synth import generate_dataset, tiny_config


@pytest.fixture(scope="session")
def tiny_dataset():
    return generate_dataset(tiny_config())


@pytest.fixture(scope="session")
def tiny_workload(tiny_dataset):
    return Workload.from_dataset(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_artifacts(tiny_workload):
    return build_artifacts(
        tiny_workload.trips,
        tiny_workload.addresses,
        tiny_workload.projection,
        DLInfMAConfig(),
    )
