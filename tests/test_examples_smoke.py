"""Smoke tests: every example script imports cleanly and exposes main().

Full example runs train models on full-size presets (seconds to minutes);
the benchmark suite exercises those code paths.  Here we guard against
import rot — broken imports, renamed APIs, syntax errors.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=[s.stem for s in SCRIPTS])
def test_example_imports_and_has_main(script):
    spec = importlib.util.spec_from_file_location(f"example_{script.stem}", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{script.name} needs a main()"


def test_expected_examples_present():
    names = {s.stem for s in SCRIPTS}
    assert {"quickstart", "case_studies", "route_planning", "availability", "building_level"} <= names
