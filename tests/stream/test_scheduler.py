"""RefreshScheduler: promotion gates, rollback, audit trail."""

import pytest

from repro.geo import LocalProjection, Point
from repro.obs import MetricsRegistry, SLO
from repro.stream import (
    EmittedStay,
    GateConfig,
    RefreshScheduler,
    ShardedPoolMerger,
    StreamMetrics,
)
from repro.trajectory import StayPoint

PROJ = LocalProjection(Point(116.0, 39.9))


class StubIngestor:
    """Hands the scheduler pre-cooked batches of emitted stays."""

    def __init__(self):
        self.batches = []

    def drain_stays(self):
        return self.batches.pop(0) if self.batches else []


def emitted_at(x, y, courier, duration=150.0, wall_t=0.0):
    lng, lat = PROJ.to_lnglat(x, y)
    stay = StayPoint(
        lng=float(lng), lat=float(lat),
        t_arrive=0.0, t_leave=duration,
        courier_id=courier, n_points=12,
    )
    return EmittedStay(stay, wall_t)


def legit_batch(tag, offset=0.0):
    """Twenty ordinary stays: 4 couriers at each of 5 fresh sites.

    Each batch visits its own sites (``offset`` separates them), the
    steady-state shape of a healthy stream: new candidates arrive with
    the same weight/duration profile, so the distribution fingerprint
    is stable even though the pool keeps growing.
    """
    return [
        emitted_at(offset + 200.0 * site, 0.0, f"{tag}-s{site}-c{k}")
        for site in range(5)
        for k in range(4)
    ]


def poison_batch():
    """Far-off, long-dwell stays: the duration and weight shape shift."""
    return [
        emitted_at(50_000.0 + 300.0 * site, 50_000.0,
                   f"poison-{site}-{k}", duration=7_200.0)
        for site in range(5)
        for k in range(4)
    ]


def make_scheduler(batches, slos=(), gate=None, addresses=None):
    ingestor = StubIngestor()
    ingestor.batches = list(batches)
    metrics = StreamMetrics(registry=MetricsRegistry())
    versions = []

    def promote(locations):
        versions.append(locations)
        return len(versions)

    scheduler = RefreshScheduler(
        ingestor,
        merger=ShardedPoolMerger(PROJ),
        metrics=metrics,
        addresses=addresses or {},
        promote=promote,
        slos=slos,
        gate=gate or GateConfig(),
        interval_s=60.0,
    )
    return scheduler, metrics, versions


class TestWarmupAndPromotion:
    def test_empty_drain_is_skipped(self):
        scheduler, metrics, versions = make_scheduler([])
        record = scheduler.tick()
        assert record.outcome == "skipped_empty"
        assert versions == []
        assert metrics.promotions.value(outcome="skipped_empty") == 1

    def test_warmup_then_gated_promotion(self):
        scheduler, metrics, versions = make_scheduler(
            [legit_batch("b1"), legit_batch("b2", 10_000.0), legit_batch("b3", 20_000.0)]
        )
        outcomes = [scheduler.tick().outcome for _ in range(3)]
        # First two skip the drift gate (bootstrap shifts its own
        # distribution); the third faces it — and passes, because the
        # batch matches the accepted history.
        assert outcomes == ["warmup", "warmup", "promoted"]
        assert scheduler.n_promoted == 3
        assert len(versions) == 3
        assert metrics.promotions.value(outcome="promoted") == 1

    def test_promotion_snaps_addresses_to_candidates(self):
        lng, lat = PROJ.to_lnglat(200.0, 0.0)
        scheduler, _, versions = make_scheduler(
            [legit_batch("b1")],
            addresses={"a1": Point(float(lng) + 1e-4, float(lat))},
        )
        record = scheduler.tick()
        assert record.outcome == "warmup"
        assert record.n_locations == 1
        assert "a1" in versions[0]

    def test_freshness_observed_per_promoted_stay(self):
        scheduler, metrics, _ = make_scheduler([legit_batch("b1")])
        seed_count = metrics.freshness.count()
        scheduler.tick()
        assert metrics.freshness.count() == seed_count + 20


class TestDriftGate:
    def test_poisoned_batch_is_rejected_and_rolled_back(self):
        scheduler, metrics, versions = make_scheduler(
            [legit_batch("b1"), legit_batch("b2", 10_000.0), legit_batch("b3", 20_000.0),
             poison_batch()]
        )
        for _ in range(3):
            scheduler.tick()
        committed = sorted(
            (c.x, c.y, c.weight)
            for c in scheduler.merger.all_clusters()
        )
        version_count = len(versions)

        record = scheduler.tick()
        assert record.outcome == "rejected_drift"
        assert record.reason and "PSI" in record.reason
        assert record.drift is not None and record.drift["drifted"]
        # The rejected refresh never became the served snapshot...
        assert len(versions) == version_count
        # ...and the pool is exactly as before the batch.
        after = sorted(
            (c.x, c.y, c.weight)
            for c in scheduler.merger.all_clusters()
        )
        assert after == committed
        # Rejection is observable: quarantine + promotions counters.
        assert metrics.stays_quarantined.value() == 20
        assert metrics.promotions.value(outcome="rejected_drift") == 1
        assert scheduler.n_rejected == 1

    def test_rejected_batch_does_not_launder_the_baseline(self):
        """A second identical poison batch must also be rejected."""
        scheduler, _, versions = make_scheduler(
            [legit_batch("b1"), legit_batch("b2", 10_000.0), legit_batch("b3", 20_000.0),
             poison_batch(), poison_batch()]
        )
        outcomes = [scheduler.tick().outcome for _ in range(5)]
        assert outcomes[-2:] == ["rejected_drift", "rejected_drift"]
        assert len(versions) == 3

    def test_legit_batch_still_promotes_after_a_rejection(self):
        scheduler, _, _ = make_scheduler(
            [legit_batch("b1"), legit_batch("b2", 10_000.0), legit_batch("b3", 20_000.0),
             poison_batch(), legit_batch("b4", 30_000.0)]
        )
        outcomes = [scheduler.tick().outcome for _ in range(5)]
        assert outcomes[-2:] == ["rejected_drift", "promoted"]


class TestSLOGate:
    def test_slo_violation_blocks_promotion_even_in_warmup(self):
        slo = SLO(name="bus-bound", metric="stream_bus_depth",
                  kind="max", objective=5.0)
        scheduler, metrics, versions = make_scheduler(
            [legit_batch("b1")], slos=(slo,)
        )
        metrics.set_gauge("bus_depth", 50.0)
        record = scheduler.tick()
        assert record.outcome == "rejected_slo"
        assert "bus-bound" in record.reason
        assert record.slo is not None and not record.slo["ok"]
        assert versions == []
        assert metrics.stays_quarantined.value() == 20

    def test_slo_gate_passes_when_healthy(self):
        slo = SLO(name="bus-bound", metric="stream_bus_depth",
                  kind="max", objective=5.0)
        scheduler, _, versions = make_scheduler(
            [legit_batch("b1")], slos=(slo,)
        )
        record = scheduler.tick()
        assert record.outcome == "warmup"
        assert len(versions) == 1


class TestAuditTrail:
    def test_every_tick_is_recorded_in_order(self):
        scheduler, _, _ = make_scheduler(
            [legit_batch("b1"), [], legit_batch("b2", 10_000.0)]
        )
        for _ in range(3):
            scheduler.tick()
        trail = scheduler.audit_trail()
        assert [r["tick"] for r in trail] == [1, 2, 3]
        assert [r["outcome"] for r in trail] == [
            "warmup", "skipped_empty", "warmup"
        ]
        assert all("wall_t" in r and "n_candidates" in r for r in trail)

    def test_rejection_record_carries_the_evidence(self):
        scheduler, _, _ = make_scheduler(
            [legit_batch("b1"), legit_batch("b2", 10_000.0), legit_batch("b3", 20_000.0),
             poison_batch()]
        )
        for _ in range(4):
            scheduler.tick()
        rejected = [r for r in scheduler.audit_trail()
                    if r["outcome"] == "rejected_drift"]
        assert len(rejected) == 1
        assert rejected[0]["n_stays"] == 20
        assert rejected[0]["drift"]["max_psi"] > 0.25


class TestBackgroundLoop:
    def test_start_stop_runs_final_tick(self):
        scheduler, _, versions = make_scheduler([legit_batch("b1")])
        scheduler.start()
        with pytest.raises(RuntimeError):
            scheduler.start()
        scheduler.stop(final_tick=True)
        # The batch was drained either by the loop or the final tick.
        assert len(versions) == 1
        assert scheduler.records
