"""StreamBus: bounded admission, overflow policies, close semantics."""

import threading
import time

import pytest

from repro.stream import GpsFix, OverflowPolicy, StreamBus


def fix(i, courier="c0"):
    return GpsFix(courier, 116.0, 39.9, float(i))


class TestAdmission:
    def test_fifo_order_and_wall_stamp(self):
        bus = StreamBus(capacity=8)
        t0 = time.time()
        for i in range(5):
            result = bus.publish(fix(i))
            assert result.admitted and not result.shed
        batch = bus.take_batch(max_n=16, timeout_s=0.0)
        assert [f.t for f in batch] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert all(f.wall_t >= t0 for f in batch)
        assert bus.n_published == 5 and bus.n_shed == 0

    def test_take_batch_respects_max_n(self):
        bus = StreamBus(capacity=8)
        for i in range(6):
            bus.publish(fix(i))
        assert len(bus.take_batch(max_n=4, timeout_s=0.0)) == 4
        assert len(bus) == 2

    def test_take_batch_times_out_empty(self):
        bus = StreamBus(capacity=4)
        t0 = time.monotonic()
        assert bus.take_batch(timeout_s=0.05) == []
        assert time.monotonic() - t0 < 5.0


class TestOverflow:
    def test_block_sheds_on_timeout(self):
        bus = StreamBus(capacity=2, policy=OverflowPolicy.BLOCK)
        bus.publish(fix(0))
        bus.publish(fix(1))
        result = bus.publish(fix(2), timeout_s=0.05)
        assert not result.admitted
        assert result.n_shed == 1
        assert bus.n_shed == 1
        assert len(bus) == 2  # queued work untouched

    def test_block_unblocks_when_consumer_drains(self):
        bus = StreamBus(capacity=1, policy=OverflowPolicy.BLOCK)
        bus.publish(fix(0))
        results = []

        def produce():
            results.append(bus.publish(fix(1), timeout_s=5.0))

        producer = threading.Thread(target=produce)
        producer.start()
        time.sleep(0.05)
        drained = bus.take_batch(max_n=1, timeout_s=1.0)
        producer.join(timeout=5.0)
        assert not producer.is_alive()
        assert drained[0].t == 0.0
        assert results[0].admitted
        assert bus.take_batch(timeout_s=0.5)[0].t == 1.0

    def test_shed_newest_drops_the_offer(self):
        bus = StreamBus(capacity=2, policy=OverflowPolicy.SHED_NEWEST)
        bus.publish(fix(0))
        bus.publish(fix(1))
        result = bus.publish(fix(2))
        assert not result.admitted and result.shed == ()
        assert [f.t for f in bus.take_batch(timeout_s=0.0)] == [0.0, 1.0]

    def test_shed_oldest_returns_the_victim(self):
        bus = StreamBus(capacity=2, policy=OverflowPolicy.SHED_OLDEST)
        bus.publish(fix(0))
        bus.publish(fix(1))
        result = bus.publish(fix(2))
        assert result.admitted
        assert [v.t for v in result.shed] == [0.0]
        assert result.n_shed == 1
        assert [f.t for f in bus.take_batch(timeout_s=0.0)] == [1.0, 2.0]


class TestClose:
    def test_publish_after_close_raises(self):
        bus = StreamBus(capacity=4)
        bus.publish(fix(0))
        bus.close()
        assert bus.closed
        with pytest.raises(RuntimeError):
            bus.publish(fix(1))

    def test_queue_drains_after_close(self):
        bus = StreamBus(capacity=4)
        for i in range(3):
            bus.publish(fix(i))
        bus.close()
        assert [f.t for f in bus.take_batch(timeout_s=0.0)] == [0.0, 1.0, 2.0]
        # Closed and empty: returns immediately, no timeout dwell.
        t0 = time.monotonic()
        assert bus.take_batch(timeout_s=10.0) == []
        assert time.monotonic() - t0 < 5.0

    def test_blocked_producer_raises_on_close(self):
        bus = StreamBus(capacity=1, policy=OverflowPolicy.BLOCK)
        bus.publish(fix(0))
        errors = []

        def produce():
            try:
                bus.publish(fix(1), timeout_s=10.0)
            except RuntimeError as exc:
                errors.append(exc)

        producer = threading.Thread(target=produce)
        producer.start()
        time.sleep(0.05)
        bus.close()
        producer.join(timeout=5.0)
        assert not producer.is_alive()
        assert errors, "blocked producer must observe the close"
