"""StreamMetrics: fail-closed pre-seeding and the shm fleet plane."""

import os

from repro.obs import MetricsRegistry
from repro.obs.shm import merge_snapshots, scrape_planes
from repro.stream import IngestOutcome, StreamMetrics
from repro.stream.metrics import PROMOTION_OUTCOMES


def families(registry):
    doc = registry.to_dict()
    return {m["name"]: m for m in doc["metrics"]}


class TestPreSeeding:
    def test_every_family_exists_at_zero_before_any_event(self):
        metrics = StreamMetrics(registry=MetricsRegistry())
        fams = families(metrics.registry)
        for outcome in IngestOutcome:
            rows = [s for s in fams["stream_events_total"]["samples"]
                    if s["labels"] == {"outcome": outcome.value}]
            assert rows and rows[0]["value"] == 0, outcome
        for outcome in PROMOTION_OUTCOMES:
            rows = [s for s in fams["stream_promotions_total"]["samples"]
                    if s["labels"] == {"outcome": outcome}]
            assert rows and rows[0]["value"] == 0, outcome
        for name in ("stream_stays_emitted_total",
                     "stream_stays_quarantined_total",
                     "stream_evictions_total",
                     "stream_courier_states", "stream_bus_depth",
                     "stream_pool_candidates", "stream_snapshot_version"):
            assert name in fams, name

    def test_freshness_histogram_has_the_seed_observation(self):
        """A quantile SLO must be evaluable before the first promotion."""
        from repro.obs import SLO, evaluate_slos

        metrics = StreamMetrics(registry=MetricsRegistry())
        assert metrics.freshness.count() == 1
        slo = SLO(name="freshness", metric="stream_freshness_lag_seconds",
                  kind="quantile", quantile=0.95, objective=30.0)
        report = evaluate_slos(metrics.registry.to_dict(), [slo],
                               emit_events=False)
        # Fail-closed engine: without the seed this would be a
        # no-data violation on the very first tick.
        assert report.ok, report.to_dict()

    def test_loss_identity_starts_at_zero(self):
        metrics = StreamMetrics(registry=MetricsRegistry())
        assert metrics.n_lost() == 0
        counts = metrics.event_counts()
        assert set(counts) == {o.value for o in IngestOutcome}
        assert all(v == 0 for v in counts.values())

    def test_writers_update_the_counts(self):
        metrics = StreamMetrics(registry=MetricsRegistry())
        metrics.count_event(IngestOutcome.ACCEPTED, 3)
        metrics.count_event(IngestOutcome.LATE)
        metrics.count_event(IngestOutcome.SHED, 2)
        assert metrics.event_counts()["accepted"] == 3
        assert metrics.n_lost() == 3
        metrics.count_promotion("rejected_drift")
        assert metrics.promotions.value(outcome="rejected_drift") == 1


class TestShmPlane:
    def test_plane_is_created_and_scrapeable(self, tmp_path):
        obs_dir = str(tmp_path / "obs")
        metrics = StreamMetrics(registry=MetricsRegistry(), obs_dir=obs_dir)
        assert os.path.exists(os.path.join(obs_dir, "metrics-stream.shm"))
        metrics.count_event(IngestOutcome.ACCEPTED, 7)
        metrics.count_promotion("promoted")
        metrics.set_gauge("bus_depth", 42.0)
        metrics.observe_freshness(1.5)
        metrics.close()

        # Post-mortem: the plane outlives the writer, like the serve
        # worker planes, and merges into the fleet registry.
        snapshots = scrape_planes(obs_dir)
        assert len(snapshots) == 1
        fams = families(merge_snapshots(snapshots))
        events = {tuple(sorted(s["labels"].items())): s["value"]
                  for s in fams["stream_events_total"]["samples"]}
        assert events[(("outcome", "accepted"),)] == 7
        # Pre-seeded labels are present in the plane too (fail-closed).
        assert events[(("outcome", "shed"),)] == 0
        depth = fams["stream_bus_depth"]["samples"][0]["value"]
        assert depth == 42.0

    def test_plane_mirrors_the_freshness_seed(self, tmp_path):
        obs_dir = str(tmp_path / "obs")
        metrics = StreamMetrics(registry=MetricsRegistry(), obs_dir=obs_dir)
        metrics.close()
        fams = families(merge_snapshots(scrape_planes(obs_dir)))
        sample = fams["stream_freshness_lag_seconds"]["samples"][0]
        # The merged fleet family carries the one 0.0 seed observation,
        # so a plane-only quantile gate is well-formed from tick zero.
        assert sample["count"] == 1
        assert sample["buckets"]["0.05"] == 1

    def test_registry_and_plane_stay_in_sync(self, tmp_path):
        obs_dir = str(tmp_path / "obs")
        metrics = StreamMetrics(registry=MetricsRegistry(), obs_dir=obs_dir)
        for _ in range(5):
            metrics.count_event(IngestOutcome.DUPLICATE)
        metrics.close()
        fams = families(merge_snapshots(scrape_planes(obs_dir)))
        plane_value = next(
            s["value"] for s in fams["stream_events_total"]["samples"]
            if s["labels"] == {"outcome": "duplicate"}
        )
        assert plane_value == metrics.events.value(outcome="duplicate") == 5
