"""Online extractor: batch parity, late/duplicate handling, eviction."""

import numpy as np
import pytest

from repro.geo import LocalProjection, Point
from repro.stream import (
    GpsFix,
    IngestOutcome,
    OnlineExtractorConfig,
    OnlineStayExtractor,
)
from repro.trajectory import TrajPoint, Trajectory, detect_stay_points


def walk_fixes(courier="c0", seed=0, n_dwells=5):
    """A dwell-travel-dwell trajectory with noisy fixes (meters-level)."""
    rng = np.random.default_rng(seed)
    proj = LocalProjection(Point(116.0, 39.9))
    fixes = []
    t = 0.0
    x, y = 0.0, 0.0
    for _ in range(n_dwells):
        dwell_end = t + float(rng.uniform(40.0, 140.0))
        while t < dwell_end:
            lng, lat = proj.to_lnglat(
                x + float(rng.normal(0, 4.0)), y + float(rng.normal(0, 4.0))
            )
            fixes.append(GpsFix(courier, float(lng), float(lat), t))
            t += float(rng.uniform(4.0, 9.0))
        # Travel leg: a few fast fixes well past d_max.
        for _ in range(4):
            x += float(rng.uniform(40.0, 90.0))
            y += float(rng.uniform(-60.0, 60.0))
            lng, lat = proj.to_lnglat(x, y)
            fixes.append(GpsFix(courier, float(lng), float(lat), t))
            t += float(rng.uniform(4.0, 9.0))
    return fixes


def batch_stays(fixes):
    by_courier = {}
    for f in fixes:
        by_courier.setdefault(f.courier_id, []).append(f)
    stays = []
    for courier_id in sorted(by_courier):
        pts = sorted(by_courier[courier_id], key=lambda f: f.t)
        traj = Trajectory(
            courier_id, [TrajPoint(f.lng, f.lat, f.t) for f in pts]
        )
        stays.extend(detect_stay_points(traj))
    return stays


def stay_key(s):
    return (s.courier_id, s.lng, s.lat, s.t_arrive, s.t_leave, s.n_points)


def run_online(fixes, lateness_s=30.0):
    extractor = OnlineStayExtractor(
        OnlineExtractorConfig(lateness_s=lateness_s)
    )
    outcomes = []
    emitted = []
    for f in fixes:
        outcome, stays = extractor.ingest(f)
        outcomes.append(outcome)
        emitted.extend(stays)
    emitted.extend(extractor.flush_all())
    return extractor, outcomes, emitted


class TestBatchParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_in_order_parity_is_bit_exact(self, seed):
        fixes = walk_fixes(seed=seed)
        _, outcomes, emitted = run_online(fixes)
        assert all(o is IngestOutcome.ACCEPTED for o in outcomes)
        online = sorted(stay_key(e.stay) for e in emitted)
        reference = sorted(stay_key(s) for s in batch_stays(fixes))
        assert reference, "walk must contain stays for the test to bite"
        assert online == reference  # exact floats, not approx

    @pytest.mark.parametrize("seed", range(5))
    def test_out_of_order_and_duplicate_parity(self, seed):
        fixes = walk_fixes(seed=seed)
        rng = np.random.default_rng(seed + 1000)
        # Bounded disorder: arrival = event order jittered < lateness.
        jitter = rng.uniform(0.0, 25.0, len(fixes))
        order = np.argsort(np.array([f.t for f in fixes]) + jitter,
                           kind="stable")
        arrivals = [fixes[i] for i in order]
        # Sprinkle duplicates shortly after their originals.
        with_dups = []
        for i, f in enumerate(arrivals):
            with_dups.append(f)
            if rng.random() < 0.1:
                with_dups.append(f)
        _, outcomes, emitted = run_online(with_dups, lateness_s=30.0)
        n_dup = sum(1 for o in outcomes if o is IngestOutcome.DUPLICATE)
        assert n_dup == len(with_dups) - len(fixes)
        assert not any(o is IngestOutcome.LATE for o in outcomes)
        online = sorted(stay_key(e.stay) for e in emitted)
        reference = sorted(stay_key(s) for s in batch_stays(fixes))
        assert online == reference

    def test_multiple_couriers_are_independent(self):
        fixes = walk_fixes("c0", seed=1) + walk_fixes("c1", seed=2)
        fixes.sort(key=lambda f: f.t)
        _, _, emitted = run_online(fixes)
        online = sorted(stay_key(e.stay) for e in emitted)
        reference = sorted(stay_key(s) for s in batch_stays(fixes))
        assert online == reference
        assert {k[0] for k in online} == {"c0", "c1"}


class TestLateAndDuplicate:
    def test_fix_behind_watermark_is_late(self):
        extractor = OnlineStayExtractor(
            OnlineExtractorConfig(lateness_s=10.0)
        )
        for t in (0.0, 5.0, 30.0):  # watermark advances to 20
            outcome, _ = extractor.ingest(GpsFix("c0", 116.0, 39.9, t))
            assert outcome is IngestOutcome.ACCEPTED
        outcome, _ = extractor.ingest(GpsFix("c0", 116.0, 39.9, 3.0))
        assert outcome is IngestOutcome.LATE

    def test_duplicate_of_flushed_fix_is_duplicate_not_late(self):
        extractor = OnlineStayExtractor(
            OnlineExtractorConfig(lateness_s=10.0)
        )
        extractor.ingest(GpsFix("c0", 116.0, 39.9, 0.0))
        extractor.ingest(GpsFix("c0", 116.0, 39.9, 5.0))
        extractor.ingest(GpsFix("c0", 116.0, 39.9, 30.0))
        outcome, _ = extractor.ingest(GpsFix("c0", 116.0, 39.9, 5.0))
        assert outcome is IngestOutcome.DUPLICATE

    def test_duplicate_while_pending_is_duplicate(self):
        extractor = OnlineStayExtractor()
        extractor.ingest(GpsFix("c0", 116.0, 39.9, 0.0))
        outcome, _ = extractor.ingest(GpsFix("c0", 116.0, 39.9, 0.0))
        assert outcome is IngestOutcome.DUPLICATE

    def test_wall_t_is_latest_contributing_arrival(self):
        extractor = OnlineStayExtractor(
            OnlineExtractorConfig(lateness_s=0.0)
        )
        emitted = []
        for i in range(10):
            _, stays = extractor.ingest(
                GpsFix("c0", 116.0, 39.9, float(i * 10), wall_t=100.0 + i)
            )
            emitted.extend(stays)
        emitted.extend(extractor.flush_all())
        assert emitted
        assert emitted[0].wall_t == max(
            100.0 + i for i in range(emitted[0].stay.n_points)
        )


class TestEviction:
    def test_idle_state_is_evicted_and_memory_bounded(self):
        """Couriers that go silent are finalized and freed."""
        extractor = OnlineStayExtractor(
            OnlineExtractorConfig(lateness_s=0.0, idle_timeout_s=100.0)
        )
        # 50 couriers each dwell briefly, staggered in event time.
        for k in range(50):
            base = k * 1000.0
            for i in range(12):
                extractor.ingest(
                    GpsFix(f"c{k}", 116.0, 39.9, base + i * 5.0)
                )
            evicted = extractor.evict_idle(now_event_t=base)
            # Every earlier courier is >100s idle by now.
            assert extractor.n_states <= 1
            for e in evicted:
                assert e.stay.courier_id != f"c{k}"
        assert extractor.n_evicted == 49

    def test_eviction_emits_the_open_window(self):
        extractor = OnlineStayExtractor(
            OnlineExtractorConfig(lateness_s=0.0, idle_timeout_s=50.0)
        )
        for i in range(10):  # 90s dwell, never closed by a travel fix
            extractor.ingest(GpsFix("c0", 116.0, 39.9, i * 10.0))
        emitted = extractor.evict_idle(now_event_t=1000.0)
        assert len(emitted) == 1
        assert emitted[0].stay.n_points == 10
        assert extractor.n_states == 0

    def test_fresh_state_after_eviction(self):
        extractor = OnlineStayExtractor(
            OnlineExtractorConfig(lateness_s=0.0, idle_timeout_s=50.0)
        )
        extractor.ingest(GpsFix("c0", 116.0, 39.9, 0.0))
        extractor.evict_idle(now_event_t=1000.0)
        outcome, _ = extractor.ingest(GpsFix("c0", 116.0, 39.9, 0.5))
        # A post-eviction fix starts a fresh state: accepted, not late.
        assert outcome is IngestOutcome.ACCEPTED
        assert extractor.n_states == 1
