"""StreamIngestor end-to-end: accounting identity and stream parity."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.stream import (
    GpsFix,
    OnlineExtractorConfig,
    OnlineStayExtractor,
    OverflowPolicy,
    StreamBus,
    StreamIngestor,
    StreamMetrics,
)
from repro.synth import (
    City,
    CityConfig,
    EventStreamConfig,
    FixEventStream,
    SimulationConfig,
    TripSimulator,
    build_day_streams,
)
from repro.trajectory import detect_stay_points


@pytest.fixture(scope="module")
def day_streams():
    rng = np.random.default_rng(0)
    city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
    sim = TripSimulator(city, SimulationConfig(n_days=2), rng)
    return build_day_streams(sim.simulate(), city,
                             rng=np.random.default_rng(0))


def make_ingestor(capacity=4096, policy=OverflowPolicy.BLOCK,
                  lateness_s=30.0, record=False):
    metrics = StreamMetrics(registry=MetricsRegistry())
    bus = StreamBus(capacity=capacity, policy=policy)
    extractor = OnlineStayExtractor(
        OnlineExtractorConfig(lateness_s=lateness_s,
                              idle_timeout_s=30 * 86_400.0)
    )
    return StreamIngestor(bus, extractor, metrics, record_fixes=record)


class TestAccounting:
    def test_identity_holds_after_close(self, day_streams):
        stream = FixEventStream(
            day_streams, seed=0,
            config=EventStreamConfig(disorder_s=20.0, p_duplicate=0.05),
        )
        ingestor = make_ingestor()
        ingestor.start()
        events = stream.events_for_cycle(0)
        for fix in events:
            ingestor.offer(fix, timeout_s=5.0)
        ingestor.close(flush=True)
        counts = ingestor.metrics.event_counts()
        assert ingestor.n_offered == len(events)
        assert ingestor.n_offered == sum(counts.values())
        assert counts["duplicate"] > 0  # the generator really duplicated
        assert counts["late"] == 0      # lateness_s > disorder_s
        assert counts["shed"] == 0
        assert ingestor.metrics.n_lost() == 0

    def test_shed_is_counted_not_lost_silently(self):
        ingestor = make_ingestor(capacity=4,
                                 policy=OverflowPolicy.SHED_NEWEST)
        # No consumer running: the bus fills and sheds the rest.
        for i in range(10):
            ingestor.offer(GpsFix("c0", 116.0, 39.9, float(i)))
        counts = ingestor.metrics.event_counts()
        assert counts["shed"] == 6
        assert ingestor.n_offered == 10
        assert ingestor.metrics.n_lost() == 6

    def test_shed_oldest_charges_the_victim(self):
        ingestor = make_ingestor(capacity=4,
                                 policy=OverflowPolicy.SHED_OLDEST)
        for i in range(10):
            admitted = ingestor.offer(GpsFix("c0", 116.0, 39.9, float(i)))
            assert admitted  # SHED_OLDEST always admits the new fix
        assert ingestor.metrics.event_counts()["shed"] == 6


class TestEndToEndParity:
    def test_stream_replay_reproduces_batch_stays(self, day_streams):
        """Full cycle through bus + consumer thread == batch detector."""
        stream = FixEventStream(
            day_streams, seed=0,
            config=EventStreamConfig(disorder_s=20.0, p_duplicate=0.03),
        )
        ingestor = make_ingestor(record=True)
        ingestor.start()
        for fix in stream.events_for_cycle(0):
            ingestor.offer(fix, timeout_s=5.0)
        ingestor.close(flush=True)

        online = sorted(
            (e.stay.courier_id, e.stay.lng, e.stay.lat,
             e.stay.t_arrive, e.stay.t_leave, e.stay.n_points)
            for e in ingestor.drain_stays()
        )
        reference = sorted(
            (s.courier_id, s.lng, s.lat, s.t_arrive, s.t_leave, s.n_points)
            for traj in stream.expected_trajectories(n_cycles=1).values()
            for s in detect_stay_points(traj)
        )
        assert reference, "cycle must contain stays"
        assert online == reference  # bit-exact, not approximate

    def test_drain_stays_is_destructive_fifo(self, day_streams):
        stream = FixEventStream(day_streams, seed=0)
        ingestor = make_ingestor()
        ingestor.start()
        for fix in stream.events_for_cycle(0):
            ingestor.offer(fix, timeout_s=5.0)
        ingestor.close(flush=True)
        first = ingestor.drain_stays()
        assert first
        assert ingestor.drain_stays() == []
        times = [e.stay.t_arrive for e in first
                 if e.stay.courier_id == first[0].stay.courier_id]
        assert times == sorted(times)
