"""Gate refusals arm the flight recorder: one refusal, one black box."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    configure_recorder,
    load_blackbox,
    reset_recorder,
)
from repro.stream import GateConfig

from tests.stream.test_scheduler import (
    legit_batch,
    make_scheduler,
    poison_batch,
)


@pytest.fixture(autouse=True)
def _fresh_recorder():
    reset_recorder()
    yield
    reset_recorder()


def _run_poisoned(gate=None):
    scheduler, metrics, versions = make_scheduler(
        [legit_batch("a"), legit_batch("b", 5_000.0), poison_batch()],
        gate=gate or GateConfig(warmup_promotions=2, psi_threshold=0.25),
    )
    records = [scheduler.tick() for _ in range(3)]
    return scheduler, records


class TestGateRefusalDump:
    def test_poisoned_tick_dumps_exactly_one_blackbox(self, tmp_path):
        configure_recorder(capacity=64, dump_dir=tmp_path,
                           registry=MetricsRegistry())
        _, records = _run_poisoned()
        assert records[-1].outcome == "rejected_drift"
        dumps = sorted(tmp_path.glob("blackbox-*.json"))
        assert len(dumps) == 1
        assert "gate_refusal" in dumps[0].name

    def test_dump_references_the_rejected_version(self, tmp_path):
        configure_recorder(capacity=64, dump_dir=tmp_path,
                           registry=MetricsRegistry())
        _, records = _run_poisoned()
        dump = load_blackbox(next(tmp_path.glob("blackbox-*.json")))
        context = dump["context"]
        assert context["served_version"] == 2  # two warmup promotions
        assert context["rejected_candidate_version"] == 3
        assert context["outcome"] == "rejected_drift"
        assert "PSI" in context["reason"]
        assert dump["registry"] is not None

    def test_promotions_do_not_dump(self, tmp_path):
        configure_recorder(capacity=64, dump_dir=tmp_path,
                           registry=MetricsRegistry())
        scheduler, metrics, versions = make_scheduler(
            [legit_batch("a"), legit_batch("b", 5_000.0)]
        )
        scheduler.tick()
        scheduler.tick()
        assert not list(tmp_path.glob("blackbox-*.json"))
