"""ShardedPoolMerger: two-phase stage/commit/rollback and snapping."""

import pytest

from repro.geo import LocalProjection, Point
from repro.stream import ShardedPoolMerger
from repro.trajectory import StayPoint

PROJ = LocalProjection(Point(116.0, 39.9))


def stay_at(x, y, courier="c0", duration=120.0, t0=0.0):
    lng, lat = PROJ.to_lnglat(x, y)
    return StayPoint(
        lng=float(lng), lat=float(lat),
        t_arrive=t0, t_leave=t0 + duration,
        courier_id=courier, n_points=10,
    )


def pool_state(merger):
    """Canonical snapshot of the merged cluster set."""
    return sorted(
        (round(c.x, 9), round(c.y, 9), c.weight)
        for c in merger.all_clusters()
    )


class TestStageCommit:
    def test_commit_makes_the_batch_permanent(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(0, 0), stay_at(5, 5), stay_at(2000, 0)])
        merger.commit()
        assert merger.n_committed_batches == 1
        assert merger.n_committed_stays == 3
        # 0/5 merge (40 m threshold); 2000 is its own candidate.
        assert merger.n_candidates() == 2
        assert merger.n_shards == 2  # 800 m cells

    def test_incremental_merge_accumulates_weight(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(0, 0)])
        merger.commit()
        merger.stage([stay_at(3, 3)])
        merger.commit()
        assert merger.n_candidates() == 1
        assert merger.all_clusters()[0].weight == pytest.approx(2.0)

    def test_single_staged_batch_at_a_time(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(0, 0)])
        with pytest.raises(RuntimeError):
            merger.stage([stay_at(9, 9)])
        merger.commit()
        with pytest.raises(RuntimeError):
            merger.commit()
        with pytest.raises(RuntimeError):
            merger.rollback()


class TestRollback:
    def test_rollback_restores_exact_prior_state(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(0, 0), stay_at(10, 0), stay_at(900, 900)])
        merger.commit()
        before = pool_state(merger)
        staged = [stay_at(1, 1), stay_at(905, 903), stay_at(-3000, 50)]
        merger.stage(staged)
        assert pool_state(merger) != before  # the stage really mutated
        quarantined = merger.rollback()
        assert quarantined == staged
        assert pool_state(merger) == before
        assert merger.n_committed_batches == 1

    def test_rollback_removes_shards_the_batch_created(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(0, 0)])
        merger.commit()
        assert merger.n_shards == 1
        merger.stage([stay_at(5000, 5000), stay_at(-5000, 0)])
        assert merger.n_shards == 3
        merger.rollback()
        assert merger.n_shards == 1

    def test_rollback_of_first_batch_leaves_empty_pool(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(0, 0), stay_at(700, 0)])
        merger.rollback()
        assert merger.n_candidates() == 0
        assert merger.n_shards == 0
        assert pool_state(merger) == []

    def test_chunked_stage_matches_unchunked_result(self):
        stays = [
            stay_at(100.0 * (i % 7), 90.0 * (i // 7), courier=f"c{i}")
            for i in range(30)
        ]
        small = ShardedPoolMerger(PROJ, max_chunk=4)
        small.stage(stays)
        small.commit()
        big = ShardedPoolMerger(PROJ, max_chunk=10_000)
        big.stage(stays)
        big.commit()
        # Chunking changes intermediate merge order, not the weights'
        # totals or the candidate count for well-separated sites.
        assert small.n_candidates() == big.n_candidates()
        assert sum(c.weight for c in small.all_clusters()) == pytest.approx(
            sum(c.weight for c in big.all_clusters())
        )


class TestMaterialization:
    def test_build_pool_ids_run_west_to_east(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(500, 0), stay_at(-500, 0), stay_at(0, 0)])
        merger.commit()
        pool = merger.build_pool()
        xs = [c.x for c in sorted(pool.candidates, key=lambda c: c.candidate_id)]
        assert xs == sorted(xs)

    def test_snap_locations_picks_heaviest_nearby(self):
        merger = ShardedPoolMerger(PROJ)
        # Heavy cluster at (30, 0), light one at (-30, 0).
        merger.stage(
            [stay_at(30, 0, courier=f"a{i}") for i in range(5)]
            + [stay_at(-30, 0, courier="b0")]
        )
        merger.commit()
        lng, lat = PROJ.to_lnglat(0.0, 0.0)
        snapped = merger.snap_locations(
            {"addr": Point(float(lng), float(lat))},
            snap_radius_m=100.0, min_weight=2.0,
        )
        assert "addr" in snapped
        x, y = PROJ.to_xy(snapped["addr"].lng, snapped["addr"].lat)
        assert float(x) == pytest.approx(30.0, abs=1.0)

    def test_snap_omits_unsupported_addresses(self):
        merger = ShardedPoolMerger(PROJ)
        merger.stage([stay_at(0, 0)])  # weight 1 < min_weight
        merger.commit()
        lng, lat = PROJ.to_lnglat(0.0, 0.0)
        far_lng, far_lat = PROJ.to_lnglat(10_000.0, 0.0)
        snapped = merger.snap_locations(
            {"weak": Point(float(lng), float(lat)),
             "far": Point(float(far_lng), float(far_lat))},
            snap_radius_m=100.0, min_weight=2.0,
        )
        assert snapped == {}
