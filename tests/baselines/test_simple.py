import numpy as np
import pytest

from repro.baselines import AnnotationBaseline, GeoCloudBaseline, GeocodingBaseline
from tests.core.helpers import PROJ, make_address, make_trip


@pytest.fixture()
def crafted():
    """Two trips: one clean confirmation at the spot (100, 0), one badly
    delayed confirmation annotated at (500, 0)."""
    trips = [
        make_trip("t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 130.0)]),
        make_trip("t2", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 131.0)]),
        make_trip(
            "t3", "c1",
            stops=[(100.0, 0.0, 60.0, 120.0), (500.0, 0.0, 300.0, 120.0)],
            waybills=[("a1", 360.0)],
        ),
    ]
    addresses = {"a1": make_address("a1", "b1", (90.0, 0.0))}
    return trips, addresses


class TestGeocodingBaseline:
    def test_returns_geocode(self, crafted):
        trips, addresses = crafted
        m = GeocodingBaseline().fit(trips, addresses, {}, [])
        preds = m.predict(["a1", "missing"])
        assert set(preds) == {"a1"}
        assert preds["a1"] == addresses["a1"].geocode


class TestAnnotationBaseline:
    def test_centroid_pulled_by_misannotation(self, crafted):
        trips, addresses = crafted
        m = AnnotationBaseline().fit(trips, addresses, {}, [], projection=PROJ)
        pred = m.predict(["a1"])["a1"]
        x, y = PROJ.to_xy(pred.lng, pred.lat)
        # Centroid of ~(100, 100, 500) — far from the true 100.
        assert x == pytest.approx(233.0, abs=25.0)

    def test_geocode_fallback_without_annotations(self, crafted):
        trips, addresses = crafted
        addresses = dict(addresses)
        addresses["lonely"] = make_address("lonely", "b2", (0.0, 0.0))
        m = AnnotationBaseline().fit(trips, addresses, {}, [], projection=PROJ)
        assert m.predict(["lonely"])["lonely"] == addresses["lonely"].geocode


class TestGeoCloudBaseline:
    def test_biggest_cluster_rejects_misannotation(self, crafted):
        """DBSCAN keeps the two good annotations and drops the outlier —
        the reason GeoCloud beats Annotation under mild delays."""
        trips, addresses = crafted
        m = GeoCloudBaseline(eps_m=50.0, min_pts=1).fit(trips, addresses, {}, [], projection=PROJ)
        pred = m.predict(["a1"])["a1"]
        x, _ = PROJ.to_xy(pred.lng, pred.lat)
        assert x == pytest.approx(100.0, abs=20.0)

    def test_beats_plain_annotation_on_crafted_case(self, crafted):
        trips, addresses = crafted
        anno = AnnotationBaseline().fit(trips, addresses, {}, [], projection=PROJ)
        cloud = GeoCloudBaseline().fit(trips, addresses, {}, [], projection=PROJ)
        true_x = 100.0
        def err(m):
            p = m.predict(["a1"])["a1"]
            x, y = PROJ.to_xy(p.lng, p.lat)
            return abs(x - true_x)
        assert err(cloud) < err(anno)

    def test_single_annotation(self):
        trips = [make_trip("t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 130.0)])]
        addresses = {"a1": make_address("a1", "b1", (90.0, 0.0))}
        m = GeoCloudBaseline().fit(trips, addresses, {}, [], projection=PROJ)
        pred = m.predict(["a1"])["a1"]
        x, _ = PROJ.to_xy(pred.lng, pred.lat)
        assert x == pytest.approx(100.0, abs=15.0)
