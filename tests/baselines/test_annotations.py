import numpy as np
import pytest

from repro.baselines import annotated_locations, position_at
from tests.core.helpers import PROJ, make_trip


class TestPositionAt:
    def test_interpolates_on_leg(self):
        trip = make_trip("t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 100.0)])
        # At t=30 the courier is halfway from station (-200,0) to (100,0).
        x, y = position_at(trip, 30.0, PROJ)
        assert x == pytest.approx(-50.0, abs=12.0)
        assert y == pytest.approx(0.0, abs=5.0)

    def test_during_dwell_at_spot(self):
        trip = make_trip("t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 100.0)])
        x, y = position_at(trip, 120.0, PROJ)
        assert x == pytest.approx(100.0, abs=5.0)

    def test_clamped_after_trip_end(self):
        trip = make_trip("t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 100.0)])
        x_end, _ = position_at(trip, 1e9, PROJ)
        lng, lat, _ = trip.trajectory.to_arrays()
        x_last, _ = PROJ.to_xy(float(lng[-1]), float(lat[-1]))
        assert x_end == pytest.approx(x_last)


class TestAnnotatedLocations:
    def test_immediate_confirmation_near_spot(self):
        trip = make_trip("t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 130.0)])
        annos = annotated_locations([trip], PROJ)
        assert set(annos) == {"a1"}
        a = annos["a1"][0]
        assert np.hypot(a.x - 100.0, a.y) < 10.0
        assert a.trip_id == "t1"

    def test_delayed_confirmation_away_from_spot(self):
        """The core mis-annotation phenomenon: a late confirmation lands
        wherever the courier is at that moment."""
        trip = make_trip(
            "t1", "c1",
            stops=[(100.0, 0.0, 60.0, 120.0), (500.0, 0.0, 300.0, 120.0)],
            waybills=[("a1", 360.0)],  # delivered at stop 1, confirmed at stop 2
        )
        a = annotated_locations([trip], PROJ)["a1"][0]
        assert np.hypot(a.x - 500.0, a.y) < 10.0  # annotated at the wrong spot

    def test_multiple_trips_accumulate(self):
        trips = [
            make_trip(f"t{i}", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 130.0)])
            for i in range(3)
        ]
        annos = annotated_locations(trips, PROJ)
        assert len(annos["a1"]) == 3
