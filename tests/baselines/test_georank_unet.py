import numpy as np
import pytest

from repro.baselines import GeoRankBaseline, UNetBaseline
from repro.baselines.unet import GRID, _build_grid, _CellGrid, _rasterize
from repro.baselines.annotations import AnnotatedLocation
from repro.eval import evaluate
from tests.core.helpers import PROJ


class TestGeoRankOnDataset:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_workload):
        m = GeoRankBaseline(seed=0)
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
        )
        return m

    def test_predicts_all_test_addresses(self, fitted, tiny_workload):
        preds = fitted.predict(tiny_workload.test_ids)
        assert set(preds) == set(tiny_workload.test_ids)

    def test_beats_geocoding(self, fitted, tiny_workload):
        preds = fitted.predict(tiny_workload.test_ids)
        ours = evaluate(preds, tiny_workload.ground_truth)
        geo = evaluate(
            {a: tiny_workload.addresses[a].geocode for a in tiny_workload.test_ids},
            tiny_workload.ground_truth,
        )
        assert ours.mae <= geo.mae * 1.2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GeoRankBaseline().predict(["a"])


class TestCellGrid:
    def test_cell_of_center(self):
        grid = _CellGrid(116.4, 39.9, 0.0004, 0.0002)
        assert grid.cell_of(116.4, 39.9) == (GRID // 2, GRID // 2)

    def test_cell_of_out_of_window(self):
        grid = _CellGrid(116.4, 39.9, 0.0004, 0.0002)
        assert grid.cell_of(116.5, 39.9) is None

    def test_center_of_roundtrip(self):
        grid = _CellGrid(116.4, 39.9, 0.0004, 0.0002)
        for row, col in [(0, 0), (4, 4), (8, 2)]:
            p = grid.center_of(row, col)
            assert grid.cell_of(p.lng, p.lat) == (row, col)

    def test_build_grid_centers_on_mode_cell(self):
        events = [AnnotatedLocation(x=0.0, y=0.0, t=0.0, trip_id="t")] * 5 + [
            AnnotatedLocation(x=400.0, y=0.0, t=0.0, trip_id="t")
        ]
        grid = _build_grid(events, PROJ)
        cx, _ = PROJ.to_xy(grid.center_lng, grid.center_lat)
        assert abs(cx) < 40.0  # near the 5-annotation cell, not the outlier

    def test_rasterize_counts_and_normalization(self):
        events = [AnnotatedLocation(x=0.0, y=0.0, t=0.0, trip_id="t")] * 3
        grid = _build_grid(events, PROJ)
        image = _rasterize(events, grid, PROJ)
        assert image.shape == (1, GRID, GRID)
        assert image.max() == pytest.approx(1.0)
        assert image.sum() == pytest.approx(1.0)  # single hot cell


class TestUNetOnDataset:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_workload):
        m = UNetBaseline(epochs=6, seed=0)
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
        )
        return m

    def test_predicts_all_test_addresses(self, fitted, tiny_workload):
        preds = fitted.predict(tiny_workload.test_ids)
        assert set(preds) == set(tiny_workload.test_ids)

    def test_predictions_inside_city(self, fitted, tiny_workload):
        for point in fitted.predict(tiny_workload.test_ids).values():
            x, y = tiny_workload.projection.to_xy(point.lng, point.lat)
            assert -2_000 < x < 5_000
            assert -2_000 < y < 5_000

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            UNetBaseline().predict(["a"])
