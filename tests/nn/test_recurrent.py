import numpy as np
import pytest

from repro.nn import LSTM, Tensor
from tests.nn.gradcheck import check_grad


class TestLSTM:
    def test_output_shapes(self):
        lstm = LSTM(5, 7, rng=np.random.default_rng(0))
        seq, (h, c) = lstm(Tensor(np.random.default_rng(1).normal(size=(3, 4, 5))))
        assert seq.shape == (3, 4, 7)
        assert h.shape == (3, 7)
        assert c.shape == (3, 7)

    def test_final_state_matches_last_output(self):
        lstm = LSTM(2, 3, rng=np.random.default_rng(0))
        seq, (h, _) = lstm(Tensor(np.random.default_rng(1).normal(size=(2, 6, 2))))
        np.testing.assert_allclose(seq.data[:, -1, :], h.data)

    def test_state_carry_equivalence(self):
        """Processing [a, b] equals processing a then b with carried state."""
        lstm = LSTM(3, 4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        a = rng.normal(size=(2, 3, 3))
        b = rng.normal(size=(2, 2, 3))
        full_seq, _ = lstm(Tensor(np.concatenate([a, b], axis=1)))
        _, state = lstm(Tensor(a))
        part_seq, _ = lstm(Tensor(b), state=state)
        np.testing.assert_allclose(part_seq.data, full_seq.data[:, 3:], rtol=1e-10)

    def test_wrong_input_size(self):
        lstm = LSTM(3, 4)
        with pytest.raises(ValueError):
            lstm(Tensor(np.zeros((2, 5, 9))))

    def test_parameters(self):
        lstm = LSTM(3, 4)
        params = lstm.parameters()
        assert len(params) == 3
        shapes = sorted(p.shape for p in params)
        assert shapes == [(3, 16), (4, 16), (16,)]

    def test_forget_bias_initialized_to_one(self):
        lstm = LSTM(2, 3)
        np.testing.assert_allclose(lstm.bias.data[3:6], 1.0)

    def test_gradients_flow_through_time(self):
        lstm = LSTM(2, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(1, 5, 2)), requires_grad=True)
        seq, _ = lstm(x)
        seq[:, -1, :].sum().backward()
        # Early time steps must receive gradient through the recurrence.
        assert np.abs(x.grad[0, 0]).sum() > 0
        for p in lstm.parameters():
            assert p.grad is not None

    def test_gradcheck_small(self):
        lstm = LSTM(2, 2, rng=np.random.default_rng(3))
        x = np.random.default_rng(4).normal(size=(1, 3, 2))

        def build(t):
            seq, _ = lstm(t)
            return (seq ** 2).sum()

        check_grad(build, x, rtol=1e-3, atol=1e-6)
