import numpy as np
import pytest

from repro.nn import SGD, Adam, StepLR, Tensor


def quadratic_loss(p):
    # f(p) = sum((p - 3)^2), minimum at 3.
    diff = p - Tensor(np.full(p.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_math(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()  # grad = 2(1-3) = -4
        opt.step()
        np.testing.assert_allclose(p.data, [1.4])

    def test_momentum_accumulates(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(2):
            opt.zero_grad()
            (p * 1.0).sum().backward()  # constant grad 1
            opt.step()
        # v1 = 1, p = -0.1; v2 = 1.9, p = -0.29
        np.testing.assert_allclose(p.data, [-0.29])

    def test_converges_on_quadratic(self):
        p = Tensor(np.array([10.0, -5.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, 3.0], atol=1e-6)

    def test_skips_params_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad yet; must not crash or move
        np.testing.assert_allclose(p.data, [1.0])

    def test_validation(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.array([10.0, -7.0]), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, 3.0], atol=1e-4)

    def test_first_step_is_lr_sized(self):
        # Adam's bias correction makes the first step ~lr * sign(grad).
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], lr=0.01)
        (p * 5.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-5)

    def test_weight_decay_pulls_to_zero(self):
        p = Tensor(np.array([5.0]), requires_grad=True)
        opt = Adam([p], lr=0.05, weight_decay=1.0)
        for _ in range(400):
            opt.zero_grad()
            (p * 0.0).sum().backward()  # zero task gradient
            opt.step()
        assert abs(p.data[0]) < 0.5

    def test_zero_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p])
        (p * 1.0).sum().backward()
        opt.zero_grad()
        assert p.grad is None


class TestStepLR:
    def test_halves_every_n_epochs(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=1e-4)
        sched = StepLR(opt, step_size=5, gamma=0.5)
        for epoch in range(1, 11):
            sched.step()
        assert opt.lr == pytest.approx(1e-4 * 0.25)
        assert sched.current_lr == opt.lr

    def test_no_decay_before_boundary(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=3, gamma=0.1)
        sched.step()
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_validation(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, gamma=0.0)
