"""Replay layer: TracedStep plan caching, replays, params, grads, RNG."""

import numpy as np
import pytest

from repro.nn import Adam, Dropout, Tensor, TracedStep, eager_mode, jit, lazy_mode


@pytest.fixture(autouse=True)
def force_lazy():
    with lazy_mode():
        yield


class TestPlanLifecycle:
    def test_trace_then_replay_same_values(self):
        step = TracedStep(lambda x: ((Tensor(x) * 2.0 + 1.0).relu()).numpy())
        a = np.random.default_rng(0).normal(size=(4, 4)).astype(np.float32)
        b = np.random.default_rng(1).normal(size=(4, 4)).astype(np.float32)
        first = step(a)  # trace
        second = step(b)  # replay
        assert step.n_plans == 1
        np.testing.assert_allclose(first, np.maximum(a * 2 + 1, 0))
        np.testing.assert_allclose(second, np.maximum(b * 2 + 1, 0))

    def test_new_signature_traces_new_plan(self):
        step = TracedStep(lambda x: (Tensor(x) + 1.0).numpy())
        step(np.zeros((2, 2), dtype=np.float32))
        step(np.zeros((3, 3), dtype=np.float32))
        assert step.n_plans == 2
        step(np.ones((2, 2), dtype=np.float32))  # replays plan 1
        assert step.n_plans == 2

    def test_reset_drops_plans(self):
        step = TracedStep(lambda x: (Tensor(x) + 1.0).numpy())
        step(np.zeros(3, dtype=np.float32))
        assert step.n_plans == 1
        step.reset()
        assert step.n_plans == 0

    def test_tuple_outputs_round_trip(self):
        def fn(x):
            t = Tensor(x)
            return (t * 2.0).numpy(), (t + 5.0).numpy()

        step = TracedStep(fn)
        a, b = step(np.ones(4, dtype=np.float32))
        c, d = step(np.full(4, 2.0, dtype=np.float32))
        np.testing.assert_allclose(a, 2.0 * np.ones(4))
        np.testing.assert_allclose(c, 4.0 * np.ones(4))
        np.testing.assert_allclose(d, 7.0 * np.ones(4))

    def test_unused_input_is_a_loud_error(self):
        step = TracedStep(lambda x, y: (Tensor(x) * 1.0).numpy())
        with pytest.raises(RuntimeError, match="never reached the graph"):
            step(np.ones(3, dtype=np.float32), np.ones(3, dtype=np.float32))

    def test_unrealized_output_is_a_loud_error(self):
        step = TracedStep(lambda x: np.asarray(x) + 1.0)  # bypasses the graph
        with pytest.raises(RuntimeError, match="not a realized graph array"):
            step(np.ones(3, dtype=np.float32))

    def test_eager_mode_bypasses_tracing(self):
        step = TracedStep(lambda x: (Tensor(x) + 1.0).numpy())
        with eager_mode():
            out = step(np.zeros(2, dtype=np.float32))
        assert step.n_plans == 0
        np.testing.assert_allclose(out, np.ones(2))


class TestParamsAndGrads:
    def test_replay_sees_in_place_param_updates(self):
        w = Tensor(np.full(3, 2.0, dtype=np.float32), requires_grad=True)
        step = TracedStep(lambda x: (Tensor(x) * w).numpy(), params=[w])
        x = np.ones(3, dtype=np.float32)
        np.testing.assert_allclose(step(x), 2.0 * np.ones(3))
        w.data -= 1.0  # in-place, as optimizers do
        np.testing.assert_allclose(step(x), np.ones(3))

    def test_replay_sees_state_dict_swaps(self):
        w = Tensor(np.full(3, 2.0, dtype=np.float32), requires_grad=True)
        step = TracedStep(lambda x: (Tensor(x) * w).numpy(), params=[w])
        x = np.ones(3, dtype=np.float32)
        step(x)
        w.data = np.full(3, 7.0, dtype=np.float32)  # array replaced wholesale
        np.testing.assert_allclose(step(x), 7.0 * np.ones(3))

    def test_grads_written_back_each_replay(self):
        w = Tensor(np.full(4, 3.0, dtype=np.float32), requires_grad=True)

        def train(x):
            loss = (Tensor(x) * w).sum()
            loss.backward()
            return loss.numpy()

        step = TracedStep(train, params=[w])
        a = np.arange(4.0, dtype=np.float32)
        step(a)
        np.testing.assert_allclose(w.grad, a)
        b = np.full(4, 5.0, dtype=np.float32)
        step(b)  # replay must overwrite, not accumulate
        np.testing.assert_allclose(w.grad, b)
        assert w.grad.flags.writeable  # clip utilities mutate grads in place

    def test_jitted_training_loop_matches_eager(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 4)).astype(np.float32)
        y = rng.normal(size=(8, 1)).astype(np.float32)

        def run(traced: bool):
            w = Tensor(np.zeros((4, 1), dtype=np.float32), requires_grad=True)

            def train(xb, yb):
                err = Tensor(xb) @ w - Tensor(yb)
                loss = (err * err).sum()
                loss.backward()
                return loss.numpy()

            step = TracedStep(train, params=[w]) if traced else train
            opt = Adam([w], lr=1e-2)
            losses = []
            for _ in range(12):
                opt.zero_grad()
                losses.append(float(step(x, y)))
                opt.step()
            return losses, w.data.copy()

        with lazy_mode():
            lazy_losses, lazy_w = run(traced=True)
        with eager_mode():
            eager_losses, eager_w = run(traced=False)
        np.testing.assert_allclose(lazy_losses, eager_losses, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(lazy_w, eager_w, rtol=1e-5, atol=1e-6)


class TestRandomness:
    def test_gen_nodes_reroll_per_replay(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        step = TracedStep(lambda x: drop(Tensor(x)).numpy())
        x = np.ones((64,), dtype=np.float32)
        first = step(x)
        second = step(x)  # replay: mask must be re-generated, not frozen
        assert not np.array_equal(first, second)
        assert set(np.unique(second)).issubset({0.0, 2.0})


class TestBufferDonation:
    def test_dead_intermediates_are_donated(self):
        def fn(x):
            t = Tensor(x) * 2.0
            u = (t + 1.0) * (t - 1.0)
            r = u.sum(axis=0, keepdims=True)
            return (u + r).numpy()

        step = TracedStep(fn)
        a = np.random.default_rng(0).normal(size=(8, 8)).astype(np.float32)
        expected = step(a)
        plan = next(iter(step.plans.values()))
        assert plan.n_donated >= 1
        # Replays (which exercise the donated out= path) stay correct and
        # return fresh arrays, never aliasing the previous call's output.
        again = step(a)
        assert again is not expected
        np.testing.assert_allclose(again, expected, rtol=1e-6)


class TestDecorator:
    def test_jit_decorator_wraps_into_traced_step(self):
        @jit()
        def double(x):
            return (Tensor(x) * 2.0).numpy()

        assert isinstance(double, TracedStep)
        np.testing.assert_allclose(
            double(np.ones(3, dtype=np.float32)), 2.0 * np.ones(3)
        )
