import numpy as np
import pytest

from repro.nn import Linear, Module, Tensor


class DictHolder(Module):
    def __init__(self):
        super().__init__()
        self.layers = {"a": Linear(2, 2), "b": Linear(2, 2)}

    def forward(self, x):
        return self.layers["b"](self.layers["a"](x))


class SharedParam(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(3, 3)
        self.second = Linear(3, 3)
        self.second.weight = self.first.weight  # weight tying

    def forward(self, x):
        return self.second(self.first(x))


class TestModuleEdgeCases:
    def test_dict_children_discovered(self):
        holder = DictHolder()
        assert len(holder.parameters()) == 4
        names = [n for n, _ in holder.named_parameters()]
        assert "layers.a.weight" in names
        assert "layers.b.bias" in names

    def test_dict_children_train_eval(self):
        holder = DictHolder()
        holder.eval()
        assert not holder.layers["a"].training
        holder.train()
        assert holder.layers["a"].training

    def test_shared_parameters_deduplicated(self):
        tied = SharedParam()
        params = tied.parameters()
        # 2 biases + 1 shared weight.
        assert len(params) == 3

    def test_shared_parameter_gradient_accumulates_both_uses(self):
        tied = SharedParam()
        out = tied(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert tied.first.weight.grad is not None
        # The tied weight received contributions from both layer positions;
        # an untied copy of only one use would differ.
        untied = Linear(3, 3)
        untied.weight.data = tied.first.weight.data.copy()
        untied.bias.data = tied.first.bias.data.copy()
        single = untied(Tensor(np.ones((2, 3))))
        single.sum().backward()
        assert not np.allclose(tied.first.weight.grad, untied.weight.grad)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_zero_grad_clears_everything(self):
        holder = DictHolder()
        holder(Tensor(np.ones((1, 2)))).sum().backward()
        assert any(p.grad is not None for p in holder.parameters())
        holder.zero_grad()
        assert all(p.grad is None for p in holder.parameters())

    def test_state_dict_of_dict_children_roundtrip(self):
        a = DictHolder()
        b = DictHolder()
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2)))
        np.testing.assert_allclose(a(x).data, b(x).data)
