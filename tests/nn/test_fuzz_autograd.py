"""Randomized autograd fuzzing: random op DAGs vs finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, cat, stack
from tests.nn.gradcheck import check_grad

# Unary ops safe on any real input.
UNARY_SAFE = ["tanh", "sigmoid", "relu", "exp"]
# Binary composition patterns.
BINARY = ["add", "sub", "mul"]


def random_graph(rng: np.random.Generator, depth: int):
    """Build f(leaf) as a random composition; returns a closure."""
    ops = []
    for _ in range(depth):
        kind = rng.choice(["unary", "binary", "reduce", "shape"])
        if kind == "unary":
            ops.append(("unary", rng.choice(UNARY_SAFE)))
        elif kind == "binary":
            const = rng.normal(size=(1,)) * 0.5
            ops.append(("binary", rng.choice(BINARY), float(const[0])))
        elif kind == "reduce":
            ops.append(("reduce", None))
        else:
            ops.append(("shape", None))

    def f(t: Tensor) -> Tensor:
        x = t
        for op in ops:
            if op[0] == "unary":
                # Keep exp bounded to avoid FD blow-ups.
                if op[1] == "exp":
                    x = (x * 0.2).exp()
                else:
                    x = getattr(x, op[1])()
            elif op[0] == "binary":
                if op[1] == "add":
                    x = x + op[2]
                elif op[1] == "sub":
                    x = op[2] - x
                else:
                    x = x * (op[2] + 0.7)
            elif op[0] == "reduce":
                if x.ndim > 1:
                    x = x.mean(axis=0, keepdims=True)
            else:  # shape
                x = x.reshape(-1, 1).transpose(1, 0).reshape(*x.shape)
        return (x * x).sum()

    return f


class TestAutogradFuzz:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=6))
    def test_random_dag_matches_finite_differences(self, seed, depth):
        rng = np.random.default_rng(seed)
        f = random_graph(rng, depth)
        x = rng.normal(size=(3, 4)) * 0.8
        check_grad(f, x, rtol=2e-3, atol=1e-5)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_cat_stack_composition(self, seed):
        rng = np.random.default_rng(seed)
        a_np = rng.normal(size=(2, 3)) * 0.5
        b_np = rng.normal(size=(2, 3)) * 0.5

        def f(t: Tensor) -> Tensor:
            other = Tensor(b_np)
            joined = cat([t.tanh(), other], axis=1)  # (2, 6)
            piled = stack([joined, joined * 0.5], axis=0)  # (2, 2, 6)
            return (piled.sigmoid() * piled).sum()

        check_grad(f, a_np, rtol=2e-3, atol=1e-5)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_shared_subexpression(self, seed):
        """Gradients accumulate correctly through re-used nodes."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4,)) * 0.5

        def f(t: Tensor) -> Tensor:
            h = t.tanh()
            return (h * h + h.sigmoid() * h).sum()

        check_grad(f, x, rtol=2e-3, atol=1e-6)
