import numpy as np
import pytest

from repro.nn import Conv2d, MaxPool2d, Tensor, conv2d, max_pool2d, pad2d, upsample_nearest
from tests.nn.gradcheck import check_grad


def naive_conv(x, w, padding=0):
    """Reference cross-correlation in pure loops."""
    b, c, h, wd = x.shape
    oc, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh, ow = h + 2 * padding - kh + 1, wd + 2 * padding - kw + 1
    out = np.zeros((b, oc, oh, ow))
    for bi in range(b):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    out[bi, o, i, j] = (xp[bi, :, i : i + kh, j : j + kw] * w[o]).sum()
    return out


class TestConv2d:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 5))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, naive_conv(x, w), rtol=1e-10)

    def test_matches_naive_with_padding(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=1).data
        assert out.shape == (1, 3, 5, 5)
        np.testing.assert_allclose(out, naive_conv(x, w, padding=1), rtol=1e-10)

    def test_gradcheck_input(self):
        rng = np.random.default_rng(2)
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        x = rng.normal(size=(1, 1, 4, 4))
        check_grad(lambda t: (conv2d(t, w, padding=1) ** 2).sum(), x, rtol=1e-4)

    def test_gradcheck_weight(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        w = rng.normal(size=(2, 2, 3, 3))
        check_grad(lambda t: (conv2d(x, t) ** 2).sum(), w, rtol=1e-4)

    def test_module_bias_and_shapes(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((2, 3, 9, 9))))
        assert out.shape == (2, 8, 9, 9)
        assert len(conv.parameters()) == 2

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 2, 5, 5))), Tensor(np.zeros((3, 4, 3, 3))))

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 3, 3))))


class TestPad2d:
    def test_shape_and_content(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        out = pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 0] == 0.0
        assert out.data[0, 0, 1, 1] == 1.0

    def test_zero_padding_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert pad2d(x, 0) is x

    def test_grad_drops_border(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        pad2d(x, 1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))


class TestMaxPool:
    def test_basic(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_floor_semantics_odd_input(self):
        x = np.arange(81.0).reshape(1, 1, 9, 9)
        out = max_pool2d(Tensor(x), 2)
        assert out.shape == (1, 1, 4, 4)

    def test_grad_routes_to_max(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad[0, 0], [[0.0, 0.0], [0.0, 1.0]])

    def test_gradcheck(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 2, 4, 4))
        check_grad(lambda t: (max_pool2d(t, 2) ** 2).sum(), x, rtol=1e-4)

    def test_module(self):
        pool = MaxPool2d(3)
        assert pool(Tensor(np.zeros((1, 1, 9, 9)))).shape == (1, 1, 3, 3)


class TestUpsample:
    def test_integer_factor(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = upsample_nearest(x, (4, 4)).data
        np.testing.assert_allclose(out[0, 0, :2, :2], 1.0)
        np.testing.assert_allclose(out[0, 0, 2:, 2:], 4.0)

    def test_odd_target_for_unet(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 4, 4)))
        out = upsample_nearest(x, (9, 9))
        assert out.shape == (1, 3, 9, 9)

    def test_grad_sums_over_duplicates(self):
        x = Tensor(np.zeros((1, 1, 2, 2)), requires_grad=True)
        upsample_nearest(x, (4, 4)).sum().backward()
        np.testing.assert_allclose(x.grad, 4.0 * np.ones((1, 1, 2, 2)))

    def test_identity_size(self):
        x = Tensor(np.random.default_rng(1).normal(size=(1, 1, 3, 3)))
        np.testing.assert_allclose(upsample_nearest(x, (3, 3)).data, x.data)
