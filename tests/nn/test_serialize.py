import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    SGD,
    Tensor,
    load_optimizer,
    load_optimizer_state,
    optimizer_state,
    save_optimizer,
)


def take_steps(model, opt, n, rng):
    for _ in range(n):
        opt.zero_grad()
        x = Tensor(rng.normal(size=(8, 3)))
        (model(x) ** 2).sum().backward()
        opt.step()


class TestAdamRoundtrip:
    def test_resume_reproduces_training(self, tmp_path):
        rng = np.random.default_rng(0)
        model_a = Linear(3, 2, rng=np.random.default_rng(1))
        opt_a = Adam(model_a.parameters(), lr=1e-2)
        take_steps(model_a, opt_a, 5, np.random.default_rng(2))
        save_optimizer(opt_a, tmp_path / "opt.npz")
        weights = model_a.state_dict()

        # Fresh model + optimizer, restore both, continue 5 steps...
        model_b = Linear(3, 2, rng=np.random.default_rng(3))
        model_b.load_state_dict(weights)
        opt_b = Adam(model_b.parameters(), lr=1e-2)
        load_optimizer(opt_b, tmp_path / "opt.npz")
        take_steps(model_b, opt_b, 5, np.random.default_rng(4))
        # ...vs continuing the original.
        take_steps(model_a, opt_a, 5, np.random.default_rng(4))
        np.testing.assert_allclose(model_a.weight.data, model_b.weight.data, rtol=1e-12)

    def test_state_contains_moments_and_step(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam([p], lr=1e-3)
        state = optimizer_state(opt)
        assert {"lr", "t", "m::0", "v::0"} <= set(state)

    def test_shape_mismatch_rejected(self):
        p1 = Tensor(np.zeros(2), requires_grad=True)
        p2 = Tensor(np.zeros(3), requires_grad=True)
        opt1 = Adam([p1])
        opt2 = Adam([p2])
        with pytest.raises(ValueError):
            load_optimizer_state(opt2, optimizer_state(opt1))


class TestSGDRoundtrip:
    def test_velocity_roundtrip(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        state = optimizer_state(opt)
        q = Tensor(np.array([1.0]), requires_grad=True)
        opt2 = SGD([q], lr=0.5, momentum=0.9)
        load_optimizer_state(opt2, state)
        assert opt2.lr == pytest.approx(0.1)
        np.testing.assert_allclose(opt2._velocity[0], opt._velocity[0])

    def test_unsupported_optimizer(self):
        from repro.nn.optim import Optimizer

        class Weird(Optimizer):
            def step(self):
                pass

        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(TypeError):
            optimizer_state(Weird([p], lr=1.0))
