import numpy as np
import pytest

from repro.nn import Tensor, cat, stack
from tests.nn.gradcheck import check_grad


class TestTensorBasics:
    def test_wraps_data(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert len(t) == 2

    def test_item(self):
        assert Tensor(3.5).item() == 3.5
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_shares_data_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_grad_shape_check(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward(np.ones((3,)))

    def test_lift_from_tensor(self):
        a = Tensor([1.0])
        assert Tensor(a).data is a.data


class TestArithmetic:
    def test_add_forward_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_radd_scalar(self):
        a = Tensor([1.0], requires_grad=True)
        out = 5.0 + a
        np.testing.assert_allclose(out.data, [6.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_sub_and_rsub(self):
        a = Tensor([3.0], requires_grad=True)
        (10.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_grad(self):
        check_grad(lambda t: (t / Tensor([2.0, 4.0])).sum(), np.array([1.0, 3.0]))
        check_grad(lambda t: (Tensor([1.0, 1.0]) / t).sum(), np.array([2.0, 5.0]))

    def test_pow_grad(self):
        check_grad(lambda t: (t ** 3).sum(), np.array([1.5, -2.0]))
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        a = Tensor([1.0], requires_grad=True)
        (-a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0)

    def test_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((3, 1)), requires_grad=True)
        b = Tensor(np.ones((3, 5)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 1)
        np.testing.assert_allclose(a.grad, 5.0)


class TestMatmul:
    def test_2d(self):
        rng = np.random.default_rng(0)
        a_np, b_np = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        check_grad(lambda t: (t @ Tensor(b_np)).sum(), a_np)
        check_grad(lambda t: (Tensor(a_np) @ t).sum(), b_np)

    def test_batched_times_2d(self):
        rng = np.random.default_rng(1)
        a_np, b_np = rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 5))
        check_grad(lambda t: (t @ Tensor(b_np)).sum(), a_np)
        check_grad(lambda t: (Tensor(a_np) @ t).sum(), b_np)

    def test_batched_times_batched(self):
        rng = np.random.default_rng(2)
        a_np, b_np = rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))
        check_grad(lambda t: (t @ Tensor(b_np)).sum(), a_np)
        check_grad(lambda t: (Tensor(a_np) @ t).sum(), b_np)

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            Tensor([1.0]) @ Tensor([1.0])


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        ["exp", "tanh", "sigmoid", "relu", "sqrt"],
    )
    def test_gradcheck(self, op):
        x = np.array([0.5, 1.5, 2.5]) if op == "sqrt" else np.array([-1.0, 0.3, 2.0])
        check_grad(lambda t: getattr(t, op)().sum(), x)

    def test_log_gradcheck(self):
        check_grad(lambda t: t.log().sum(), np.array([0.5, 1.0, 3.0]))

    def test_relu_zeroes_negatives(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.backward(np.array([[2.0], [3.0]]))
        np.testing.assert_allclose(a.grad, [[2.0] * 3, [3.0] * 3])

    def test_sum_multi_axis(self):
        check_grad(lambda t: (t.sum(axis=(0, 2)) ** 2).sum(), np.random.default_rng(0).normal(size=(2, 3, 4)))

    def test_mean(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_mean_axis(self):
        check_grad(lambda t: (t.mean(axis=0) ** 2).sum(), np.random.default_rng(1).normal(size=(4, 3)))

    def test_max_forward(self):
        a = Tensor([[1.0, 5.0], [7.0, 2.0]])
        np.testing.assert_allclose(a.max(axis=1).data, [5.0, 7.0])

    def test_max_grad_to_first_argmax(self):
        a = Tensor([[3.0, 3.0, 1.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[1.0, 0.0, 0.0]])

    def test_max_gradcheck(self):
        # Distinct values so the finite difference is clean.
        x = np.array([[0.1, 0.9, 0.4], [1.2, -0.3, 0.8]])
        check_grad(lambda t: (t.max(axis=1) ** 2).sum(), x)

    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        assert Tensor(np.zeros(6)).reshape((2, 3)).shape == (2, 3)

    def test_transpose_grad(self):
        check_grad(
            lambda t: (t.transpose(1, 0, 2) * Tensor(np.arange(24.0).reshape(3, 2, 4))).sum(),
            np.random.default_rng(3).normal(size=(2, 3, 4)),
        )

    def test_swapaxes(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.swapaxes(0, 1)
        assert out.shape == (3, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_slicing_grad(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expect = np.zeros(10)
        expect[2:5] = 1.0
        np.testing.assert_allclose(a.grad, expect)

    def test_getitem_fancy_duplicate_indices(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        a[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0, 0.0])


class TestGraph:
    def test_diamond_graph_accumulates_once(self):
        # y = (a*2) + (a*3); dy/da = 5
        a = Tensor([1.0], requires_grad=True)
        ((a * 2.0) + (a * 3.0)).backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_reused_intermediate(self):
        # b = a*2; y = b*b -> dy/da = 2*b*2 = 8a
        a = Tensor([3.0], requires_grad=True)
        b = a * 2.0
        (b * b).backward()
        np.testing.assert_allclose(a.grad, [24.0])

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        (a * 2.0).backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_tracking_when_not_required(self):
        a = Tensor([1.0])
        out = a * 2.0 + 3.0
        assert not out.requires_grad
        assert out._backward is None

    def test_deep_chain(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(200):
            x = x * 1.01
        x.backward()
        assert a.grad[0] == pytest.approx(1.01 ** 200, rel=1e-9)


class TestCatStack:
    def test_cat_forward_backward(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0, 4.0], [5.0, 6.0]], requires_grad=True)
        out = cat([a, b], axis=0)
        assert out.shape == (3, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[1.0, 1.0]])
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_cat_last_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        out = cat([a, b], axis=-1)
        assert out.shape == (2, 4)
        (out * Tensor(np.arange(8.0).reshape(2, 4))).sum().backward()
        np.testing.assert_allclose(b.grad, [[3.0], [7.0]])

    def test_cat_empty_rejected(self):
        with pytest.raises(ValueError):
            cat([])

    def test_stack_forward_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out[0].sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        assert b.grad is None or np.allclose(b.grad, 0.0)

    def test_stack_middle_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = stack([a, a, a, a], axis=1)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, 4.0 * np.ones((2, 3)))
