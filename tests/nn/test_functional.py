import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.functional import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    log_softmax,
    masked_softmax,
    mse_loss,
    pairwise_logistic_loss,
    softmax,
)
from tests.nn.gradcheck import check_grad


class TestSoftmax:
    def test_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        p = softmax(x).data
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)
        assert (p > 0).all()

    def test_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(
            softmax(Tensor(x)).data, softmax(Tensor(x + 100.0)).data, rtol=1e-12
        )

    def test_extreme_values_stable(self):
        p = softmax(Tensor([[1000.0, 0.0, -1000.0]])).data
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_gradcheck(self):
        x = np.random.default_rng(1).normal(size=(2, 5))
        check_grad(lambda t: (softmax(t) * Tensor(np.arange(10.0).reshape(2, 5))).sum(), x)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), rtol=1e-10
        )


class TestMaskedSoftmax:
    def test_masked_positions_near_zero(self):
        x = Tensor(np.zeros((1, 4)))
        mask = np.array([[1, 1, 0, 0]])
        p = masked_softmax(x, mask).data
        assert p[0, 0] == pytest.approx(0.5, abs=1e-6)
        assert p[0, 2] < 1e-12
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_mask_blocks_gradient(self):
        x = Tensor(np.zeros((1, 3)), requires_grad=True)
        mask = np.array([[1, 1, 0]])
        p = masked_softmax(x, mask)
        p[0, 0].backward()
        assert abs(x.grad[0, 2]) < 1e-8


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.0], [0.0, 0.0, 0.0]])
        targets = np.array([0, 2])
        loss = cross_entropy(Tensor(logits), targets).item()
        manual = -np.mean(
            [
                logits[0, 0] - np.log(np.exp(logits[0]).sum()),
                logits[1, 2] - np.log(np.exp(logits[1]).sum()),
            ]
        )
        assert loss == pytest.approx(manual)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0]])
        assert cross_entropy(Tensor(logits), np.array([0])).item() < 1e-6

    def test_mask_excludes_padded(self):
        # With padding masked, a 2-way and padded 4-way problem agree.
        logits2 = np.array([[1.0, -1.0]])
        logits4 = np.array([[1.0, -1.0, 50.0, 50.0]])
        mask = np.array([[1, 1, 0, 0]])
        l2 = cross_entropy(Tensor(logits2), np.array([0])).item()
        l4 = cross_entropy(Tensor(logits4), np.array([0]), mask=mask).item()
        assert l4 == pytest.approx(l2, abs=1e-6)

    def test_gradcheck(self):
        x = np.random.default_rng(3).normal(size=(3, 5))
        check_grad(lambda t: cross_entropy(t, np.array([1, 0, 4])), x)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))


class TestBCE:
    def test_balanced_known_value(self):
        # logit 0 -> p=0.5 -> loss ln 2 for either label.
        loss = binary_cross_entropy_with_logits(Tensor([0.0, 0.0]), np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(np.log(2.0))

    def test_pos_weight_scales_positive_term(self):
        base = binary_cross_entropy_with_logits(Tensor([0.0]), np.array([1.0]), pos_weight=1.0)
        weighted = binary_cross_entropy_with_logits(Tensor([0.0]), np.array([1.0]), pos_weight=4.0)
        assert weighted.item() == pytest.approx(4.0 * base.item())

    def test_gradcheck(self):
        x = np.random.default_rng(4).normal(size=(6,))
        targets = np.array([1.0, 0.0, 1.0, 1.0, 0.0, 0.0])
        check_grad(lambda t: binary_cross_entropy_with_logits(t, targets, pos_weight=4.0), x)


class TestOtherLosses:
    def test_mse(self):
        loss = mse_loss(Tensor([1.0, 3.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_pairwise_logistic_ordering(self):
        good = pairwise_logistic_loss(Tensor([5.0]), Tensor([0.0])).item()
        bad = pairwise_logistic_loss(Tensor([0.0]), Tensor([5.0])).item()
        assert good < bad

    def test_pairwise_logistic_stable_extremes(self):
        loss = pairwise_logistic_loss(Tensor([1000.0]), Tensor([-1000.0])).item()
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_pairwise_gradcheck(self):
        x = np.random.default_rng(5).normal(size=(4,))
        neg = Tensor(np.random.default_rng(6).normal(size=(4,)))
        check_grad(lambda t: pairwise_logistic_loss(t, neg), x)
