"""Finite-difference gradient checking helpers for autograd tests."""

import numpy as np

from repro.nn import Tensor


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f(x)
        flat[i] = orig - eps
        f_minus = f(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_grad(build, x: np.ndarray, rtol: float = 1e-4, atol: float = 1e-6) -> None:
    """Assert autograd and numeric gradients agree.

    ``build(tensor) -> Tensor`` must produce a scalar loss from a leaf
    tensor wrapping ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    leaf = Tensor(x.copy(), requires_grad=True)
    loss = build(leaf)
    assert loss.size == 1, "gradcheck needs a scalar loss"
    loss.backward()
    analytic = leaf.grad

    def f(arr):
        return build(Tensor(arr)).item()

    numeric = numeric_grad(f, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
