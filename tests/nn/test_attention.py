import numpy as np
import pytest

from repro.nn import (
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from tests.nn.gradcheck import check_grad


def make_attn(d_model=8, n_heads=2, seed=0):
    return MultiHeadSelfAttention(d_model, n_heads, dropout=0.0, rng=np.random.default_rng(seed))


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = make_attn()
        out = attn(Tensor(np.random.default_rng(1).normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2)

    def test_input_shape_enforced(self):
        attn = make_attn()
        with pytest.raises(ValueError):
            attn(Tensor(np.zeros((3, 5, 9))))
        with pytest.raises(ValueError):
            attn(Tensor(np.zeros((5, 8))))

    def test_mask_shape_enforced(self):
        attn = make_attn()
        with pytest.raises(ValueError):
            attn(Tensor(np.zeros((2, 4, 8))), key_mask=np.ones((2, 5)))

    def test_padding_does_not_change_real_outputs(self):
        """Masked positions must not influence the unmasked ones."""
        attn = make_attn()
        attn.eval()
        rng = np.random.default_rng(2)
        x_real = rng.normal(size=(1, 4, 8))
        out_real = attn(Tensor(x_real)).data

        pad = rng.normal(size=(1, 3, 8)) * 50.0  # wild padding content
        x_padded = np.concatenate([x_real, pad], axis=1)
        mask = np.array([[1, 1, 1, 1, 0, 0, 0]])
        out_padded = attn(Tensor(x_padded), key_mask=mask).data
        np.testing.assert_allclose(out_padded[:, :4], out_real, rtol=1e-8, atol=1e-10)

    def test_permutation_equivariance(self):
        """Self-attention over a set commutes with input permutation."""
        attn = make_attn()
        attn.eval()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 6, 8))
        perm = rng.permutation(6)
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out_perm, out[:, perm], rtol=1e-8, atol=1e-10)

    def test_gradients_flow_to_all_projections(self):
        attn = make_attn()
        attn(Tensor(np.random.default_rng(4).normal(size=(2, 3, 8)))).sum().backward()
        for p in attn.parameters():
            assert p.grad is not None

    def test_gradcheck_small(self):
        attn = MultiHeadSelfAttention(4, 2, dropout=0.0, rng=np.random.default_rng(5))
        x = np.random.default_rng(6).normal(size=(1, 3, 4))
        check_grad(lambda t: (attn(t) ** 2).sum(), x, rtol=1e-3, atol=1e-6)


class TestTransformerEncoder:
    def test_layer_shape_preserved(self):
        layer = TransformerEncoderLayer(8, 2, 32, dropout=0.0, rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_encoder_stacks_layers(self):
        enc = TransformerEncoder(3, 8, 2, 32, dropout=0.0, rng=np.random.default_rng(0))
        assert len(enc.layers) == 3
        out = enc(Tensor(np.random.default_rng(1).normal(size=(2, 4, 8))))
        assert out.shape == (2, 4, 8)

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            TransformerEncoder(0, 8, 2, 32)

    def test_encoder_respects_mask(self):
        enc = TransformerEncoder(2, 8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))
        enc.eval()
        rng = np.random.default_rng(2)
        x_real = rng.normal(size=(1, 3, 8))
        out_real = enc(Tensor(x_real)).data
        pad = rng.normal(size=(1, 2, 8)) * 10
        x_pad = np.concatenate([x_real, pad], axis=1)
        mask = np.array([[1, 1, 1, 0, 0]])
        out_pad = enc(Tensor(x_pad), key_mask=mask).data
        np.testing.assert_allclose(out_pad[:, :3], out_real, rtol=1e-8, atol=1e-9)

    def test_all_parameters_trainable(self):
        enc = TransformerEncoder(2, 8, 2, 16, dropout=0.0)
        # Each layer: attn (4 linear = 8 tensors) + 2 ff (4) + 2 norms (4).
        assert len(enc.parameters()) == 2 * (8 + 4 + 4)

    def test_dropout_only_in_training(self):
        enc = TransformerEncoder(1, 8, 2, 16, dropout=0.5, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(1, 4, 8)))
        enc.eval()
        out1 = enc(x).data
        out2 = enc(x).data
        np.testing.assert_allclose(out1, out2)
        enc.train()
        out3 = enc(x).data
        assert not np.allclose(out1, out3)
