"""Cross-engine serialization: eager-trained LocMatcher state under lazy.

A checkpoint written by the eager engine (net ``state_dict`` plus Adam
state via :mod:`repro.nn.serialize`) must load into a selector running
the lazy/jitted engine and produce identical scores — the on-disk format
is engine-agnostic, so deployments can upgrade engines without
retraining.
"""

import numpy as np

from repro.core import LocMatcherConfig, LocMatcherSelector
from repro.nn import Adam, eager_mode, lazy_mode, load_optimizer, save_optimizer
from tests.core.test_locmatcher import synthetic_examples

CFG = LocMatcherConfig(max_epochs=4, patience=4, dropout=0.0)


def _fit(examples):
    selector = LocMatcherSelector(config=CFG)
    selector.fit(examples)
    return selector


class TestCrossEngineRoundtrip:
    def test_eager_checkpoint_scores_identically_under_lazy(self, tmp_path):
        examples = synthetic_examples(16, seed=11)
        with eager_mode():
            trained = _fit(examples)
            eager_scores = trained.scores_batch(examples)
            np.savez(tmp_path / "net.npz", **trained.net.state_dict())

        archive = np.load(tmp_path / "net.npz")
        state = {k: archive[k] for k in archive.files}
        with lazy_mode():
            # A fresh selector (different init seed path: one fit epoch)
            # whose net then takes on the eager checkpoint wholesale.
            restored = _fit(examples)
            restored.net.load_state_dict(state)
            lazy_scores = restored.scores_batch(examples)

        for lazy_p, eager_p in zip(lazy_scores, eager_scores):
            np.testing.assert_allclose(lazy_p, eager_p, rtol=1e-6, atol=1e-7)

    def test_state_dict_stays_float32_through_npz(self, tmp_path):
        examples = synthetic_examples(8, seed=5)
        with eager_mode():
            trained = _fit(examples)
            np.savez(tmp_path / "net.npz", **trained.net.state_dict())
        archive = np.load(tmp_path / "net.npz")
        for key in archive.files:
            assert archive[key].dtype == np.float32, key

    def test_optimizer_checkpoint_resumes_across_engines(self, tmp_path):
        examples = synthetic_examples(12, seed=9)

        def steps(selector, optimizer, n):
            batch = selector._train_batch_arrays(examples)[:3]
            arrays, onehot, row_weight = batch
            for _ in range(n):
                optimizer.zero_grad()
                selector._jit_train(*arrays, onehot, row_weight)
                optimizer.step()

        with eager_mode():
            trained = _fit(examples)
            opt = Adam(trained.net.parameters(), lr=1e-3)
            steps(trained, opt, 3)
            save_optimizer(opt, tmp_path / "opt.npz")
            np.savez(tmp_path / "net.npz", **trained.net.state_dict())
            steps(trained, opt, 3)
            eager_scores = trained.scores_batch(examples)

        archive = np.load(tmp_path / "net.npz")
        state = {k: archive[k] for k in archive.files}
        with lazy_mode():
            restored = _fit(examples)
            restored.net.load_state_dict(state)
            opt_b = Adam(restored.net.parameters(), lr=1e-3)
            load_optimizer(opt_b, tmp_path / "opt.npz")
            steps(restored, opt_b, 3)
            lazy_scores = restored.scores_batch(examples)

        for lazy_p, eager_p in zip(lazy_scores, eager_scores):
            np.testing.assert_allclose(lazy_p, eager_p, rtol=1e-5, atol=1e-6)
