import numpy as np
import pytest

from repro.nn import GRU, Tensor, clip_grad_norm, clip_grad_value
from tests.nn.gradcheck import check_grad


class TestClipGradNorm:
    def test_scales_down_large_gradients(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        p.grad = np.array([3.0, 4.0, 0.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(p.grad, [0.6, 0.8, 0.0])

    def test_noop_within_bound(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_global_norm_across_params(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        b = Tensor(np.zeros(1), requires_grad=True)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(a.grad, [1.5])
        np.testing.assert_allclose(b.grad, [2.0])

    def test_skips_gradless(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestClipGradValue:
    def test_clamps(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        p.grad = np.array([-5.0, 0.5, 5.0])
        clip_grad_value([p], max_value=1.0)
        np.testing.assert_allclose(p.grad, [-1.0, 0.5, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_value([], max_value=-1.0)


class TestGRU:
    def test_output_shapes(self):
        gru = GRU(4, 6, rng=np.random.default_rng(0))
        seq, h = gru(Tensor(np.random.default_rng(1).normal(size=(3, 5, 4))))
        assert seq.shape == (3, 5, 6)
        assert h.shape == (3, 6)

    def test_final_state_matches_last_output(self):
        gru = GRU(2, 3, rng=np.random.default_rng(0))
        seq, h = gru(Tensor(np.random.default_rng(1).normal(size=(2, 4, 2))))
        np.testing.assert_allclose(seq.data[:, -1, :], h.data)

    def test_state_carry(self):
        gru = GRU(3, 4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        a = rng.normal(size=(1, 2, 3))
        b = rng.normal(size=(1, 2, 3))
        full, _ = gru(Tensor(np.concatenate([a, b], axis=1)))
        _, state = gru(Tensor(a))
        partial, _ = gru(Tensor(b), state=state)
        np.testing.assert_allclose(partial.data, full.data[:, 2:], rtol=1e-10)

    def test_wrong_input_rejected(self):
        with pytest.raises(ValueError):
            GRU(3, 4)(Tensor(np.zeros((1, 2, 5))))

    def test_parameters_and_gradients(self):
        gru = GRU(2, 3, rng=np.random.default_rng(0))
        assert len(gru.parameters()) == 3
        seq, _ = gru(Tensor(np.random.default_rng(1).normal(size=(1, 3, 2))))
        (seq ** 2).sum().backward()
        for p in gru.parameters():
            assert p.grad is not None

    def test_gradcheck_small(self):
        gru = GRU(2, 2, rng=np.random.default_rng(2))
        x = np.random.default_rng(3).normal(size=(1, 3, 2))

        def build(t):
            seq, _ = gru(t)
            return (seq ** 2).sum()

        check_grad(build, x, rtol=1e-3, atol=1e-6)
