import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)
from tests.nn.gradcheck import check_grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3)
        out = layer(Tensor(np.zeros((2, 4))))
        assert out.shape == (2, 3)

    def test_batched_3d_input(self):
        layer = Linear(4, 3)
        out = layer(Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValueError):
            Linear(4, 3)(Tensor(np.zeros((2, 5))))

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_params_receive_grad(self):
        layer = Linear(2, 2)
        layer(Tensor(np.ones((3, 2)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [3.0, 3.0])

    def test_gradcheck_through_layer(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(4, 3))
        check_grad(lambda t: (layer(t) ** 2).sum(), x)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4)
        out = emb(np.array([1, 5, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_grad_accumulates_on_repeats(self):
        emb = Embedding(5, 2)
        emb(np.array([3, 3])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[3], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_out_of_range(self):
        emb = Embedding(5, 2)
        with pytest.raises(ValueError):
            emb(np.array([5]))
        with pytest.raises(ValueError):
            emb(np.array([-1]))

    def test_2d_indices(self):
        emb = Embedding(7, 3)
        assert emb(np.zeros((2, 4), dtype=int)).shape == (2, 4, 3)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(3.0, 10.0, size=(4, 6)))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_trainable(self):
        ln = LayerNorm(4)
        assert len(ln.parameters()) == 2
        ln(Tensor(np.random.default_rng(1).normal(size=(2, 4)))).sum().backward()
        assert ln.gamma.grad is not None
        assert ln.beta.grad is not None

    def test_gradcheck(self):
        ln = LayerNorm(5)
        x = np.random.default_rng(2).normal(size=(3, 5))
        check_grad(lambda t: (ln(t) ** 2).sum(), x, rtol=1e-3)

    def test_wrong_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.zeros((2, 5))))


class TestDropout:
    def test_eval_mode_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(np.ones((100,)))
        np.testing.assert_allclose(d(x).data, x.data)

    def test_train_mode_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones(10000)))
        # Inverted dropout preserves expectation.
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_p_zero_identity(self):
        d = Dropout(0.0)
        x = Tensor(np.ones(5))
        assert d(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestActivationsAndSequential:
    def test_activation_modules(self):
        x = Tensor([-1.0, 1.0])
        np.testing.assert_allclose(ReLU()(x).data, [0.0, 1.0])
        np.testing.assert_allclose(Tanh()(x).data, np.tanh([-1.0, 1.0]))
        np.testing.assert_allclose(Sigmoid()(x).data, 1 / (1 + np.exp([1.0, -1.0])))

    def test_sequential_composition(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        out = model(Tensor(np.zeros((5, 3))))
        assert out.shape == (5, 2)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)
        assert len(model.parameters()) == 4

    def test_train_eval_propagate(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert not model[1].training
        model.train()
        assert model[1].training


class TestModuleStateDict:
    def test_roundtrip(self):
        m1 = Sequential(Linear(3, 4, rng=np.random.default_rng(0)), ReLU(), Linear(4, 2, rng=np.random.default_rng(1)))
        m2 = Sequential(Linear(3, 4, rng=np.random.default_rng(2)), ReLU(), Linear(4, 2, rng=np.random.default_rng(3)))
        x = Tensor(np.random.default_rng(4).normal(size=(2, 3)))
        assert not np.allclose(m1(x).data, m2(x).data)
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_mismatched_keys_rejected(self):
        m = Linear(2, 2)
        state = m.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        m = Linear(2, 2)
        state = m.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_named_parameters_unique(self):
        m = Sequential(Linear(2, 3), Linear(3, 2))
        names = [n for n, _ in m.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_num_parameters(self):
        m = Linear(3, 4)
        assert m.num_parameters() == 3 * 4 + 4
