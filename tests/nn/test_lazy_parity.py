"""Eager-vs-lazy numerical parity and gradient checks for the fused ops.

The lazy engine (graph + scheduler + replay) must be a drop-in for eager
execution: every fused elementwise op, values and gradients, and the full
LocMatcher train/score steps agree within tight tolerances.
"""

import numpy as np
import pytest

from repro.core import LocMatcherConfig, LocMatcherSelector
from repro.nn import Tensor, eager_mode, lazy_mode
from tests.core.test_locmatcher import synthetic_examples
from tests.nn.gradcheck import check_grad

#: Every fused elementwise op as a scalar-loss builder over one leaf.
#: Inputs are chosen inside each op's smooth domain.
OPS = {
    "add": (lambda t: (t + 1.5).sum(), (3, 4)),
    "radd_scalar": (lambda t: (2.0 + t).sum(), (3, 4)),
    "sub": (lambda t: (t - 0.5).sum(), (3, 4)),
    "mul": (lambda t: (t * t).sum(), (3, 4)),
    "div": (lambda t: (t / 2.0).sum(), (3, 4)),
    "rdiv": (lambda t: (1.0 / (t + 3.0)).sum(), (3, 4)),
    "neg": (lambda t: (-t).sum(), (3, 4)),
    "pow": (lambda t: (t**3).sum(), (3, 4)),
    "exp": (lambda t: t.exp().sum(), (3, 4)),
    "log": (lambda t: (t + 3.0).log().sum(), (3, 4)),
    "sqrt": (lambda t: (t + 3.0).sqrt().sum(), (3, 4)),
    "tanh": (lambda t: t.tanh().sum(), (3, 4)),
    "sigmoid": (lambda t: t.sigmoid().sum(), (3, 4)),
    "relu": (lambda t: (t.relu() * t).sum(), (3, 4)),
    "maximum_chain": (lambda t: ((t * 2.0 + 1.0).tanh() * t.sigmoid()).sum(), (5,)),
    "max_reduce": (lambda t: t.max(axis=-1).sum(), (4, 5)),
    "mean": (lambda t: t.mean(), (4, 5)),
    "matmul_fused": (lambda t: ((t @ t.transpose(1, 0)).relu() + 1.0).log().sum(), (4, 4)),
}


def _leaf_data(shape, seed=0):
    return np.random.default_rng(seed).uniform(-2.0, 2.0, size=shape)


class TestOpParity:
    @pytest.mark.parametrize("name", sorted(OPS))
    def test_forward_and_grad_match_eager(self, name):
        build, shape = OPS[name]
        data = _leaf_data(shape).astype(np.float32)

        def run():
            leaf = Tensor(data.copy(), requires_grad=True)
            loss = build(leaf)
            loss.backward()
            return float(loss.numpy()), leaf.grad.copy()

        with eager_mode():
            eager_loss, eager_grad = run()
        with lazy_mode():
            lazy_loss, lazy_grad = run()
        assert abs(eager_loss - lazy_loss) <= 1e-5 * max(1.0, abs(eager_loss))
        np.testing.assert_allclose(lazy_grad, eager_grad, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("name", sorted(OPS))
    def test_gradcheck_under_lazy_engine(self, name):
        build, shape = OPS[name]
        with lazy_mode():
            check_grad(build, _leaf_data(shape), rtol=1e-3, atol=1e-5)


#: Deterministic tiny config: dropout off so eager and lazy runs consume
#: identical RNG streams regardless of realization order.
PARITY_CFG = LocMatcherConfig(max_epochs=8, patience=8, dropout=0.0)


class TestLocMatcherParity:
    @pytest.fixture(scope="class")
    def examples(self):
        return synthetic_examples(24, seed=7)

    def _fit_and_score(self, examples):
        selector = LocMatcherSelector(config=PARITY_CFG)
        selector.fit(examples)
        probs = selector.scores_batch(examples)
        losses = [h["train_loss"] for h in selector.history]
        return losses, probs

    def test_full_fit_and_scores_match_eager(self, examples):
        with lazy_mode():
            lazy_losses, lazy_probs = self._fit_and_score(examples)
        with eager_mode():
            eager_losses, eager_probs = self._fit_and_score(examples)
        np.testing.assert_allclose(lazy_losses, eager_losses, rtol=1e-4, atol=1e-6)
        for lazy_p, eager_p in zip(lazy_probs, eager_probs):
            np.testing.assert_allclose(lazy_p, eager_p, rtol=1e-4, atol=1e-5)

    def test_scores_batch_matches_per_example(self, examples):
        with lazy_mode():
            selector = LocMatcherSelector(config=PARITY_CFG)
            selector.fit(examples)
            batched = selector.scores_batch(examples)
            singles = [selector.scores(e) for e in examples]
        for b, s in zip(batched, singles):
            np.testing.assert_allclose(b, s, rtol=1e-5, atol=1e-6)

    def test_padding_is_fully_masked(self, examples):
        # Bucketed padding (N up to 32, B up to a power of two) must not
        # leak into real candidates: score one example alone vs inside a
        # large ragged batch.
        with lazy_mode():
            selector = LocMatcherSelector(config=PARITY_CFG)
            selector.fit(examples)
            alone = selector.scores_batch([examples[0]])[0]
            crowd = selector.scores_batch(examples)[0]
        np.testing.assert_allclose(alone, crowd, rtol=1e-5, atol=1e-6)
        assert alone.shape == (examples[0].n_candidates,)
        assert abs(float(alone.sum()) - 1.0) < 1e-5
