"""Float32 end-to-end: the dtype-drift regression tests.

Policy: explicit ``dtype=`` wins; floating ndarray inputs keep their own
dtype (float64 gradchecks stay exact); everything else (ints, lists,
python scalars) lands on ``DEFAULT_DTYPE`` (float32).  Scalars are weak:
they adopt the other operand's dtype instead of promoting to float64.
"""

import numpy as np
import pytest

from repro.core import LocMatcherConfig, LocMatcherNet, LocMatcherSelector
from repro.nn import DEFAULT_DTYPE, Adam, Linear, Tensor, clip_grad_norm
from repro.nn.functional import cross_entropy_onehot, softmax
from tests.core.test_locmatcher import synthetic_examples


class TestTensorDtypePolicy:
    def test_default_dtype_is_float32(self):
        assert DEFAULT_DTYPE == np.float32

    def test_list_and_int_inputs_become_float32(self):
        assert Tensor([1, 2, 3]).dtype == np.float32
        assert Tensor(np.arange(4)).dtype == np.float32

    def test_float64_ndarray_keeps_its_dtype(self):
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_explicit_dtype_wins(self):
        assert Tensor(np.zeros(3, dtype=np.float64), dtype=np.float32).dtype == np.float32

    @pytest.mark.parametrize(
        "expr",
        [
            lambda t: t + 1.0,
            lambda t: 1.0 - t,
            lambda t: t * 2,
            lambda t: t / 3.0,
            lambda t: t**2,
            lambda t: t.relu(),
            lambda t: t.sigmoid(),
            lambda t: t.tanh(),
            lambda t: t.exp(),
            lambda t: (t + 2.0).sqrt(),
            lambda t: t.sum(axis=-1),
            lambda t: t.mean(),
            lambda t: t.max(axis=-1),
            lambda t: softmax(t, axis=-1),
        ],
    )
    def test_python_scalars_do_not_promote_float32(self, expr):
        t = Tensor(np.random.default_rng(0).normal(size=(2, 3)).astype(np.float32))
        assert expr(t).dtype == np.float32

    def test_backward_grads_stay_float32(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        ((t * 2.0 + 1.0).tanh().sum()).backward()
        assert t.grad.dtype == np.float32


class TestModuleDtype:
    def test_linear_params_and_output_float32(self):
        layer = Linear(4, 2)
        assert layer.weight.dtype == np.float32
        assert layer.bias.dtype == np.float32
        out = layer(Tensor(np.zeros((3, 4), dtype=np.float32)))
        assert out.dtype == np.float32

    def test_training_step_keeps_float32(self):
        layer = Linear(4, 2)
        opt = Adam(layer.parameters(), lr=1e-2)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)).astype(np.float32))
        loss = (layer(x) ** 2).sum()
        loss.backward()
        clip_grad_norm(opt.params, 1.0)
        opt.step()
        for p in layer.parameters():
            assert p.data.dtype == np.float32
            assert p.grad.dtype == np.float32

    def test_load_state_dict_casts_to_param_dtype(self):
        layer = Linear(4, 2)
        state = {k: v.astype(np.float64) for k, v in layer.state_dict().items()}
        layer.load_state_dict(state)
        assert layer.weight.data.dtype == np.float32


class TestLocMatcherDtype:
    def test_forward_logits_are_float32(self):
        net = LocMatcherNet(n_scalar=5, hist_dim=24, config=LocMatcherConfig())
        out = net(
            np.zeros((2, 7, 5)),  # float64 in: the entry point casts
            np.zeros((2, 7, 24)),
            np.ones((2, 7), dtype=bool),
            np.zeros(2, dtype=int),
            np.zeros(2),
        )
        assert out.dtype == np.float32

    def test_fitted_selector_is_float32_end_to_end(self):
        examples = synthetic_examples(16, seed=3)
        cfg = LocMatcherConfig(max_epochs=2, patience=2)
        selector = LocMatcherSelector(config=cfg).fit(examples)
        for p in selector.net.parameters():
            assert p.data.dtype == np.float32
        batch = selector._make_batch(examples[:4])
        assert batch[0].dtype == np.float32  # scalars
        assert batch[1].dtype == np.float32  # histograms
        for probs in selector.scores_batch(examples[:4]):
            assert probs.dtype == np.float32

    def test_loss_is_float32(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        onehot = np.zeros((2, 4), dtype=np.float32)
        onehot[:, 0] = 1.0
        loss = cross_entropy_onehot(logits, Tensor(onehot), Tensor(np.ones(2, dtype=np.float32)))
        assert loss.dtype == np.float32
