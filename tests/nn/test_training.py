"""End-to-end training sanity checks for the NN framework."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    ReLU,
    Sequential,
    Tensor,
    TransformerEncoder,
)
from repro.nn.functional import cross_entropy, masked_softmax


class TestMLPTraining:
    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 8)
        y = np.array([0, 1, 1, 0] * 8)
        model = Sequential(
            Linear(2, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng)
        )
        opt = Adam(model.parameters(), lr=0.01)
        first_loss = None
        for _ in range(300):
            opt.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        final_loss = loss.item()
        assert final_loss < first_loss * 0.1
        pred = model(Tensor(x)).data.argmax(axis=1)
        assert (pred == y).mean() == 1.0


class TestTransformerSelection:
    def test_learns_to_pick_max_feature(self):
        """A LocMatcher-shaped task: select the candidate with the largest
        first feature among a variable-length masked set."""
        rng = np.random.default_rng(1)
        d_in, d_model, n_max, batches = 3, 8, 6, 60
        proj = Linear(d_in, d_model, rng=rng)
        enc = TransformerEncoder(1, d_model, 2, 16, dropout=0.0, rng=rng)
        score = Linear(d_model, 1, rng=rng)
        params = proj.parameters() + enc.parameters() + score.parameters()
        opt = Adam(params, lr=0.01)

        def make_batch(b=16):
            x = rng.normal(size=(b, n_max, d_in))
            lengths = rng.integers(2, n_max + 1, size=b)
            mask = np.arange(n_max)[None, :] < lengths[:, None]
            x[~mask] = 0.0
            masked_feature = np.where(mask, x[:, :, 0], -np.inf)
            target = masked_feature.argmax(axis=1)
            return x, mask, target

        losses = []
        for _ in range(batches):
            x, mask, target = make_batch()
            opt.zero_grad()
            h = enc(proj(Tensor(x)), key_mask=mask)
            logits = score(h).reshape(x.shape[0], n_max)
            loss = cross_entropy(logits, target, mask=mask)
            loss.backward()
            opt.step()
            losses.append(loss.item())

        x, mask, target = make_batch(64)
        h = enc(proj(Tensor(x)), key_mask=mask)
        logits = score(h).reshape(64, n_max)
        probs = masked_softmax(logits, mask).data
        acc = (probs.argmax(axis=1) == target).mean()
        assert np.mean(losses[-10:]) < np.mean(losses[:10])
        assert acc > 0.8
