"""Graph layer: lazy op recording, realization boundaries, mode switches."""

import numpy as np

from repro.nn import Tensor, eager_mode, lazy_enabled, lazy_mode, set_lazy
from repro.nn.schedule import describe, kernel_cache_size


class TestLazyRecording:
    def test_ops_record_without_executing(self):
        with lazy_mode():
            x = Tensor(np.arange(6.0, dtype=np.float32).reshape(2, 3))
            y = (x * 2.0 + 1.0).relu()
            assert y._buf.realized is None  # nothing ran yet
            out = y.numpy()
        assert y._buf.realized is out
        np.testing.assert_allclose(out, np.maximum(np.arange(6.0).reshape(2, 3) * 2 + 1, 0))

    def test_data_property_forces_realization(self):
        with lazy_mode():
            x = Tensor(np.ones((3, 3), dtype=np.float32))
            y = x + x
            assert y._buf.realized is None
            _ = y.data
            assert y._buf.realized is not None

    def test_full_reduction_returns_ndarray(self):
        # Regression: `a.sum()` yields a numpy scalar from numpy; the
        # scheduler must coerce it so realized buffers are always ndarrays
        # (the JIT tracks them by object identity).
        with lazy_mode():
            total = Tensor(np.ones(5, dtype=np.float32)).sum().numpy()
        assert isinstance(total, np.ndarray)
        assert float(total) == 5.0

    def test_eager_mode_executes_immediately(self):
        with eager_mode():
            x = Tensor(np.ones(4, dtype=np.float32))
            y = x * 3.0
            assert isinstance(y._buf.realized, np.ndarray)

    def test_set_lazy_round_trip(self):
        original = lazy_enabled()
        try:
            set_lazy(False)
            assert not lazy_enabled()
            set_lazy(True)
            assert lazy_enabled()
        finally:
            set_lazy(original)


class TestScheduler:
    def test_elementwise_chain_fuses_into_one_kernel(self):
        with lazy_mode():
            x = Tensor(np.random.default_rng(0).normal(size=(4, 4)).astype(np.float32))
            y = ((x * 2.0 + 1.0).tanh() - 0.5).relu()
            info = describe([y._buf])
        assert info["n_steps"] == 1
        assert info["n_fused_kernels"] == 1
        assert info["n_fused_ops"] >= 5

    def test_cse_merges_duplicate_subgraphs(self):
        with lazy_mode():
            x = Tensor(np.ones((3, 3), dtype=np.float32))
            y = Tensor(np.full((3, 3), 2.0, dtype=np.float32))
            a = x + y
            b = x + y  # structurally identical, distinct node
            z = a * b
            info = describe([z._buf])
            assert info["n_cse_merged"] >= 1
            np.testing.assert_allclose(z.numpy(), np.full((3, 3), 9.0))

    def test_dead_nodes_never_execute(self):
        with lazy_mode():
            x = Tensor(np.ones(4, dtype=np.float32))
            live = x + 1.0
            dead = x * 100.0
            live.realize()
        assert live._buf.realized is not None
        assert dead._buf.realized is None  # DCE: never reached from roots

    def test_fusion_breaks_at_reductions_and_matmul(self):
        with lazy_mode():
            x = Tensor(np.ones((4, 4), dtype=np.float32))
            w = Tensor(np.ones((4, 4), dtype=np.float32))
            y = ((x @ w) + 1.0).relu().sum()
            info = describe([y._buf])
        assert "matmul" in info["kinds"]
        assert "sum" in info["kinds"]
        # (x@w)+1 then relu fuse into a single kernel between the two.
        assert info["n_fused_kernels"] == 1

    def test_kernel_cache_reuses_compiled_closures(self):
        with lazy_mode():
            a = (Tensor(np.ones(3, dtype=np.float32)) * 2.0 + 3.0).tanh()
            a.realize()
            before = kernel_cache_size()
            b = (Tensor(np.ones(7, dtype=np.float32)) * 2.0 + 3.0).tanh()
            b.realize()
            assert kernel_cache_size() == before  # same expression, cache hit

    def test_multi_consumer_intermediate_not_duplicated(self):
        with lazy_mode():
            x = Tensor(np.full(4, 3.0, dtype=np.float32))
            t = x * 2.0
            z = (t + 1.0) * (t - 1.0)
            info = describe([z._buf])
            # t materializes once (2 consumers); the rest fuses around it.
            assert info["n_steps"] == 2
            np.testing.assert_allclose(z.numpy(), (6.0 + 1) * (6.0 - 1) * np.ones(4))


class TestLazyBackward:
    def test_backward_forces_and_matches_eager(self):
        data = np.random.default_rng(1).normal(size=(3, 3))
        with lazy_mode():
            x = Tensor(data.astype(np.float32), requires_grad=True)
            ((x * x).tanh().sum()).backward()
            lazy_grad = x.grad
        with eager_mode():
            x2 = Tensor(data.astype(np.float32), requires_grad=True)
            ((x2 * x2).tanh().sum()).backward()
        np.testing.assert_allclose(lazy_grad, x2.grad, rtol=1e-6, atol=1e-7)
