"""Graph layer: lazy op recording, realization boundaries, mode switches."""

import numpy as np

from repro.nn import Tensor, eager_mode, lazy_enabled, lazy_mode, set_lazy
from repro.nn.schedule import describe, kernel_cache_size, last_schedule_info


class TestLazyRecording:
    def test_ops_record_without_executing(self):
        with lazy_mode():
            x = Tensor(np.arange(6.0, dtype=np.float32).reshape(2, 3))
            y = (x * 2.0 + 1.0).relu()
            assert y._buf.realized is None  # nothing ran yet
            out = y.numpy()
        assert y._buf.realized is out
        np.testing.assert_allclose(out, np.maximum(np.arange(6.0).reshape(2, 3) * 2 + 1, 0))

    def test_data_property_forces_realization(self):
        with lazy_mode():
            x = Tensor(np.ones((3, 3), dtype=np.float32))
            y = x + x
            assert y._buf.realized is None
            _ = y.data
            assert y._buf.realized is not None

    def test_full_reduction_returns_ndarray(self):
        # Regression: `a.sum()` yields a numpy scalar from numpy; the
        # scheduler must coerce it so realized buffers are always ndarrays
        # (the JIT tracks them by object identity).
        with lazy_mode():
            total = Tensor(np.ones(5, dtype=np.float32)).sum().numpy()
        assert isinstance(total, np.ndarray)
        assert float(total) == 5.0

    def test_eager_mode_executes_immediately(self):
        with eager_mode():
            x = Tensor(np.ones(4, dtype=np.float32))
            y = x * 3.0
            assert isinstance(y._buf.realized, np.ndarray)

    def test_set_lazy_round_trip(self):
        original = lazy_enabled()
        try:
            set_lazy(False)
            assert not lazy_enabled()
            set_lazy(True)
            assert lazy_enabled()
        finally:
            set_lazy(original)


class TestScheduler:
    def test_elementwise_chain_fuses_into_one_kernel(self):
        with lazy_mode():
            x = Tensor(np.random.default_rng(0).normal(size=(4, 4)).astype(np.float32))
            y = ((x * 2.0 + 1.0).tanh() - 0.5).relu()
            info = describe([y._buf])
        assert info["n_steps"] == 1
        assert info["n_fused_kernels"] == 1
        assert info["n_fused_ops"] >= 5

    def test_cse_merges_duplicate_subgraphs(self):
        with lazy_mode():
            x = Tensor(np.ones((3, 3), dtype=np.float32))
            y = Tensor(np.full((3, 3), 2.0, dtype=np.float32))
            a = x + y
            b = x + y  # structurally identical, distinct node
            z = a * b
            info = describe([z._buf])
            assert info["n_cse_merged"] >= 1
            np.testing.assert_allclose(z.numpy(), np.full((3, 3), 9.0))

    def test_dead_nodes_never_execute(self):
        with lazy_mode():
            x = Tensor(np.ones(4, dtype=np.float32))
            live = x + 1.0
            dead = x * 100.0
            live.realize()
        assert live._buf.realized is not None
        assert dead._buf.realized is None  # DCE: never reached from roots

    def test_fusion_breaks_at_reductions_and_matmul(self):
        with lazy_mode():
            x = Tensor(np.ones((4, 4), dtype=np.float32))
            w = Tensor(np.ones((4, 4), dtype=np.float32))
            y = ((x @ w) + 1.0).relu().sum()
            info = describe([y._buf])
        assert "matmul" in info["kinds"]
        assert "sum" in info["kinds"]
        # (x@w)+1 then relu fuse into a single kernel between the two.
        assert info["n_fused_kernels"] == 1

    def test_kernel_cache_reuses_compiled_closures(self):
        with lazy_mode():
            a = (Tensor(np.ones(3, dtype=np.float32)) * 2.0 + 3.0).tanh()
            a.realize()
            before = kernel_cache_size()
            b = (Tensor(np.ones(7, dtype=np.float32)) * 2.0 + 3.0).tanh()
            b.realize()
            assert kernel_cache_size() == before  # same expression, cache hit

    def test_multi_consumer_intermediate_not_duplicated(self):
        with lazy_mode():
            x = Tensor(np.full(4, 3.0, dtype=np.float32))
            t = x * 2.0
            z = (t + 1.0) * (t - 1.0)
            info = describe([z._buf])
            # t materializes once (2 consumers); the rest fuses around it.
            assert info["n_steps"] == 2
            np.testing.assert_allclose(z.numpy(), (6.0 + 1) * (6.0 - 1) * np.ones(4))


class TestBufferDonation:
    """``out=`` reuse must never clobber arrays a later realize re-reads."""

    def test_sole_consumer_chain_still_donates(self):
        with lazy_mode():
            x = Tensor(np.random.default_rng(0).normal(size=(16, 16)).astype(np.float32))
            w = Tensor(np.random.default_rng(1).normal(size=(16, 16)).astype(np.float32))
            u = x @ w
            r = (u + 1.0).relu()
            del u  # matmul output dies here; the fused kernel may reuse it
            out = r.numpy()
        assert last_schedule_info["n_out_donated"] >= 1
        np.testing.assert_allclose(
            out, np.maximum(x.numpy() @ w.numpy() + 1.0, 0.0), rtol=1e-6
        )

    def test_unrealized_sibling_consumer_blocks_donation(self):
        # Regression: u fed an inlined interior (t) whose *other* consumer
        # (r2) lives outside r1's schedule; donating u's array as out=
        # scratch for the fused relu(u+1) kernel corrupted r2's later
        # realization.
        with lazy_mode():
            x = Tensor(np.random.default_rng(2).normal(size=(8, 8)).astype(np.float32))
            y = Tensor(np.random.default_rng(3).normal(size=(8, 8)).astype(np.float32))
            u = x @ y
            t = u + 1.0
            r1, r2 = t.relu(), t * 2.0
            del u, t
            a1 = r1.numpy()
            a2 = r2.numpy()
        ref = x.numpy() @ y.numpy() + 1.0
        np.testing.assert_allclose(a1, np.maximum(ref, 0.0), rtol=1e-6)
        np.testing.assert_allclose(a2, ref * 2.0, rtol=1e-6)

    def test_scheduled_node_with_external_consumer_not_donated(self):
        with lazy_mode():
            x = Tensor(np.random.default_rng(4).normal(size=(8, 8)).astype(np.float32))
            y = Tensor(np.random.default_rng(5).normal(size=(8, 8)).astype(np.float32))
            u = x @ y
            r1 = (u + 1.0).relu()
            r2 = u * 3.0  # consumes u itself from outside r1's schedule
            del u
            a1 = r1.numpy()
            a2 = r2.numpy()
        ref = x.numpy() @ y.numpy()
        np.testing.assert_allclose(a1, np.maximum(ref + 1.0, 0.0), rtol=1e-6)
        np.testing.assert_allclose(a2, ref * 3.0, rtol=1e-6)

    def test_cse_duplicate_with_external_consumer_not_donated(self):
        with lazy_mode():
            x = Tensor(np.random.default_rng(6).normal(size=(8, 8)).astype(np.float32))
            y = Tensor(np.random.default_rng(7).normal(size=(8, 8)).astype(np.float32))
            u1 = x @ y
            u2 = x @ y  # CSE-merged duplicate; shares u1's realized array
            r1 = (u1 + 1.0).relu()
            r2 = u2 * 5.0
            del u1, u2
            a1 = r1.numpy()
            a2 = r2.numpy()
        ref = x.numpy() @ y.numpy()
        np.testing.assert_allclose(a1, np.maximum(ref + 1.0, 0.0), rtol=1e-6)
        np.testing.assert_allclose(a2, ref * 5.0, rtol=1e-6)


class TestLazyBackward:
    def test_backward_forces_and_matches_eager(self):
        data = np.random.default_rng(1).normal(size=(3, 3))
        with lazy_mode():
            x = Tensor(data.astype(np.float32), requires_grad=True)
            ((x * x).tanh().sum()).backward()
            lazy_grad = x.grad
        with eager_mode():
            x2 = Tensor(data.astype(np.float32), requires_grad=True)
            ((x2 * x2).tanh().sum()).backward()
        np.testing.assert_allclose(lazy_grad, x2.grad, rtol=1e-6, atol=1e-7)
