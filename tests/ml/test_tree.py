import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


def blobs(seed=0, n=60, gap=4.0):
    rng = np.random.default_rng(seed)
    a = rng.normal([0, 0], 1, size=(n, 2))
    b = rng.normal([gap, gap], 1, size=(n, 2))
    x = np.vstack([a, b])
    y = np.array([0] * n + [1] * n)
    return x, y


class TestDecisionTreeClassifier:
    def test_separable_data_perfect(self):
        x, y = blobs(gap=10.0)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert (tree.predict(x) == y).all()

    def test_predict_proba_rows_sum_to_one(self):
        x, y = blobs()
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        proba = tree.predict_proba(x)
        assert proba.shape == (len(x), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_single_class(self):
        x = np.random.default_rng(0).normal(size=(10, 3))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == 0).all()
        assert tree.n_leaves() == 1

    def test_max_depth_respected(self):
        x, y = blobs(n=100, gap=1.0)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        x, y = blobs(n=30)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(x, y)

        def check(node, idx):
            if node.is_leaf:
                assert node.n_samples >= 10
            else:
                check(node.left, None)
                check(node.right, None)

        check(tree.root, None)

    def test_max_leaf_nodes_bounds_leaves(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(300, 4))
        y = (x[:, 0] + x[:, 1] + rng.normal(0, 0.05, 300) > 1.0).astype(int)
        tree = DecisionTreeClassifier(max_leaf_nodes=5).fit(x, y)
        assert 2 <= tree.n_leaves() <= 5
        # Unrestricted tree would be much larger.
        big = DecisionTreeClassifier().fit(x, y)
        assert big.n_leaves() > 5

    def test_best_first_growth_accuracy(self):
        x, y = blobs(gap=6.0)
        tree = DecisionTreeClassifier(max_leaf_nodes=4).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.95

    def test_sample_weight_shifts_decision(self):
        # A point cloud where class 1 is rare; weighting it up changes leaves.
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(100, 1))
        y = (x[:, 0] > 0.9).astype(int)
        unweighted = DecisionTreeClassifier(max_depth=1).fit(x, y)
        w = np.where(y == 1, 50.0, 1.0)
        weighted = DecisionTreeClassifier(max_depth=1).fit(x, y, sample_weight=w)
        probe = np.array([[0.95]])
        assert weighted.predict_proba(probe)[0, 1] >= unweighted.predict_proba(probe)[0, 1]

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        centers = [(0, 0), (8, 0), (0, 8)]
        x = np.vstack([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 30)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert (tree.predict(x) == y).mean() == 1.0
        assert tree.predict_proba(x).shape == (90, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_leaf_nodes=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))
        tree = DecisionTreeClassifier().fit(np.zeros((2, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 3)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_training_accuracy_beats_majority_property(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, size=(50, 3))
        y = (x[:, 0] > 0.5).astype(int)
        if len(np.unique(y)) < 2:
            return
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        acc = (tree.predict(x) == y).mean()
        majority = max(np.bincount(y)) / len(y)
        assert acc >= majority


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        pred = tree.predict(x)
        np.testing.assert_allclose(pred, y, atol=1e-9)

    def test_constant_target(self):
        x = np.random.default_rng(0).normal(size=(20, 2))
        tree = DecisionTreeRegressor().fit(x, np.full(20, 7.0))
        np.testing.assert_allclose(tree.predict(x), 7.0)
        assert tree.n_leaves() == 1

    def test_deeper_tree_reduces_error(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(200, 1))
        y = np.sin(6 * x[:, 0])
        shallow = DecisionTreeRegressor(max_depth=2).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(x, y)
        err_shallow = np.mean((shallow.predict(x) - y) ** 2)
        err_deep = np.mean((deep.predict(x) - y) ** 2)
        assert err_deep < err_shallow

    def test_apply_returns_stable_leaf_ids(self):
        x, _ = blobs()
        y = x[:, 0]
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        ids1 = tree.apply(x)
        ids2 = tree.apply(x)
        np.testing.assert_array_equal(ids1, ids2)
        assert ids1.max() + 1 <= tree.n_leaves()
        # Same leaf -> same prediction.
        preds = tree.predict(x)
        for leaf in np.unique(ids1):
            assert len(np.unique(preds[ids1 == leaf])) == 1

    def test_leaves_enumeration(self):
        x = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (x[:, 0] * 4).astype(int).astype(float)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert len(tree.leaves()) == tree.n_leaves()

    def test_weighted_leaf_value(self):
        x = np.zeros((2, 1))
        y = np.array([0.0, 10.0])
        tree = DecisionTreeRegressor().fit(x, y, sample_weight=np.array([3.0, 1.0]))
        assert tree.predict(np.zeros((1, 1)))[0] == pytest.approx(2.5)


class TestFeatureImportances:
    def test_informative_feature_dominates(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(300, 3))
        y = (x[:, 1] > 0.5).astype(int)  # only feature 1 matters
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        imp = tree.feature_importances_
        assert imp.argmax() == 1
        assert imp.sum() == pytest.approx(1.0)

    def test_pure_node_zero_importance(self):
        x = np.random.default_rng(1).normal(size=(20, 2))
        tree = DecisionTreeClassifier().fit(x, np.zeros(20, dtype=int))
        np.testing.assert_allclose(tree.feature_importances_, 0.0)

    def test_best_first_importances(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(200, 4))
        y = (x[:, 2] + 0.1 * x[:, 0] > 0.55).astype(int)
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        assert tree.feature_importances_.argmax() == 2

    def test_regressor_importances(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, size=(200, 2))
        y = 5.0 * x[:, 0] + rng.normal(0, 0.05, 200)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.feature_importances_.argmax() == 0

    def test_ensemble_importances(self):
        from repro.ml import GradientBoostingClassifier, RandomForestClassifier

        rng = np.random.default_rng(4)
        x = rng.uniform(0, 1, size=(200, 3))
        y = (x[:, 0] > 0.5).astype(int)
        rf = RandomForestClassifier(n_estimators=10, max_depth=3, rng=rng).fit(x, y)
        gb = GradientBoostingClassifier(n_estimators=10, max_depth=2).fit(x, y)
        assert rf.feature_importances_.argmax() == 0
        assert gb.feature_importances_.argmax() == 0
