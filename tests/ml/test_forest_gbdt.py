import numpy as np
import pytest

from repro.ml import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
)


def two_moons(seed=0, n=150):
    rng = np.random.default_rng(seed)
    t = rng.uniform(0, np.pi, n)
    a = np.column_stack([np.cos(t), np.sin(t)]) + rng.normal(0, 0.12, (n, 2))
    b = np.column_stack([1 - np.cos(t), 0.5 - np.sin(t)]) + rng.normal(0, 0.12, (n, 2))
    x = np.vstack([a, b])
    y = np.array([0] * n + [1] * n)
    return x, y


class TestRandomForest:
    def test_nonlinear_boundary(self):
        x, y = two_moons()
        rf = RandomForestClassifier(n_estimators=30, max_depth=6, rng=np.random.default_rng(0))
        rf.fit(x, y)
        assert (rf.predict(x) == y).mean() > 0.95

    def test_proba_shape_and_sum(self):
        x, y = two_moons(n=40)
        rf = RandomForestClassifier(n_estimators=5, rng=np.random.default_rng(1)).fit(x, y)
        proba = rf.predict_proba(x)
        assert proba.shape == (len(x), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_more_trees_smoother(self):
        # Forest probability estimates take many distinct values.
        x, y = two_moons(n=60)
        rf = RandomForestClassifier(n_estimators=25, max_depth=3, rng=np.random.default_rng(2)).fit(x, y)
        single = RandomForestClassifier(n_estimators=1, max_depth=3, rng=np.random.default_rng(2)).fit(x, y)
        assert len(np.unique(rf.predict_proba(x)[:, 1])) >= len(
            np.unique(single.predict_proba(x)[:, 1])
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier(n_estimators=2).predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_deterministic_with_seed(self):
        x, y = two_moons(n=30)
        p1 = RandomForestClassifier(n_estimators=5, rng=np.random.default_rng(7)).fit(x, y).predict_proba(x)
        p2 = RandomForestClassifier(n_estimators=5, rng=np.random.default_rng(7)).fit(x, y).predict_proba(x)
        np.testing.assert_allclose(p1, p2)


class TestGradientBoostingClassifier:
    def test_nonlinear_boundary(self):
        x, y = two_moons()
        gb = GradientBoostingClassifier(n_estimators=60, max_depth=3, rng=np.random.default_rng(0))
        gb.fit(x, y)
        assert (gb.predict(x) == y).mean() > 0.97

    def test_boosting_improves_fit(self):
        x, y = two_moons(n=80)
        few = GradientBoostingClassifier(n_estimators=2, max_depth=2).fit(x, y)
        many = GradientBoostingClassifier(n_estimators=60, max_depth=2).fit(x, y)
        assert (many.predict(x) == y).mean() >= (few.predict(x) == y).mean()

    def test_init_score_is_prior_log_odds(self):
        x = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([1] * 80 + [0] * 20)
        gb = GradientBoostingClassifier(n_estimators=1).fit(x, y)
        assert gb.init_score_ == pytest.approx(np.log(0.8 / 0.2), rel=1e-6)

    def test_proba_bounds(self):
        x, y = two_moons(n=40)
        gb = GradientBoostingClassifier(n_estimators=10).fit(x, y)
        proba = gb.predict_proba(x)
        assert (proba >= 0).all() and (proba <= 1).all()
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_sample_weight_effect(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, size=(200, 1))
        y = (x[:, 0] > 0.85).astype(int)
        w = np.where(y == 1, 10.0, 1.0)
        plain = GradientBoostingClassifier(n_estimators=20).fit(x, y)
        weighted = GradientBoostingClassifier(n_estimators=20).fit(x, y, sample_weight=w)
        probe = np.array([[0.9]])
        assert weighted.predict_proba(probe)[0, 1] >= plain.predict_proba(probe)[0, 1] - 1e-9

    def test_label_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=1).fit(np.zeros((3, 1)), np.array([0, 1, 2]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().decision_function(np.zeros((1, 1)))


class TestGradientBoostingRegressor:
    def test_fits_sine(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(300, 1))
        y = np.sin(6 * x[:, 0])
        gb = GradientBoostingRegressor(n_estimators=80, max_depth=3).fit(x, y)
        mse = np.mean((gb.predict(x) - y) ** 2)
        assert mse < 0.01

    def test_single_stage_is_shrunk_tree_plus_mean(self):
        x = np.linspace(0, 1, 50).reshape(-1, 1)
        y = x[:, 0] * 2.0
        gb = GradientBoostingRegressor(n_estimators=1, learning_rate=1.0, max_depth=1).fit(x, y)
        assert abs(gb.init_ - 1.0) < 1e-9
        assert len(gb.trees_) == 1
