import numpy as np
import pytest

from repro.ml import accuracy, confusion_matrix, precision_recall_f1, roc_auc


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 0]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestPrecisionRecallF1:
    def test_perfect(self):
        p, r, f1 = precision_recall_f1(np.array([1, 0, 1]), np.array([1, 0, 1]))
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_known_values(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        p, r, f1 = precision_recall_f1(y_true, y_pred)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        p, r, f1 = precision_recall_f1(np.array([1, 0]), np.array([0, 0]))
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_custom_positive_label(self):
        p, r, _ = precision_recall_f1(np.array(["a", "b"]), np.array(["a", "a"]), positive="a")
        assert p == 0.5 and r == 1.0


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2_000)
        scores = rng.random(2_000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.04)

    def test_inverted_is_zero(self):
        assert roc_auc(np.array([1, 0]), np.array([0.1, 0.9])) == 0.0

    def test_ties_averaged(self):
        # All scores equal -> AUC exactly 0.5.
        assert roc_auc(np.array([0, 1, 0, 1]), np.zeros(4)) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([1, 1]), np.array([0.5, 0.6]))


class TestConfusionMatrix:
    def test_binary(self):
        cm = confusion_matrix(np.array([1, 0, 1, 1]), np.array([1, 0, 0, 1]), labels=[0, 1])
        np.testing.assert_array_equal(cm, [[1, 0], [1, 2]])

    def test_labels_inferred(self):
        cm = confusion_matrix(np.array(["x", "y"]), np.array(["y", "y"]))
        assert cm.sum() == 2
        assert cm.shape == (2, 2)
