import numpy as np
import pytest

from repro.ml import MLPClassifier, PairwiseRankingTree, RankNet, RankingGroup, StandardScaler


def make_groups(seed=0, n_groups=40, d=4):
    """Groups where the positive candidate has the highest feature-0."""
    rng = np.random.default_rng(seed)
    groups = []
    for _ in range(n_groups):
        n = rng.integers(3, 8)
        feats = rng.normal(size=(n, d))
        pos = int(feats[:, 0].argmax())
        groups.append(RankingGroup(feats, pos))
    return groups


class TestRankingGroup:
    def test_validation(self):
        with pytest.raises(ValueError):
            RankingGroup(np.zeros(3), 0)
        with pytest.raises(ValueError):
            RankingGroup(np.zeros((3, 2)), 3)


class TestPairwiseRankingTree:
    def test_learns_feature_rule(self):
        groups = make_groups()
        ranker = PairwiseRankingTree(rng=np.random.default_rng(0)).fit(groups)
        test_groups = make_groups(seed=99, n_groups=30)
        hits = sum(
            ranker.predict_best(g.features) == g.positive_index for g in test_groups
        )
        assert hits / len(test_groups) > 0.8

    def test_single_candidate_group_scores(self):
        groups = make_groups(n_groups=10)
        ranker = PairwiseRankingTree(rng=np.random.default_rng(0)).fit(groups)
        assert ranker.predict_best(np.zeros((1, 4))) == 0

    def test_no_pairs_rejected(self):
        lonely = [RankingGroup(np.zeros((1, 4)), 0)]
        with pytest.raises(ValueError):
            PairwiseRankingTree().fit(lonely)

    def test_scores_shape(self):
        groups = make_groups(n_groups=10)
        ranker = PairwiseRankingTree(rng=np.random.default_rng(1)).fit(groups)
        scores = ranker.scores(groups[0].features)
        assert scores.shape == (len(groups[0].features),)


class TestRankNet:
    def test_learns_feature_rule(self):
        groups = make_groups()
        net = RankNet(epochs=80, rng=np.random.default_rng(0)).fit(groups)
        test_groups = make_groups(seed=7, n_groups=30)
        hits = sum(net.predict_best(g.features) == g.positive_index for g in test_groups)
        assert hits / len(test_groups) > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RankNet().scores(np.zeros((2, 4)))

    def test_scores_monotone_in_learned_feature(self):
        groups = make_groups(n_groups=60)
        net = RankNet(epochs=30, rng=np.random.default_rng(1)).fit(groups)
        base = np.zeros((2, 4))
        base[1, 0] = 3.0  # much larger feature-0
        s = net.scores(base)
        assert s[1] > s[0]


class TestMLPClassifier:
    def test_linear_separation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        clf = MLPClassifier(epochs=60, pos_weight=1.0, rng=np.random.default_rng(1)).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9

    def test_pos_weight_biases_positive(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(300, 2))
        y = (rng.random(300) < 0.1).astype(int)  # noise labels, 10% positive
        heavy = MLPClassifier(epochs=20, pos_weight=10.0, rng=np.random.default_rng(3)).fit(x, y)
        light = MLPClassifier(epochs=20, pos_weight=1.0, rng=np.random.default_rng(3)).fit(x, y)
        assert heavy.predict_proba(x)[:, 1].mean() > light.predict_proba(x)[:, 1].mean()

    def test_label_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(epochs=1).fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_proba_shape(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(50, 2))
        y = (x[:, 0] > 0).astype(int)
        clf = MLPClassifier(epochs=5, rng=rng).fit(x, y)
        proba = clf.predict_proba(x)
        assert proba.shape == (50, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)


class TestStandardScaler:
    def test_transform_standardizes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(500, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_maps_to_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(2.0, 7.0, size=(30, 3))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x, rtol=1e-10)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(3))
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))
