"""Cross-structure agreement tests for the geo package's spatial indexes."""

import numpy as np
import pytest

from repro.geo import GridIndex, RTree, convex_hull, point_in_polygon


class TestIndexAgreement:
    """GridIndex and RTree must answer identically on the same data."""

    @pytest.fixture(scope="class")
    def indexes(self):
        rng = np.random.default_rng(42)
        coords = np.vstack([
            rng.normal([0, 0], 30, size=(150, 2)),      # dense core
            rng.uniform(-800, 800, size=(100, 2)),      # scattered
        ])
        grid = GridIndex(50.0)
        for i, (x, y) in enumerate(coords):
            grid.insert(i, float(x), float(y))
        tree = RTree(list(range(len(coords))), coords, leaf_size=8)
        return grid, tree, coords

    def test_radius_queries_agree(self, indexes):
        grid, tree, _ = indexes
        rng = np.random.default_rng(1)
        for qx, qy in rng.uniform(-900, 900, size=(25, 2)):
            for radius in (10.0, 75.0, 300.0):
                a = set(grid.query_radius(float(qx), float(qy), radius))
                b = set(tree.query_radius(float(qx), float(qy), radius))
                assert a == b

    def test_nearest_agree(self, indexes):
        grid, tree, coords = indexes
        rng = np.random.default_rng(2)
        for qx, qy in rng.uniform(-900, 900, size=(25, 2)):
            g = grid.nearest(float(qx), float(qy))
            t = tree.nearest(float(qx), float(qy))
            dg = ((coords[g] - [qx, qy]) ** 2).sum()
            dt = ((coords[t] - [qx, qy]) ** 2).sum()
            assert dg == pytest.approx(dt)

    def test_hull_contains_all_radius_hits(self, indexes):
        """Composing structures: hull of a radius query contains its points."""
        grid, _, coords = indexes
        hits = grid.query_radius(0.0, 0.0, 100.0)
        if len(hits) < 3:
            pytest.skip("not enough points in query")
        hull = convex_hull(coords[hits])
        for i in hits:
            assert point_in_polygon(float(coords[i, 0]), float(coords[i, 1]), hull)
