import pytest

from repro.geo import Point


class TestPoint:
    def test_fields(self):
        p = Point(116.4, 39.9)
        assert p.lng == 116.4
        assert p.lat == 39.9

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_frozen(self):
        p = Point(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.lng = 1.0

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0)}) == 1

    @pytest.mark.parametrize("lng,lat", [(181.0, 0.0), (-181.0, 0.0), (0.0, 91.0), (0.0, -90.5)])
    def test_out_of_range_rejected(self, lng, lat):
        with pytest.raises(ValueError):
            Point(lng, lat)

    def test_distance_to_self_is_zero(self):
        p = Point(116.4, 39.9)
        assert p.distance_m(p) == 0.0

    def test_distance_symmetry(self):
        a = Point(116.40, 39.90)
        b = Point(116.41, 39.91)
        assert a.distance_m(b) == pytest.approx(b.distance_m(a))
