"""GeoHash edge cases: poles, dateline, precision extremes."""

import numpy as np
import pytest

from repro.geo import (
    GeohashSpatialIndex,
    geohash_bbox,
    geohash_decode,
    geohash_encode,
    geohash_neighbors,
    geohash_ring,
)


class TestGeohashEdges:
    def test_north_pole(self):
        gh = geohash_encode(0.0, 90.0, precision=6)
        box = geohash_bbox(gh)
        assert box.max_lat == pytest.approx(90.0, abs=0.1)

    def test_south_pole_neighbors_clipped(self):
        gh = geohash_encode(0.0, -90.0, precision=5)
        neighbors = geohash_neighbors(gh)
        # Southern neighbors fall off the map; fewer than 8 remain.
        assert 0 < len(neighbors) < 8

    def test_dateline_east(self):
        gh = geohash_encode(179.99, 0.0, precision=7)
        center = geohash_decode(gh)
        assert center.lng == pytest.approx(179.99, abs=0.01)

    def test_dateline_west(self):
        gh = geohash_encode(-179.99, 0.0, precision=7)
        box = geohash_bbox(gh)
        assert box.min_lng >= -180.0

    def test_precision_one(self):
        gh = geohash_encode(116.4, 39.9, precision=1)
        assert len(gh) == 1
        box = geohash_bbox(gh)
        assert box.contains(geohash_decode(gh))

    def test_high_precision_tiny_cell(self):
        gh = geohash_encode(116.4, 39.9, precision=12)
        box = geohash_bbox(gh)
        assert (box.max_lng - box.min_lng) < 1e-6

    def test_equator_prime_meridian(self):
        gh = geohash_encode(0.0, 0.0, precision=8)
        center = geohash_decode(gh)
        assert abs(center.lng) < 0.001
        assert abs(center.lat) < 0.001


class TestAntimeridian:
    def test_ring_wraps_across_dateline(self):
        gh = geohash_encode(179.999, 0.0, precision=4)
        ring = geohash_ring(gh, 1)
        assert len(ring) == 8
        # The eastern neighbors wrap to the western hemisphere instead
        # of being dropped.
        assert any(geohash_decode(cell).lng < 0 for cell in ring)

    def test_nearest_parity_across_dateline(self):
        rng = np.random.default_rng(7)
        n = 200
        east = rng.random(n) < 0.5
        lngs = np.where(
            east,
            179.5 + rng.random(n) * 0.5,
            -180.0 + rng.random(n) * 0.5,
        )
        lats = rng.uniform(-10.0, 10.0, n)
        index = GeohashSpatialIndex.build(lngs, lats, precision=5)
        for qlng, qlat in [
            (179.999, 0.0),
            (-179.999, 2.0),
            (180.0, -5.0),
            (-179.6, 7.0),
        ]:
            got = index.nearest(qlng, qlat)
            want = index.nearest_linear(qlng, qlat)
            assert got is not None and want is not None
            assert got[1] == pytest.approx(want[1], abs=1e-6)

    def test_nearest_parity_near_pole(self):
        rng = np.random.default_rng(11)
        lngs = rng.uniform(-180.0, 180.0, 100)
        lats = rng.uniform(85.5, 89.9, 100)
        index = GeohashSpatialIndex.build(lngs, lats, precision=5)
        for qlng, qlat in [(0.0, 89.0), (120.0, 86.5), (-90.0, 88.0)]:
            got = index.nearest(qlng, qlat)
            want = index.nearest_linear(qlng, qlat)
            assert got is not None and want is not None
            assert got[1] == pytest.approx(want[1], abs=1e-6)
