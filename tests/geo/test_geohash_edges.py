"""GeoHash edge cases: poles, dateline, precision extremes."""

import pytest

from repro.geo import geohash_bbox, geohash_decode, geohash_encode, geohash_neighbors


class TestGeohashEdges:
    def test_north_pole(self):
        gh = geohash_encode(0.0, 90.0, precision=6)
        box = geohash_bbox(gh)
        assert box.max_lat == pytest.approx(90.0, abs=0.1)

    def test_south_pole_neighbors_clipped(self):
        gh = geohash_encode(0.0, -90.0, precision=5)
        neighbors = geohash_neighbors(gh)
        # Southern neighbors fall off the map; fewer than 8 remain.
        assert 0 < len(neighbors) < 8

    def test_dateline_east(self):
        gh = geohash_encode(179.99, 0.0, precision=7)
        center = geohash_decode(gh)
        assert center.lng == pytest.approx(179.99, abs=0.01)

    def test_dateline_west(self):
        gh = geohash_encode(-179.99, 0.0, precision=7)
        box = geohash_bbox(gh)
        assert box.min_lng >= -180.0

    def test_precision_one(self):
        gh = geohash_encode(116.4, 39.9, precision=1)
        assert len(gh) == 1
        box = geohash_bbox(gh)
        assert box.contains(geohash_decode(gh))

    def test_high_precision_tiny_cell(self):
        gh = geohash_encode(116.4, 39.9, precision=12)
        box = geohash_bbox(gh)
        assert (box.max_lng - box.min_lng) < 1e-6

    def test_equator_prime_meridian(self):
        gh = geohash_encode(0.0, 0.0, precision=8)
        center = geohash_decode(gh)
        assert abs(center.lng) < 0.001
        assert abs(center.lat) < 0.001
