import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import RTree


def random_tree(n=200, seed=0, leaf_size=8):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(-500, 500, size=(n, 2))
    return RTree(list(range(n)), coords, leaf_size=leaf_size), coords


class TestRTreeConstruction:
    def test_empty(self):
        tree = RTree([], np.empty((0, 2)))
        assert len(tree) == 0
        assert tree.nearest(0, 0) is None
        assert tree.query_radius(0, 0, 100) == []
        assert tree.query_box(-1, -1, 1, 1) == []

    def test_single_point(self):
        tree = RTree(["a"], np.array([[5.0, 5.0]]))
        assert tree.nearest(0, 0) == "a"
        assert tree.query_radius(5, 5, 0.0) == ["a"]

    def test_validation(self):
        with pytest.raises(ValueError):
            RTree(["a"], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            RTree(["a"], np.zeros((1, 2)), leaf_size=1)


class TestQueries:
    def test_box_matches_bruteforce(self):
        tree, coords = random_tree()
        for x0, y0, x1, y1 in [(-100, -100, 100, 100), (0, 0, 500, 500), (-600, -600, -400, -400)]:
            expect = {
                i for i, (x, y) in enumerate(coords)
                if x0 <= x <= x1 and y0 <= y <= y1
            }
            assert set(tree.query_box(x0, y0, x1, y1)) == expect

    def test_degenerate_box_rejected(self):
        tree, _ = random_tree(20)
        with pytest.raises(ValueError):
            tree.query_box(1, 1, 0, 0)

    def test_radius_matches_bruteforce(self):
        tree, coords = random_tree(seed=3)
        for qx, qy, r in [(0, 0, 150), (400, -400, 80), (-550, 550, 200)]:
            expect = {
                i for i, (x, y) in enumerate(coords)
                if (x - qx) ** 2 + (y - qy) ** 2 <= r * r
            }
            assert set(tree.query_radius(qx, qy, r)) == expect

    def test_negative_radius(self):
        tree, _ = random_tree(10)
        with pytest.raises(ValueError):
            tree.query_radius(0, 0, -1)

    def test_nearest_matches_bruteforce(self):
        tree, coords = random_tree(seed=5)
        rng = np.random.default_rng(6)
        for qx, qy in rng.uniform(-700, 700, size=(30, 2)):
            d2 = ((coords - [qx, qy]) ** 2).sum(axis=1)
            best = tree.nearest(float(qx), float(qy))
            assert d2[best] == pytest.approx(d2.min())

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1000, max_value=1000),
                st.floats(min_value=-1000, max_value=1000),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0, max_value=500),
    )
    def test_radius_property(self, pts, radius):
        coords = np.array(pts)
        tree = RTree(list(range(len(pts))), coords, leaf_size=4)
        found = set(tree.query_radius(10.0, -10.0, radius))
        expect = {
            i for i, (x, y) in enumerate(pts)
            if (x - 10.0) ** 2 + (y + 10.0) ** 2 <= radius * radius
        }
        assert found == expect

    def test_skewed_distribution(self):
        # Heavy cluster + far outliers: the case grids handle poorly.
        rng = np.random.default_rng(7)
        dense = rng.normal(0, 1, size=(500, 2))
        sparse = rng.uniform(10_000, 20_000, size=(5, 2))
        coords = np.vstack([dense, sparse])
        tree = RTree(list(range(len(coords))), coords)
        assert tree.nearest(15_000, 15_000) >= 500
        assert len(tree.query_radius(0, 0, 5)) > 400
