import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import LocalProjection, Point, haversine_m

BEIJING = Point(116.40, 39.90)


class TestLocalProjection:
    def test_origin_maps_to_zero(self):
        proj = LocalProjection(BEIJING)
        x, y = proj.to_xy(BEIJING.lng, BEIJING.lat)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(0.0)

    def test_roundtrip_scalar(self):
        proj = LocalProjection(BEIJING)
        lng, lat = proj.to_lnglat(*proj.to_xy(116.45, 39.95))
        assert lng == pytest.approx(116.45, abs=1e-12)
        assert lat == pytest.approx(39.95, abs=1e-12)

    def test_roundtrip_arrays(self):
        proj = LocalProjection(BEIJING)
        rng = np.random.default_rng(3)
        lng = BEIJING.lng + rng.uniform(-0.05, 0.05, 100)
        lat = BEIJING.lat + rng.uniform(-0.05, 0.05, 100)
        x, y = proj.to_xy(lng, lat)
        lng2, lat2 = proj.to_lnglat(x, y)
        np.testing.assert_allclose(lng2, lng, atol=1e-12)
        np.testing.assert_allclose(lat2, lat, atol=1e-12)

    def test_agrees_with_haversine_at_city_scale(self):
        proj = LocalProjection(BEIJING)
        other = Point(116.44, 39.93)
        x, y = proj.to_xy(other.lng, other.lat)
        planar = float(np.hypot(x, y))
        spherical = haversine_m(BEIJING.lng, BEIJING.lat, other.lng, other.lat)
        # City scale: equirectangular should agree within 0.1%.
        assert planar == pytest.approx(spherical, rel=1e-3)

    def test_north_is_positive_y(self):
        proj = LocalProjection(BEIJING)
        _, y = proj.to_xy(BEIJING.lng, BEIJING.lat + 0.01)
        assert y > 0

    def test_east_is_positive_x(self):
        proj = LocalProjection(BEIJING)
        x, _ = proj.to_xy(BEIJING.lng + 0.01, BEIJING.lat)
        assert x > 0

    @given(
        st.floats(min_value=-0.05, max_value=0.05),
        st.floats(min_value=-0.05, max_value=0.05),
    )
    def test_roundtrip_property(self, dlng, dlat):
        proj = LocalProjection(BEIJING)
        lng, lat = BEIJING.lng + dlng, BEIJING.lat + dlat
        lng2, lat2 = proj.to_lnglat(*proj.to_xy(lng, lat))
        assert lng2 == pytest.approx(lng, abs=1e-9)
        assert lat2 == pytest.approx(lat, abs=1e-9)

    def test_project_point_helpers(self):
        proj = LocalProjection(BEIJING)
        p = Point(116.41, 39.91)
        x, y = proj.project_point(p)
        back = proj.unproject_point(x, y)
        assert back.lng == pytest.approx(p.lng, abs=1e-12)
        assert back.lat == pytest.approx(p.lat, abs=1e-12)
