import pytest
from hypothesis import given, strategies as st

from repro.geo import geohash_bbox, geohash_decode, geohash_encode, geohash_neighbors

lng_st = st.floats(min_value=-179.9, max_value=179.9, allow_nan=False)
lat_st = st.floats(min_value=-89.9, max_value=89.9, allow_nan=False)


class TestGeohashEncode:
    def test_known_value(self):
        # Reference value for a canonical coordinate (57.64911, 10.40744).
        assert geohash_encode(10.40744, 57.64911, precision=11) == "u4pruydqqvj"

    def test_precision_prefix_consistency(self):
        full = geohash_encode(116.404, 39.915, precision=10)
        for p in range(1, 10):
            assert geohash_encode(116.404, 39.915, precision=p) == full[:p]

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            geohash_encode(0.0, 0.0, precision=0)


class TestGeohashDecode:
    @given(lng_st, lat_st)
    def test_roundtrip_within_cell(self, lng, lat):
        gh = geohash_encode(lng, lat, precision=8)
        box = geohash_bbox(gh)
        assert box.min_lng <= lng <= box.max_lng
        assert box.min_lat <= lat <= box.max_lat

    def test_decode_is_cell_center(self):
        gh = geohash_encode(116.404, 39.915, precision=8)
        center = geohash_decode(gh)
        box = geohash_bbox(gh)
        assert center.lng == pytest.approx((box.min_lng + box.max_lng) / 2)
        assert center.lat == pytest.approx((box.min_lat + box.max_lat) / 2)

    def test_geohash8_cell_size(self):
        # GeoHash-8 cells are ~38m x 19m (paper Section V-B).
        from repro.geo import haversine_m

        box = geohash_bbox(geohash_encode(116.404, 39.915, precision=8))
        width = haversine_m(box.min_lng, box.center.lat, box.max_lng, box.center.lat)
        height = haversine_m(box.center.lng, box.min_lat, box.center.lng, box.max_lat)
        assert 25 < width < 40
        assert 15 < height < 22

    def test_invalid_characters(self):
        with pytest.raises(ValueError):
            geohash_bbox("abcai")  # 'a' and 'i' are not base32 geohash chars
        with pytest.raises(ValueError):
            geohash_bbox("")


class TestGeohashNeighbors:
    def test_eight_neighbors_inland(self):
        gh = geohash_encode(116.404, 39.915, precision=8)
        neighbors = geohash_neighbors(gh)
        assert len(neighbors) == 8
        assert gh not in neighbors
        assert len(set(neighbors)) == 8

    def test_neighbors_share_prefix_usually(self):
        gh = geohash_encode(116.404, 39.915, precision=6)
        for n in geohash_neighbors(gh):
            assert len(n) == 6
