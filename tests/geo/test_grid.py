import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import GridIndex


class TestGridIndexBasics:
    def test_insert_and_len(self):
        g = GridIndex(10.0)
        g.insert("a", 0.0, 0.0)
        g.insert("b", 5.0, 5.0)
        assert len(g) == 2
        assert "a" in g and "b" in g

    def test_reinsert_moves(self):
        g = GridIndex(10.0)
        g.insert("a", 0.0, 0.0)
        g.insert("a", 100.0, 100.0)
        assert len(g) == 1
        assert g.position("a") == (100.0, 100.0)
        assert g.query_radius(0.0, 0.0, 1.0) == []

    def test_remove(self):
        g = GridIndex(10.0)
        g.insert("a", 0.0, 0.0)
        g.remove("a")
        assert len(g) == 0
        with pytest.raises(KeyError):
            g.remove("a")

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)


class TestQueryRadius:
    def test_exact_boundary_inclusive(self):
        g = GridIndex(10.0)
        g.insert("a", 10.0, 0.0)
        assert g.query_radius(0.0, 0.0, 10.0) == ["a"]
        assert g.query_radius(0.0, 0.0, 9.999) == []

    def test_negative_radius_rejected(self):
        g = GridIndex(10.0)
        with pytest.raises(ValueError):
            g.query_radius(0.0, 0.0, -1.0)

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(-200, 200, size=(300, 2))
        g = GridIndex(25.0)
        for i, (x, y) in enumerate(pts):
            g.insert(i, float(x), float(y))
        for qx, qy, r in [(0, 0, 50), (100, -100, 80), (-180, 180, 10)]:
            expect = {
                i
                for i, (x, y) in enumerate(pts)
                if (x - qx) ** 2 + (y - qy) ** 2 <= r * r
            }
            assert set(g.query_radius(qx, qy, r)) == expect

    def test_negative_coordinates(self):
        g = GridIndex(10.0)
        g.insert("a", -15.0, -15.0)
        assert g.query_radius(-14.0, -14.0, 5.0) == ["a"]


class TestNearest:
    def test_empty(self):
        assert GridIndex(10.0).nearest(0.0, 0.0) is None

    def test_single(self):
        g = GridIndex(10.0)
        g.insert("a", 500.0, 500.0)
        assert g.nearest(0.0, 0.0) == "a"

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(-500, 500, size=(200, 2))
        g = GridIndex(40.0)
        for i, (x, y) in enumerate(pts):
            g.insert(i, float(x), float(y))
        for qx, qy in rng.uniform(-600, 600, size=(20, 2)):
            d2 = ((pts - [qx, qy]) ** 2).sum(axis=1)
            assert g.nearest(float(qx), float(qy)) == int(d2.argmin())

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-1000, max_value=1000),
        st.floats(min_value=-1000, max_value=1000),
    ), min_size=1, max_size=40))
    def test_nearest_property(self, coords):
        g = GridIndex(33.0)
        for i, (x, y) in enumerate(coords):
            g.insert(i, x, y)
        winner = g.nearest(3.0, 4.0)
        best = min(
            range(len(coords)),
            key=lambda i: (g.position(i)[0] - 3.0) ** 2 + (g.position(i)[1] - 4.0) ** 2,
        )
        wx, wy = g.position(winner)
        bx, by = g.position(best)
        assert (wx - 3.0) ** 2 + (wy - 4.0) ** 2 == pytest.approx(
            (bx - 3.0) ** 2 + (by - 4.0) ** 2
        )

    def test_to_arrays(self):
        g = GridIndex(10.0)
        g.insert("a", 1.0, 2.0)
        g.insert("b", 3.0, 4.0)
        ids, coords = g.to_arrays()
        assert set(ids) == {"a", "b"}
        assert coords.shape == (2, 2)
