import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import EARTH_RADIUS_M, euclidean_m, haversine_m, haversine_m_vec

lng_st = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
lat_st = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_one_degree_latitude(self):
        # 1 degree of latitude is ~111.2 km everywhere.
        d = haversine_m(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_M / 180.0, rel=1e-6)

    def test_one_degree_longitude_at_60n(self):
        # At 60N a degree of longitude is half the equatorial value.
        d_eq = haversine_m(0.0, 0.0, 1.0, 0.0)
        d_60 = haversine_m(0.0, 60.0, 1.0, 60.0)
        assert d_60 == pytest.approx(d_eq / 2.0, rel=1e-3)

    def test_antipodal(self):
        d = haversine_m(0.0, 0.0, 180.0, 0.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_M, rel=1e-9)

    @given(lng_st, lat_st, lng_st, lat_st)
    def test_symmetry_property(self, lng1, lat1, lng2, lat2):
        assert haversine_m(lng1, lat1, lng2, lat2) == pytest.approx(
            haversine_m(lng2, lat2, lng1, lat1), abs=1e-6
        )

    @given(lng_st, lat_st, lng_st, lat_st)
    def test_non_negative_and_bounded(self, lng1, lat1, lng2, lat2):
        d = haversine_m(lng1, lat1, lng2, lat2)
        assert 0.0 <= d <= np.pi * EARTH_RADIUS_M + 1.0


class TestHaversineVec:
    def test_matches_scalar(self):
        rng = np.random.default_rng(7)
        lng1, lng2 = rng.uniform(-180, 180, (2, 50))
        lat1, lat2 = rng.uniform(-89, 89, (2, 50))
        vec = haversine_m_vec(lng1, lat1, lng2, lat2)
        for i in range(50):
            assert vec[i] == pytest.approx(
                haversine_m(lng1[i], lat1[i], lng2[i], lat2[i]), rel=1e-12, abs=1e-9
            )

    def test_broadcasting(self):
        lngs = np.array([0.0, 1.0, 2.0])
        out = haversine_m_vec(lngs, 0.0, 0.0, 0.0)
        assert out.shape == (3,)
        assert out[0] == 0.0
        assert out[1] < out[2]


class TestEuclidean:
    def test_pythagoras(self):
        assert euclidean_m(0.0, 0.0, 3.0, 4.0) == 5.0

    def test_zero(self):
        assert euclidean_m(1.0, 1.0, 1.0, 1.0) == 0.0
