import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import convex_hull, point_in_polygon, polygon_area


class TestConvexHull:
    def test_square_with_interior_points(self):
        pts = np.array([[0, 0], [2, 0], [2, 2], [0, 2], [1, 1], [0.5, 1.5]])
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert {tuple(v) for v in hull} == {(0, 0), (2, 0), (2, 2), (0, 2)}

    def test_ccw_orientation(self):
        pts = np.random.default_rng(0).uniform(0, 10, size=(30, 2))
        hull = convex_hull(pts)
        assert polygon_area(hull) > 0  # positive shoelace = CCW

    def test_collinear(self):
        pts = np.array([[0, 0], [1, 1], [2, 2], [3, 3]])
        hull = convex_hull(pts)
        assert len(hull) == 2

    def test_degenerate_inputs(self):
        assert len(convex_hull(np.array([[1.0, 1.0]]))) == 1
        assert len(convex_hull(np.array([[1.0, 1.0], [1.0, 1.0]]))) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    ), min_size=3, max_size=40))
    def test_all_points_inside_hull_property(self, pts):
        coords = np.array(pts)
        hull = convex_hull(coords)
        if len(hull) < 3:
            return  # collinear input
        for x, y in coords:
            assert point_in_polygon(float(x), float(y), hull)


class TestPolygonArea:
    def test_unit_square(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]])
        assert polygon_area(square) == pytest.approx(1.0)

    def test_clockwise_negative(self):
        square = np.array([[0, 0], [0, 1], [1, 1], [1, 0]])
        assert polygon_area(square) == pytest.approx(-1.0)

    def test_triangle(self):
        tri = np.array([[0, 0], [4, 0], [0, 3]])
        assert polygon_area(tri) == pytest.approx(6.0)

    def test_degenerate(self):
        assert polygon_area(np.array([[0, 0], [1, 1]])) == 0.0


class TestPointInPolygon:
    SQUARE = np.array([[0, 0], [10, 0], [10, 10], [0, 10]])

    def test_inside(self):
        assert point_in_polygon(5, 5, self.SQUARE)

    def test_outside(self):
        assert not point_in_polygon(15, 5, self.SQUARE)
        assert not point_in_polygon(5, -1, self.SQUARE)

    def test_on_edge_and_vertex(self):
        assert point_in_polygon(5, 0, self.SQUARE)
        assert point_in_polygon(0, 0, self.SQUARE)

    def test_concave_polygon(self):
        # A "C" shape: the notch is outside.
        c_shape = np.array([[0, 0], [10, 0], [10, 3], [3, 3], [3, 7], [10, 7], [10, 10], [0, 10]])
        assert point_in_polygon(1, 5, c_shape)
        assert not point_in_polygon(7, 5, c_shape)

    def test_too_few_vertices(self):
        assert not point_in_polygon(0, 0, np.array([[0, 0], [1, 1]]))
