import pytest

from repro.geo import BBox, Point


class TestBBox:
    def test_from_points(self):
        box = BBox.from_points([Point(1.0, 2.0), Point(3.0, 0.0), Point(2.0, 5.0)])
        assert box == BBox(1.0, 0.0, 3.0, 5.0)

    def test_from_points_empty(self):
        with pytest.raises(ValueError):
            BBox.from_points([])

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BBox(2.0, 0.0, 1.0, 1.0)

    def test_zero_area_allowed(self):
        box = BBox(1.0, 1.0, 1.0, 1.0)
        assert box.contains(Point(1.0, 1.0))

    def test_center(self):
        assert BBox(0.0, 0.0, 2.0, 4.0).center == Point(1.0, 2.0)

    def test_contains_border(self):
        box = BBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(Point(0.0, 0.0))
        assert box.contains(Point(1.0, 1.0))
        assert not box.contains(Point(1.0001, 0.5))

    def test_intersects(self):
        a = BBox(0.0, 0.0, 2.0, 2.0)
        assert a.intersects(BBox(1.0, 1.0, 3.0, 3.0))
        assert a.intersects(BBox(2.0, 2.0, 3.0, 3.0))  # corner touch
        assert not a.intersects(BBox(2.1, 0.0, 3.0, 1.0))

    def test_expanded(self):
        box = BBox(0.0, 0.0, 1.0, 1.0).expanded(0.5, 0.25)
        assert box == BBox(-0.5, -0.25, 1.5, 1.25)
