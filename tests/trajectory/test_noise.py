import pytest

from repro.trajectory import NoiseFilterConfig, TrajPoint, Trajectory, filter_noise


def traj_from(points):
    return Trajectory("c", [TrajPoint(*p) for p in points])


class TestNoiseFilter:
    def test_clean_trajectory_untouched(self):
        # ~11 m between fixes at 10 s apart -> ~1.1 m/s, well under limit.
        tr = traj_from([(116.4 + i * 1e-4, 39.9, i * 10.0) for i in range(10)])
        out = filter_noise(tr)
        assert out.points == tr.points

    def test_single_jump_removed(self):
        pts = [(116.4, 39.9, 0.0), (116.9, 39.9, 10.0), (116.4001, 39.9, 20.0)]
        out = filter_noise(traj_from(pts))
        assert len(out) == 2
        assert out[1].lng == 116.4001

    def test_speed_measured_from_last_kept(self):
        # After dropping the jump, the next point must be checked against the
        # point before the jump, not the jump itself.
        pts = [(116.4, 39.9, 0.0), (117.4, 39.9, 10.0), (117.4, 39.9001, 20.0)]
        out = filter_noise(traj_from(pts))
        assert len(out) == 1  # both far points dropped relative to origin

    def test_short_trajectories_passthrough(self):
        assert len(filter_noise(traj_from([(0.0, 0.0, 0.0)]))) == 1
        assert len(filter_noise(Trajectory("c", []))) == 0

    def test_custom_threshold(self):
        # ~157 m in 10 s = 15.7 m/s.
        pts = [(116.4, 39.9, 0.0), (116.4, 39.90141, 10.0)]
        strict = filter_noise(traj_from(pts), NoiseFilterConfig(max_speed_mps=10.0))
        loose = filter_noise(traj_from(pts), NoiseFilterConfig(max_speed_mps=20.0))
        assert len(strict) == 1
        assert len(loose) == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NoiseFilterConfig(max_speed_mps=0.0)

    def test_result_is_new_object(self):
        tr = traj_from([(116.4, 39.9, 0.0), (116.4001, 39.9, 10.0)])
        out = filter_noise(tr)
        assert out is not tr
        assert out.points is not tr.points
