import numpy as np
import pytest

from repro.geo import Point
from repro.trajectory import SegmentationConfig, TrajPoint, Trajectory, segment_trips
from tests.core.helpers import PROJ


def stream(segments, gap_s=3600.0, dt=10.0, start=0.0):
    """Build a stream of fix runs with large gaps between them.

    ``segments``: list of (duration_s, x, y) constant-position runs.
    """
    points = []
    t = start
    for duration, x, y in segments:
        lng, lat = PROJ.to_lnglat(x, y)
        n = int(duration / dt)
        for i in range(n):
            # Slight eastward drift keeps timestamps strictly increasing
            # and positions non-degenerate.
            lng_i, lat_i = PROJ.to_lnglat(x + i * 0.5, y)
            points.append(TrajPoint(float(lng_i), float(lat_i), t))
            t += dt
        t += gap_s
    return Trajectory("c1", points)


class TestSegmentTrips:
    def test_gap_splits(self):
        traj = stream([(600, 0, 0), (600, 1000, 0)], gap_s=3600.0)
        segments = segment_trips(traj, SegmentationConfig(max_gap_s=1800.0))
        assert len(segments) == 2
        assert all(len(s) >= 10 for s in segments)

    def test_no_gap_no_split(self):
        traj = stream([(1200, 0, 0)], gap_s=0.0)
        segments = segment_trips(traj, SegmentationConfig(max_gap_s=1800.0))
        assert len(segments) == 1
        assert len(segments[0]) == len(traj)

    def test_short_segments_dropped(self):
        traj = stream([(600, 0, 0), (50, 1000, 0)], gap_s=3600.0)
        segments = segment_trips(traj, SegmentationConfig(max_gap_s=1800.0))
        assert len(segments) == 1

    def test_station_dwell_splits(self):
        station_xy = (5_000.0, 0.0)
        lng, lat = PROJ.to_lnglat(*station_xy)
        station = Point(float(lng), float(lat))
        # trip1 (20 min), 15 min at the station, trip2 (20 min) — no gaps.
        pieces = []
        t = 0.0
        for duration, x, y in [(1200, 0, 0), (900, *station_xy), (1200, 0, 500)]:
            n = int(duration / 10.0)
            for i in range(n):
                plng, plat = PROJ.to_lnglat(x + (i % 3), y)
                pieces.append(TrajPoint(float(plng), float(plat), t))
                t += 10.0
        traj = Trajectory("c1", pieces)
        config = SegmentationConfig(
            max_gap_s=1800.0,
            station=station,
            station_radius_m=80.0,
            min_station_dwell_s=600.0,
        )
        segments = segment_trips(traj, config)
        assert len(segments) == 2

    def test_empty(self):
        assert segment_trips(Trajectory("c", [])) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SegmentationConfig(max_gap_s=0.0)
        with pytest.raises(ValueError):
            SegmentationConfig(min_trip_points=1)

    def test_segments_preserve_chronology_and_courier(self):
        traj = stream([(600, 0, 0), (600, 500, 0), (600, 1000, 0)])
        for segment in segment_trips(traj):
            assert segment.courier_id == "c1"
            times = [p.t for p in segment.points]
            assert times == sorted(times)
