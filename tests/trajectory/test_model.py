import numpy as np
import pytest

from repro.geo import Point
from repro.trajectory import Address, DeliveryTrip, StayPoint, TrajPoint, Trajectory, Waybill


def make_traj(courier="c1", n=5, t0=0.0, dt=10.0):
    pts = [TrajPoint(116.4 + i * 1e-4, 39.9, t0 + i * dt) for i in range(n)]
    return Trajectory(courier, pts)


class TestTrajectory:
    def test_len_and_iter(self):
        tr = make_traj(n=4)
        assert len(tr) == 4
        assert [p.t for p in tr] == [0.0, 10.0, 20.0, 30.0]

    def test_chronological_enforced(self):
        pts = [TrajPoint(0.0, 0.0, 10.0), TrajPoint(0.0, 0.0, 5.0)]
        with pytest.raises(ValueError):
            Trajectory("c", pts)

    def test_equal_timestamps_rejected(self):
        pts = [TrajPoint(0.0, 0.0, 10.0), TrajPoint(0.1, 0.0, 10.0)]
        with pytest.raises(ValueError):
            Trajectory("c", pts)

    def test_duration(self):
        assert make_traj(n=5, dt=10.0).duration_s == 40.0
        assert make_traj(n=1).duration_s == 0.0
        assert Trajectory("c", []).duration_s == 0.0

    def test_slice_time(self):
        tr = make_traj(n=5, dt=10.0)
        sub = tr.slice_time(10.0, 30.0)
        assert [p.t for p in sub] == [10.0, 20.0, 30.0]
        assert sub.courier_id == tr.courier_id

    def test_to_from_arrays_roundtrip(self):
        tr = make_traj(n=6)
        lng, lat, t = tr.to_arrays()
        tr2 = Trajectory.from_arrays("c1", lng, lat, t)
        assert tr2.points == tr.points

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError):
            Trajectory.from_arrays("c", [0.0], [0.0, 1.0], [0.0])

    def test_empty_to_arrays(self):
        lng, lat, t = Trajectory("c", []).to_arrays()
        assert lng.shape == (0,) and lat.shape == (0,) and t.shape == (0,)

    def test_traj_point_point_property(self):
        assert TrajPoint(1.0, 2.0, 0.0).point == Point(1.0, 2.0)


class TestStayPoint:
    def test_time_is_midpoint(self):
        sp = StayPoint(116.4, 39.9, t_arrive=100.0, t_leave=200.0, courier_id="c")
        assert sp.t == 150.0
        assert sp.duration_s == 100.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            StayPoint(0.0, 0.0, t_arrive=10.0, t_leave=5.0, courier_id="c")

    def test_point_property(self):
        sp = StayPoint(116.4, 39.9, 0.0, 1.0, "c")
        assert sp.point == Point(116.4, 39.9)


class TestWaybill:
    def test_valid(self):
        w = Waybill("w1", "a1", t_received=0.0, t_delivered=100.0)
        assert w.address_id == "a1"

    def test_delivered_before_received(self):
        with pytest.raises(ValueError):
            Waybill("w1", "a1", t_received=100.0, t_delivered=50.0)


class TestAddress:
    def test_valid(self):
        a = Address("a1", "No.5 Sanyili", "b1", Point(116.4, 39.9), poi_category=3)
        assert a.building_id == "b1"

    def test_poi_category_range(self):
        with pytest.raises(ValueError):
            Address("a1", "x", "b1", Point(0.0, 0.0), poi_category=21)


class TestDeliveryTrip:
    def test_address_ids(self):
        tr = make_traj()
        trip = DeliveryTrip(
            "t1", "c1", 0.0, 100.0, tr,
            waybills=[
                Waybill("w1", "a1", 0.0, 50.0),
                Waybill("w2", "a1", 0.0, 60.0),
                Waybill("w3", "a2", 0.0, 70.0),
            ],
        )
        assert trip.address_ids == {"a1", "a2"}
        assert len(trip.waybills_for("a1")) == 2

    def test_time_order_enforced(self):
        with pytest.raises(ValueError):
            DeliveryTrip("t1", "c1", 100.0, 0.0, make_traj())

    def test_courier_mismatch(self):
        with pytest.raises(ValueError):
            DeliveryTrip("t1", "other", 0.0, 100.0, make_traj(courier="c1"))
