import numpy as np
import pytest

from repro.trajectory import (
    Trajectory,
    moving_fraction,
    position_at_times,
    resample,
    speeds_mps,
)
from tests.trajectory.test_staypoint import traj_from_xy


class TestPositionAtTimes:
    def test_midpoint_interpolation(self):
        tr = traj_from_xy([(0, 0, 0), (100, 0, 10)])
        coords = position_at_times(tr, np.array([5.0]))
        # Halfway in time -> halfway in space (x=50 m).
        from repro.geo import LocalProjection, Point
        lng0, lat0 = tr[0].lng, tr[0].lat
        proj = LocalProjection(Point(lng0, lat0))
        x, _ = proj.to_xy(coords[0, 0], coords[0, 1])
        assert x == pytest.approx(50.0, abs=1.0)

    def test_clamps_beyond_ends(self):
        tr = traj_from_xy([(0, 0, 0), (100, 0, 10)])
        before = position_at_times(tr, np.array([-100.0]))
        after = position_at_times(tr, np.array([1e6]))
        np.testing.assert_allclose(before[0], [tr[0].lng, tr[0].lat])
        np.testing.assert_allclose(after[0], [tr[-1].lng, tr[-1].lat])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            position_at_times(Trajectory("c", []), np.array([0.0]))


class TestResample:
    def test_uniform_spacing(self):
        tr = traj_from_xy([(0, 0, 0), (50, 0, 7), (120, 0, 23)])
        out = resample(tr, 5.0)
        _, _, t = out.to_arrays()
        np.testing.assert_allclose(np.diff(t), 5.0)
        assert t[0] == 0.0

    def test_preserves_endpoints_location(self):
        tr = traj_from_xy([(0, 0, 0), (100, 40, 20)])
        out = resample(tr, 4.0)
        assert out[0].lng == tr[0].lng
        assert out[-1].t <= tr[-1].t

    def test_short_input_passthrough(self):
        tr = traj_from_xy([(0, 0, 0)])
        assert resample(tr, 5.0).points == tr.points

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            resample(traj_from_xy([(0, 0, 0)]), 0.0)


class TestSpeeds:
    def test_constant_speed(self):
        tr = traj_from_xy([(0, 0, 0), (30, 0, 10), (60, 0, 20)])
        np.testing.assert_allclose(speeds_mps(tr), 3.0, rtol=1e-2)

    def test_empty_and_single(self):
        assert speeds_mps(Trajectory("c", [])).shape == (0,)
        assert speeds_mps(traj_from_xy([(0, 0, 0)])).shape == (0,)

    def test_moving_fraction(self):
        # 10 s moving at 3 m/s, then 30 s parked.
        tr = traj_from_xy([(0, 0, 0), (30, 0, 10), (30, 0, 40)])
        assert moving_fraction(tr, threshold_mps=0.5) == pytest.approx(0.25)

    def test_moving_fraction_empty(self):
        assert moving_fraction(Trajectory("c", [])) == 0.0
