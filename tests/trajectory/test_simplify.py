import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trajectory import Trajectory, douglas_peucker, path_length_m
from tests.trajectory.test_staypoint import traj_from_xy


class TestPathLength:
    def test_straight_line(self):
        tr = traj_from_xy([(0, 0, 0), (100, 0, 10), (200, 0, 20)])
        assert path_length_m(tr) == pytest.approx(200.0, rel=1e-3)

    def test_short_trajectories(self):
        assert path_length_m(Trajectory("c", [])) == 0.0
        assert path_length_m(traj_from_xy([(0, 0, 0)])) == 0.0

    def test_zigzag_longer_than_chord(self):
        tr = traj_from_xy([(0, 0, 0), (50, 50, 10), (100, 0, 20)])
        assert path_length_m(tr) == pytest.approx(2 * np.hypot(50, 50), rel=1e-3)


class TestDouglasPeucker:
    def test_collinear_collapses_to_endpoints(self):
        tr = traj_from_xy([(i * 10.0, 0, i * 5.0) for i in range(20)])
        out = douglas_peucker(tr, tolerance_m=1.0)
        assert len(out) == 2
        assert out[0] == tr[0] and out[-1] == tr[-1]

    def test_corner_preserved(self):
        tr = traj_from_xy([(0, 0, 0), (100, 0, 10), (100, 100, 20)])
        out = douglas_peucker(tr, tolerance_m=5.0)
        assert len(out) == 3

    def test_small_wiggles_removed_large_kept(self):
        pts = [(0, 0, 0), (50, 2, 5), (100, 0, 10), (150, 80, 15), (200, 0, 20)]
        out = douglas_peucker(traj_from_xy(pts), tolerance_m=10.0)
        xs = {round(p.t) for p in out}
        assert 15 in xs      # the 80 m excursion survives
        assert 5 not in xs   # the 2 m wiggle is dropped

    def test_short_input_passthrough(self):
        tr = traj_from_xy([(0, 0, 0), (10, 0, 5)])
        out = douglas_peucker(tr, tolerance_m=1.0)
        assert out.points == tr.points

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            douglas_peucker(traj_from_xy([(0, 0, 0)]), tolerance_m=0.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100), st.sampled_from([2.0, 10.0, 50.0]))
    def test_simplified_stays_within_tolerance_property(self, seed, tol):
        """Every dropped fix lies within ``tol`` of the kept polyline."""
        rng = np.random.default_rng(seed)
        pts = []
        x = y = t = 0.0
        for _ in range(40):
            x += float(rng.uniform(-50, 80))
            y += float(rng.uniform(-50, 80))
            t += 10.0
            pts.append((x, y, t))
        tr = traj_from_xy(pts)
        out = douglas_peucker(tr, tolerance_m=tol)
        kept_times = [p.t for p in out]
        assert kept_times[0] == tr[0].t and kept_times[-1] == tr[-1].t
        # Endpoints of each kept segment bracket the dropped points; check
        # distance of each dropped point to its bracketing chord.
        from repro.geo import LocalProjection, Point

        lng, lat, times = tr.to_arrays()
        proj = LocalProjection(Point(float(lng[0]), float(lat[0])))
        px, py = proj.to_xy(lng, lat)
        coords = np.column_stack([np.atleast_1d(px), np.atleast_1d(py)])
        kept_idx = [i for i, p in enumerate(tr.points) if p.t in set(kept_times)]
        for a, b in zip(kept_idx, kept_idx[1:]):
            chord = coords[b] - coords[a]
            clen = np.hypot(*chord)
            for i in range(a + 1, b):
                seg = coords[i] - coords[a]
                if clen < 1e-12:
                    d = np.hypot(*seg)
                else:
                    d = abs(seg[0] * chord[1] - seg[1] * chord[0]) / clen
                assert d <= tol + 1e-6
