import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import LocalProjection, Point, haversine_m
from repro.trajectory import (
    StayPointConfig,
    TrajPoint,
    Trajectory,
    detect_stay_points,
)

ORIGIN = Point(116.40, 39.90)
PROJ = LocalProjection(ORIGIN)


def traj_from_xy(xyts, courier="c1"):
    """Build a trajectory from (x_m, y_m, t) tuples around ORIGIN."""
    pts = []
    for x, y, t in xyts:
        lng, lat = PROJ.to_lnglat(x, y)
        pts.append(TrajPoint(float(lng), float(lat), float(t)))
    return Trajectory(courier, pts)


class TestDetectStayPoints:
    def test_simple_stay(self):
        # 60 s dwell within 5 m, then movement away.
        xyts = [(0, 0, 0), (2, 0, 20), (0, 2, 40), (1, 1, 60), (200, 0, 80), (400, 0, 100)]
        stays = detect_stay_points(traj_from_xy(xyts))
        assert len(stays) == 1
        sp = stays[0]
        assert sp.t_arrive == 0.0
        assert sp.t_leave == 60.0
        assert sp.n_points == 4
        assert sp.courier_id == "c1"
        # Centroid near (0.75, 0.75) m from origin.
        d = haversine_m(sp.lng, sp.lat, ORIGIN.lng, ORIGIN.lat)
        assert d < 2.0

    def test_too_short_dwell_ignored(self):
        xyts = [(0, 0, 0), (1, 0, 10), (200, 0, 20), (400, 0, 30)]
        assert detect_stay_points(traj_from_xy(xyts)) == []

    def test_dwell_exactly_at_threshold(self):
        xyts = [(0, 0, 0), (1, 0, 30), (200, 0, 40)]
        stays = detect_stay_points(traj_from_xy(xyts), StayPointConfig(t_min_s=30.0))
        assert len(stays) == 1

    def test_two_separate_stays(self):
        xyts = [
            (0, 0, 0), (1, 0, 40),          # stay 1
            (100, 0, 60), (200, 0, 80),     # moving
            (300, 0, 100), (301, 0, 150),   # stay 2
            (500, 0, 170),
        ]
        stays = detect_stay_points(traj_from_xy(xyts))
        assert len(stays) == 2
        assert stays[0].t_leave <= stays[1].t_arrive

    def test_stay_at_trajectory_end(self):
        xyts = [(0, 0, 0), (200, 0, 20), (200, 1, 60), (201, 0, 100)]
        stays = detect_stay_points(traj_from_xy(xyts))
        assert len(stays) == 1
        assert stays[0].t_arrive == 20.0
        assert stays[0].t_leave == 100.0

    def test_empty_and_single_point(self):
        assert detect_stay_points(Trajectory("c", [])) == []
        assert detect_stay_points(traj_from_xy([(0, 0, 0)])) == []

    def test_distance_threshold_respected(self):
        # Points 30 m apart never form a stay with d_max=20, but do with 40.
        xyts = [(0, 0, 0), (30, 0, 50), (300, 0, 70)]
        assert detect_stay_points(traj_from_xy(xyts), StayPointConfig(d_max_m=20.0)) == []
        stays = detect_stay_points(traj_from_xy(xyts), StayPointConfig(d_max_m=40.0))
        assert len(stays) == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            StayPointConfig(d_max_m=0.0)
        with pytest.raises(ValueError):
            StayPointConfig(t_min_s=-1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_stays_are_ordered_and_disjoint_property(self, seed):
        rng = np.random.default_rng(seed)
        # Random walk with occasional dwells.
        xyts, t, x, y = [], 0.0, 0.0, 0.0
        for _ in range(60):
            if rng.random() < 0.3:  # dwell burst
                for _ in range(rng.integers(2, 6)):
                    xyts.append((x + rng.normal(0, 3), y + rng.normal(0, 3), t))
                    t += float(rng.uniform(8, 20))
            x += float(rng.uniform(-80, 80))
            y += float(rng.uniform(-80, 80))
            xyts.append((x, y, t))
            t += float(rng.uniform(8, 20))
        stays = detect_stay_points(traj_from_xy(xyts))
        for a, b in zip(stays, stays[1:]):
            assert a.t_leave <= b.t_arrive
        for sp in stays:
            assert sp.duration_s >= 30.0
            assert sp.n_points >= 2
