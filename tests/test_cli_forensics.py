"""CLI forensics surface: `repro explain`, `repro blackbox`, exemplars."""

import json

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceRing
from repro.obs.recorder import FlightRecorder


@pytest.fixture()
def obs_dir(tmp_path):
    ring = ProvenanceRing(capacity=32, origin="w0",
                          registry=MetricsRegistry())
    ring.mint("a1", "ok", lng=116.4, lat=39.9, source="model",
              cache_state="miss", confidence=0.8, snapshot_version=2,
              trace_id="abc123",
              candidates=[{"candidate_id": "c1", "score": 0.9, "rank": 1,
                           "weight": 2.0, "lng": 116.4, "lat": 39.9}])
    ring.mint("a2", "unknown_address", error="no such id")
    ring.write_jsonl(tmp_path / "provenance-worker-0.jsonl")
    return tmp_path


class TestExplain:
    def test_renders_matched_records(self, obs_dir, capsys):
        rc = main(["explain", "a1", "--obs-dir", str(obs_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "a1" in out and "model" in out and "c1" in out

    def test_json_mode_is_machine_readable(self, obs_dir, capsys):
        rc = main(["explain", "a1", "--obs-dir", str(obs_dir), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["n_matched"] == 1
        assert doc["records"][0]["address_id"] == "a1"

    def test_missing_address_exits_nonzero(self, obs_dir, capsys):
        rc = main(["explain", "nope", "--obs-dir", str(obs_dir)])
        assert rc == 1
        assert "no provenance records" in capsys.readouterr().err

    def test_empty_dir_fails_clearly(self, tmp_path, capsys):
        rc = main(["explain", "a1", "--obs-dir", str(tmp_path)])
        assert rc == 2
        assert "no provenance files" in capsys.readouterr().err


class TestBlackboxCommand:
    def test_renders_a_dump(self, tmp_path, capsys):
        recorder = FlightRecorder(capacity=8, dump_dir=tmp_path,
                                  registry=MetricsRegistry())
        path = recorder.trigger("gate_refusal",
                                context={"served_version": 3})
        rc = main(["blackbox", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gate_refusal" in out

    def test_json_mode(self, tmp_path, capsys):
        recorder = FlightRecorder(capacity=8, dump_dir=tmp_path,
                                  registry=MetricsRegistry())
        path = recorder.trigger("worker_crash")
        rc = main(["blackbox", str(path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["trigger"] == "worker_crash"

    def test_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["blackbox", str(tmp_path / "gone.json")])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err


class TestObsExportExemplars:
    def test_prom_export_carries_exemplars(self, tmp_path, capsys):
        from repro.obs.exemplar import Exemplar, set_exemplars_enabled
        from repro.obs.shm import MetricsPlane, SlotSpec

        set_exemplars_enabled(True)
        plane = MetricsPlane.create(
            str(tmp_path / "metrics-w0.shm"),
            [SlotSpec("histogram", "lat_seconds", buckets=(0.1, 1.0),
                      exemplars=True)],
        )
        plane.observe(plane.slot("lat_seconds"), 0.05,
                      exemplar=Exemplar.now(0.05, "tr99", "w0:00000000"))
        plane.close()
        out = tmp_path / "metrics.prom"
        rc = main(["obs-export", "--obs-dir", str(tmp_path),
                   "--out", str(out), "--exemplars"])
        assert rc == 0
        text = out.read_text()
        assert 'trace_id="tr99"' in text
        # Without the flag the same scrape stays plain.
        rc = main(["obs-export", "--obs-dir", str(tmp_path),
                   "--out", str(out)])
        assert rc == 0
        assert "# {" not in out.read_text()
