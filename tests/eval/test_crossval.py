import numpy as np
import pytest

from repro.eval import cross_validate, rotated_splits


class TestRotatedSplits:
    def test_folds_partition_addresses(self, tiny_dataset):
        splits = rotated_splits(tiny_dataset, n_folds=3)
        assert len(splits) == 3
        delivered = set(tiny_dataset.delivered_address_ids)
        all_test = []
        for split in splits:
            assert set(split.train) | set(split.val) | set(split.test) == delivered
            assert not set(split.train) & set(split.test)
            assert not set(split.val) & set(split.test)
            all_test.extend(split.test)
        # Every delivered address is tested exactly once across folds.
        assert sorted(all_test) == sorted(delivered)

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            rotated_splits(tiny_dataset, n_folds=1)


class TestCrossValidate:
    def test_aggregates_over_folds(self, tiny_dataset):
        results = cross_validate(
            tiny_dataset, ["Geocoding", "MaxTC-ILC"], n_folds=3, fast=True
        )
        assert set(results) == {"Geocoding", "MaxTC-ILC"}
        for cv in results.values():
            assert len(cv.fold_results) == 3
            lo, hi = cv.mae_ci
            assert lo <= cv.mae_mean <= hi
            assert 0.0 <= cv.beta50_mean <= 100.0
