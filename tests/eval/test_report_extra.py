"""Additional report-rendering edge cases."""

from repro.eval import EvalResult, histogram_text, metrics_csv, series_table


class TestSeriesTable:
    def test_mixed_types(self):
        text = series_table(
            [("DowBJ", 1, 2.5), ("SubBJ", 3, 4.25)],
            headers=["dataset", "n", "value"],
        )
        assert "DowBJ" in text
        assert "4.25" in text

    def test_title_optional(self):
        untitled = series_table([(1.0,)], headers=["x"])
        titled = series_table([(1.0,)], headers=["x"], title="T")
        assert len(titled.splitlines()) == len(untitled.splitlines()) + 1


class TestHistogramText:
    def test_zero_count_rows_have_no_bar(self):
        text = histogram_text({1: 0, 2: 10})
        line_for_one = next(l for l in text.splitlines() if l.strip().startswith("1"))
        assert "#" not in line_for_one

    def test_sorted_by_key(self):
        text = histogram_text({3: 1, 1: 1, 2: 1})
        keys = [line.split()[0] for line in text.splitlines()]
        assert keys == ["1", "2", "3"]


class TestMetricsCSVOrder:
    def test_respects_order(self):
        results = {
            "A": EvalResult(1.0, 1.0, 1.0, 1),
            "B": EvalResult(2.0, 2.0, 2.0, 1),
        }
        csv = metrics_csv(results, order=["B", "A"])
        rows = [line.split(",")[0] for line in csv.splitlines()[1:]]
        assert rows == ["B", "A"]
