"""Determinism guarantees of the experiment harness."""

import numpy as np

from repro.eval import Workload, run_methods


class TestHarnessDeterminism:
    def test_shared_vs_fresh_artifacts_identical_for_heuristics(self, tiny_workload):
        """Heuristic selectors must not depend on artifact sharing."""
        shared = run_methods(tiny_workload, ["MinDist", "MaxTC-ILC"], fast=True)
        # Run again (artifacts rebuilt from scratch inside run_methods).
        fresh = run_methods(tiny_workload, ["MinDist", "MaxTC-ILC"], fast=True)
        for name in ("MinDist", "MaxTC-ILC"):
            assert shared[name].predictions == fresh[name].predictions

    def test_seeded_neural_methods_reproducible(self, tiny_workload):
        a = run_methods(tiny_workload, ["DLInfMA"], seed=3, fast=True)
        b = run_methods(tiny_workload, ["DLInfMA"], seed=3, fast=True)
        assert a["DLInfMA"].predictions == b["DLInfMA"].predictions

    def test_different_seeds_may_differ_but_stay_sane(self, tiny_workload):
        from repro.eval import evaluate

        runs = run_methods(tiny_workload, ["DLInfMA"], seed=7, fast=True)
        result = evaluate(runs["DLInfMA"].predictions, tiny_workload.ground_truth)
        assert result.mae < 200.0
