"""Every Table II method must run end-to-end on a small dataset.

This is the harness's strongest guarantee: all 22 registry entries fit,
predict every test address, and produce bounded errors — so a refactor in
any substrate cannot silently break a comparison method.
"""

import numpy as np
import pytest

from repro.eval import evaluate, method_registry, run_methods


@pytest.fixture(scope="module")
def all_runs(tiny_workload):
    names = list(method_registry())
    return run_methods(tiny_workload, names, fast=True), names


class TestFullRegistrySmoke:
    def test_all_methods_predict_all_test_addresses(self, all_runs, tiny_workload):
        runs, names = all_runs
        assert set(runs) == set(names)
        for name, run in runs.items():
            missing = set(tiny_workload.test_ids) - set(run.predictions)
            assert not missing, f"{name} skipped {sorted(missing)}"

    def test_all_methods_produce_bounded_errors(self, all_runs, tiny_workload):
        runs, _ = all_runs
        for name, run in runs.items():
            result = evaluate(run.predictions, tiny_workload.ground_truth)
            # The city is ~1 km wide; a working method cannot average
            # beyond it (even MaxTC stays within a few hundred meters).
            assert result.mae < 1_000.0, f"{name} MAE {result.mae}"
            assert np.isfinite(result.p95)

    def test_predictions_inside_city_envelope(self, all_runs, tiny_workload):
        runs, _ = all_runs
        for name, run in runs.items():
            for point in run.predictions.values():
                x, y = tiny_workload.projection.to_xy(point.lng, point.lat)
                assert -3_000 < x < 6_000 and -3_000 < y < 6_000, name

    def test_fit_and_predict_times_recorded(self, all_runs):
        runs, _ = all_runs
        for run in runs.values():
            assert run.fit_seconds >= 0.0
            assert run.predict_seconds >= 0.0
