import numpy as np
import pytest

from repro.eval import (
    bootstrap_ci,
    breakdown_by,
    compare_methods_errors,
    error_cdf,
    paired_permutation_pvalue,
    paired_win_rate,
)
from repro.geo import Point


def pt(dy):
    return Point(116.4, 39.9 + dy)


class TestErrorCDF:
    def test_monotone(self):
        errors = np.array([5.0, 20.0, 60.0, 150.0])
        cdf = error_cdf(errors)
        pcts = [p for _, p in cdf]
        assert pcts == sorted(pcts)
        assert cdf[0] == (10.0, 25.0)
        assert cdf[-1] == (200.0, 100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_cdf(np.array([]))


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        errors = rng.exponential(30.0, size=200)
        lo, hi = bootstrap_ci(errors, seed=1)
        assert lo <= errors.mean() <= hi
        assert hi - lo < 20.0

    def test_degenerate_distribution(self):
        errors = np.full(50, 42.0)
        lo, hi = bootstrap_ci(errors)
        assert lo == hi == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), alpha=1.5)


class TestBreakdownBy:
    def test_groups_split_metrics(self):
        truth = {"a": pt(0), "b": pt(0), "c": pt(0)}
        preds = {"a": pt(0), "b": pt(0.001), "c": pt(0.001)}  # ~111 m err
        groups = {"a": "good", "b": "bad", "c": "bad"}
        out = breakdown_by(preds, truth, groups)
        assert out["good"].mae == pytest.approx(0.0)
        assert out["bad"].mae > 100.0
        assert out["bad"].n == 2

    def test_missing_addresses_skipped(self):
        out = breakdown_by({"a": pt(0)}, {"a": pt(0)}, {})
        assert out == {}


class TestPairedComparison:
    def test_compare_methods_alignment(self):
        truth = {"a": pt(0), "b": pt(0)}
        by_method = {
            "X": {"a": pt(0), "b": pt(0.001), "c": pt(0)},
            "Y": {"a": pt(0.001), "b": pt(0)},
        }
        errors = compare_methods_errors(by_method, truth)
        assert errors["X"].shape == errors["Y"].shape == (2,)

    def test_no_common_addresses(self):
        with pytest.raises(ValueError):
            compare_methods_errors({"X": {"a": pt(0)}, "Y": {"b": pt(0)}}, {"a": pt(0), "b": pt(0)})

    def test_paired_win_rate(self):
        a = np.array([1.0, 1.0, 5.0, 3.0])
        b = np.array([2.0, 2.0, 1.0, 3.0])
        assert paired_win_rate(a, b) == pytest.approx((2 + 0.5) / 4)

    def test_win_rate_validation(self):
        with pytest.raises(ValueError):
            paired_win_rate(np.array([1.0]), np.array([1.0, 2.0]))


class TestPermutationTest:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        a = rng.exponential(10.0, size=100)
        b = a + 20.0  # B uniformly worse
        p = paired_permutation_pvalue(a, b, n_perm=500, seed=1)
        assert p < 0.01

    def test_identical_methods_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.exponential(10.0, size=100)
        b = a + rng.normal(0, 0.5, size=100)  # symmetric noise
        p = paired_permutation_pvalue(a, b, n_perm=500, seed=3)
        assert p > 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_permutation_pvalue(np.array([]), np.array([]))
