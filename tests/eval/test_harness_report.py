import numpy as np
import pytest

from repro.eval import (
    EvalResult,
    SHARED_ARTIFACT_METHODS,
    Workload,
    evaluate,
    histogram_text,
    method_registry,
    metrics_table,
    run_methods,
    series_table,
)


class TestRegistry:
    def test_all_paper_methods_present(self):
        registry = method_registry()
        expected = {
            "Geocoding", "Annotation", "GeoCloud", "GeoRank", "UNet-based",
            "MinDist", "MaxTC", "MaxTC-ILC", "DLInfMA",
            "DLInfMA-GBDT", "DLInfMA-RF", "DLInfMA-MLP",
            "DLInfMA-RkDT", "DLInfMA-RkNet", "DLInfMA-PN", "DLInfMA-Grid",
            "DLInfMA-nTC", "DLInfMA-nD", "DLInfMA-nP", "DLInfMA-nLC",
            "DLInfMA-nA", "DLInfMA-LCaddr",
        }
        assert expected == set(registry)

    def test_shared_methods_are_registered(self):
        assert SHARED_ARTIFACT_METHODS <= set(method_registry())


class TestWorkload:
    def test_from_dataset(self, tiny_dataset, tiny_workload):
        assert len(tiny_workload.trips) == len(tiny_dataset.trips)
        assert tiny_workload.train_ids and tiny_workload.test_ids
        assert set(tiny_workload.train_ids).isdisjoint(tiny_workload.test_ids)

    def test_override_trips(self, tiny_dataset):
        heavy = tiny_dataset.with_delays(1.0)
        wl = Workload.from_dataset(tiny_dataset, trips=heavy)
        assert wl.trips == heavy


class TestRunMethods:
    def test_runs_and_evaluates(self, tiny_workload):
        runs = run_methods(
            tiny_workload, ["Geocoding", "MinDist", "MaxTC-ILC"], fast=True
        )
        assert set(runs) == {"Geocoding", "MinDist", "MaxTC-ILC"}
        for run in runs.values():
            assert set(run.predictions) >= set(tiny_workload.test_ids)
            result = evaluate(run.predictions, tiny_workload.ground_truth)
            assert result.n == len(tiny_workload.test_ids)
            assert run.fit_seconds >= 0

    def test_artifacts_shared_across_candidate_methods(self, tiny_workload):
        runs = run_methods(tiny_workload, ["MinDist", "MaxTC"], fast=True)
        assert runs["MinDist"].method.pool is runs["MaxTC"].method.pool

    def test_unknown_method_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            run_methods(tiny_workload, ["Quantum"], fast=True)


class TestReport:
    def test_metrics_table_contains_rows(self):
        results = {
            "A": EvalResult(mae=10.0, p95=50.0, beta50=90.0, n=5),
            "B": EvalResult(mae=20.0, p95=80.0, beta50=70.0, n=5),
        }
        text = metrics_table(results, title="T")
        assert "T" in text
        assert "A" in text and "B" in text
        assert "10.0" in text and "90.0" in text

    def test_metrics_table_order(self):
        results = {
            "A": EvalResult(1.0, 1.0, 1.0, 1),
            "B": EvalResult(2.0, 2.0, 2.0, 1),
        }
        text = metrics_table(results, order=["B", "A"])
        rows = [line.split()[0] for line in text.splitlines()[2:]]
        assert rows == ["B", "A"]

    def test_series_table(self):
        text = series_table([(20, 30.5), (40, 25.1)], headers=["D", "MAE"])
        assert "D" in text and "25.10" in text

    def test_histogram_text(self):
        text = histogram_text({1: 5, 2: 10}, title="H")
        assert "H" in text
        assert "#" in text

    def test_histogram_empty(self):
        assert "(empty)" in histogram_text({})

    def test_metrics_csv(self):
        from repro.eval import metrics_csv

        results = {"A": EvalResult(mae=10.5, p95=50.0, beta50=90.0, n=7)}
        csv = metrics_csv(results)
        lines = csv.splitlines()
        assert lines[0] == "method,mae_m,p95_m,beta50_pct,n"
        assert lines[1] == "A,10.500,50.000,90.000,7"
