import json

import numpy as np
import pytest

from repro.eval import (
    candidate_recall,
    city_to_geojson,
    pool_to_geojson,
    predictions_to_geojson,
    write_geojson,
)
from repro.geo import Point


class TestCityGeojson:
    def test_features_cover_buildings_and_spots(self, tiny_dataset):
        payload = city_to_geojson(tiny_dataset.city)
        assert payload["type"] == "FeatureCollection"
        kinds = [f["properties"]["kind"] for f in payload["features"]]
        assert kinds.count("building") == len(tiny_dataset.city.buildings)
        assert "locker" in kinds and "reception" in kinds and "doorstep" in kinds

    def test_coordinates_are_lnglat(self, tiny_dataset):
        payload = city_to_geojson(tiny_dataset.city)
        for feature in payload["features"]:
            lng, lat = feature["geometry"]["coordinates"]
            assert 100 < lng < 130 and 30 < lat < 50  # Beijing-ish

    def test_json_serializable(self, tiny_dataset, tmp_path):
        payload = city_to_geojson(tiny_dataset.city)
        path = tmp_path / "city.geojson"
        write_geojson(payload, path)
        assert json.loads(path.read_text())["type"] == "FeatureCollection"


class TestPoolAndPredictionsGeojson:
    def test_pool_features(self, tiny_artifacts):
        payload = pool_to_geojson(tiny_artifacts.pool)
        assert len(payload["features"]) == len(tiny_artifacts.pool)
        assert all(f["properties"]["weight"] > 0 for f in payload["features"])

    def test_predictions_with_error_lines(self):
        preds = {"a": Point(116.4, 39.9)}
        truth = {"a": Point(116.4, 39.901)}
        payload = predictions_to_geojson(preds, truth)
        kinds = {f["properties"]["kind"] for f in payload["features"]}
        assert kinds == {"prediction", "error"}
        error_feature = next(f for f in payload["features"] if f["properties"]["kind"] == "error")
        assert error_feature["properties"]["error_m"] == pytest.approx(111.2, abs=1.0)

    def test_predictions_without_truth(self):
        payload = predictions_to_geojson({"a": Point(116.4, 39.9)})
        assert len(payload["features"]) == 1


class TestCandidateRecall:
    def test_full_recall_on_tiny(self, tiny_dataset, tiny_artifacts):
        recall = candidate_recall(
            tiny_artifacts.examples,
            tiny_dataset.ground_truth,
            tiny_artifacts.pool.projection,
            tiny_artifacts.pool,
            radius_m=50.0,
        )
        assert recall > 0.9  # candidate generation rarely loses an address

    def test_small_radius_drops_recall(self, tiny_dataset, tiny_artifacts):
        wide = candidate_recall(
            tiny_artifacts.examples, tiny_dataset.ground_truth,
            tiny_artifacts.pool.projection, tiny_artifacts.pool, radius_m=100.0,
        )
        narrow = candidate_recall(
            tiny_artifacts.examples, tiny_dataset.ground_truth,
            tiny_artifacts.pool.projection, tiny_artifacts.pool, radius_m=3.0,
        )
        assert narrow <= wide

    def test_validation(self, tiny_artifacts):
        with pytest.raises(ValueError):
            candidate_recall({}, {}, tiny_artifacts.pool.projection, tiny_artifacts.pool)
        with pytest.raises(ValueError):
            candidate_recall(
                tiny_artifacts.examples, {}, tiny_artifacts.pool.projection,
                tiny_artifacts.pool, radius_m=0.0,
            )
