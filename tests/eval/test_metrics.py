import numpy as np
import pytest

from repro.eval import EvalResult, beta, error_meters, evaluate, mae, p95
from repro.geo import Point


class TestErrorMeters:
    def test_aligned_on_common_ids(self):
        preds = {"a": Point(116.4, 39.9), "b": Point(116.5, 39.9)}
        truth = {"a": Point(116.4, 39.9), "c": Point(116.6, 39.9)}
        errors = error_meters(preds, truth)
        assert errors.shape == (1,)
        assert errors[0] == 0.0

    def test_known_distance(self):
        # ~111 m per 0.001 degree latitude.
        preds = {"a": Point(116.4, 39.901)}
        truth = {"a": Point(116.4, 39.900)}
        assert error_meters(preds, truth)[0] == pytest.approx(111.2, abs=0.5)


class TestAggregates:
    def test_mae(self):
        assert mae(np.array([10.0, 20.0, 30.0])) == 20.0

    def test_p95(self):
        errors = np.arange(100.0)
        assert p95(errors) == pytest.approx(94.05)

    def test_beta_strict_threshold(self):
        errors = np.array([10.0, 50.0, 49.9, 80.0])
        assert beta(errors, 50.0) == pytest.approx(50.0)

    def test_empty_rejected(self):
        for fn in (mae, p95):
            with pytest.raises(ValueError):
                fn(np.array([]))
        with pytest.raises(ValueError):
            beta(np.array([]), 50.0)
        with pytest.raises(ValueError):
            beta(np.array([1.0]), 0.0)

    def test_evaluate_bundles_all(self):
        preds = {"a": Point(116.4, 39.9001), "b": Point(116.4, 39.91)}
        truth = {"a": Point(116.4, 39.9), "b": Point(116.4, 39.9)}
        result = evaluate(preds, truth)
        assert isinstance(result, EvalResult)
        assert result.n == 2
        assert result.beta50 == 50.0
        assert result.mae > 0
        assert result.row() == (result.mae, result.p95, result.beta50)
