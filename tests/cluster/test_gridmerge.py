import numpy as np
import pytest

from repro.cluster import grid_merge


class TestGridMerge:
    def test_empty(self):
        assert grid_merge(np.empty((0, 2)), 40.0) == []

    def test_single_cell(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        out = grid_merge(pts, 40.0)
        assert len(out) == 1
        assert out[0].x == pytest.approx(2.0)
        assert out[0].size == 3

    def test_boundary_splits_nearby_points(self):
        # The documented weakness: 2 m apart but straddling a cell border.
        pts = np.array([[39.0, 0.0], [41.0, 0.0]])
        out = grid_merge(pts, 40.0)
        assert len(out) == 2

    def test_negative_coordinates(self):
        pts = np.array([[-1.0, -1.0], [-39.0, -39.0]])
        out = grid_merge(pts, 40.0)
        assert len(out) == 1  # both fall in cell (-1, -1)

    def test_members_partition_input(self):
        rng = np.random.default_rng(8)
        pts = rng.uniform(-500, 500, size=(120, 2))
        out = grid_merge(pts, 50.0)
        members = sorted(m for c in out for m in c.members)
        assert members == list(range(120))

    def test_produces_more_locations_than_hierarchical(self):
        """The paper's observation motivating DLInfMA-Grid's weakness."""
        from repro.cluster import hierarchical_cluster

        rng = np.random.default_rng(1)
        # Dense stay points around scattered true locations.
        centers = rng.uniform(0, 2000, size=(30, 2))
        pts = np.vstack([c + rng.normal(0, 8, size=(12, 2)) for c in centers])
        n_grid = len(grid_merge(pts, 40.0))
        n_hier = len(hierarchical_cluster(pts, 40.0))
        assert n_grid >= n_hier

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            grid_merge(np.zeros((2, 3)), 40.0)
        with pytest.raises(ValueError):
            grid_merge(np.zeros((2, 2)), 0.0)
