import numpy as np
import pytest

from repro.cluster import kmeans


class TestKMeans:
    def test_k_equals_n(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        labels, centers = kmeans(pts, k=3)
        assert sorted(labels.tolist()) == [0, 1, 2]
        assert centers.shape == (3, 2)

    def test_k_one(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0]])
        labels, centers = kmeans(pts, k=1)
        assert set(labels) == {0}
        np.testing.assert_allclose(centers[0], [2.0, 0.0])

    def test_two_blobs_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal([0, 0], 1, size=(50, 2))
        b = rng.normal([100, 0], 1, size=(50, 2))
        labels, centers = kmeans(np.vstack([a, b]), k=2, rng=rng)
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]
        got = sorted(centers[:, 0].tolist())
        assert got[0] == pytest.approx(0.0, abs=1.0)
        assert got[1] == pytest.approx(100.0, abs=1.0)

    def test_invalid_k(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(pts, k=0)
        with pytest.raises(ValueError):
            kmeans(pts, k=4)

    def test_deterministic_with_seeded_rng(self):
        pts = np.random.default_rng(9).uniform(0, 100, size=(40, 2))
        l1, c1 = kmeans(pts, k=4, rng=np.random.default_rng(1))
        l2, c2 = kmeans(pts, k=4, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(l1, l2)
        np.testing.assert_allclose(c1, c2)

    def test_duplicate_points(self):
        pts = np.zeros((10, 2))
        labels, centers = kmeans(pts, k=2)
        assert labels.shape == (10,)
        np.testing.assert_allclose(centers, 0.0)
