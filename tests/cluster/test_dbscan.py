import numpy as np
import pytest

from repro.cluster import dbscan
from repro.cluster.dbscan import NOISE


class TestDBSCAN:
    def test_empty(self):
        labels = dbscan(np.empty((0, 2)), eps_m=10.0, min_pts=2)
        assert labels.shape == (0,)

    def test_single_point_noise_with_minpts2(self):
        labels = dbscan(np.array([[0.0, 0.0]]), eps_m=10.0, min_pts=2)
        assert labels[0] == NOISE

    def test_single_point_cluster_with_minpts1(self):
        labels = dbscan(np.array([[0.0, 0.0]]), eps_m=10.0, min_pts=1)
        assert labels[0] == 0

    def test_two_blobs(self):
        rng = np.random.default_rng(2)
        a = rng.normal([0, 0], 2, size=(30, 2))
        b = rng.normal([200, 0], 2, size=(30, 2))
        labels = dbscan(np.vstack([a, b]), eps_m=15.0, min_pts=3)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]
        assert NOISE not in labels

    def test_noise_detection(self):
        rng = np.random.default_rng(3)
        blob = rng.normal([0, 0], 1.5, size=(20, 2))
        outlier = np.array([[500.0, 500.0]])
        labels = dbscan(np.vstack([blob, outlier]), eps_m=10.0, min_pts=3)
        assert labels[-1] == NOISE
        assert all(lb != NOISE for lb in labels[:-1])

    def test_border_point_joins_cluster(self):
        # Chain where ends are border points of the dense middle.
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        labels = dbscan(pts, eps_m=6.0, min_pts=3)
        # Middle point has 3 neighbours (incl. itself) -> core; ends join.
        assert set(labels) == {0}

    def test_minpts1_all_points_clustered(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 100, size=(50, 2))
        labels = dbscan(pts, eps_m=5.0, min_pts=1)
        assert NOISE not in labels

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((2, 2)), eps_m=0.0, min_pts=1)
        with pytest.raises(ValueError):
            dbscan(np.zeros((2, 2)), eps_m=1.0, min_pts=0)
        with pytest.raises(ValueError):
            dbscan(np.zeros((2, 3)), eps_m=1.0, min_pts=1)

    def test_labels_contiguous_from_zero(self):
        rng = np.random.default_rng(5)
        blobs = [rng.normal([c, 0], 1, size=(10, 2)) for c in (0, 100, 200)]
        labels = dbscan(np.vstack(blobs), eps_m=10.0, min_pts=2)
        clusters = sorted(set(labels) - {NOISE})
        assert clusters == list(range(len(clusters)))
        assert len(clusters) == 3
