import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, hierarchical_cluster, merge_weighted_clusters


class TestHierarchicalCluster:
    def test_empty(self):
        assert hierarchical_cluster(np.empty((0, 2)), 40.0) == []

    def test_single_point(self):
        out = hierarchical_cluster(np.array([[1.0, 2.0]]), 40.0)
        assert len(out) == 1
        assert out[0].x == 1.0 and out[0].y == 2.0
        assert out[0].members == [0]
        assert out[0].weight == 1.0

    def test_two_close_points_merge(self):
        out = hierarchical_cluster(np.array([[0.0, 0.0], [10.0, 0.0]]), 40.0)
        assert len(out) == 1
        assert out[0].x == pytest.approx(5.0)
        assert sorted(out[0].members) == [0, 1]

    def test_two_far_points_stay_separate(self):
        out = hierarchical_cluster(np.array([[0.0, 0.0], [100.0, 0.0]]), 40.0)
        assert len(out) == 2

    def test_threshold_is_strict(self):
        # Exactly at the threshold: "smaller than D" means no merge.
        out = hierarchical_cluster(np.array([[0.0, 0.0], [40.0, 0.0]]), 40.0)
        assert len(out) == 2

    def test_three_groups(self):
        rng = np.random.default_rng(0)
        groups = [np.array([0.0, 0.0]), np.array([500.0, 0.0]), np.array([0.0, 500.0])]
        pts = np.vstack([g + rng.normal(0, 3, size=(10, 2)) for g in groups])
        out = hierarchical_cluster(pts, 40.0)
        assert len(out) == 3
        sizes = sorted(c.size for c in out)
        assert sizes == [10, 10, 10]

    def test_closest_pair_merges_first_chain(self):
        # Chain 0 -- 30 -- 60: 0 and 30 merge to centroid 15; centroid is 45
        # away from 60 which is >= 40, so 60 stays separate.
        out = hierarchical_cluster(np.array([[0.0, 0.0], [30.0, 0.0], [60.0, 0.0]]), 40.0)
        assert len(out) == 2
        big = max(out, key=lambda c: c.size)
        assert sorted(big.members) == [0, 1]
        assert big.x == pytest.approx(15.0)

    def test_weighted_centroid(self):
        out = hierarchical_cluster(
            np.array([[0.0, 0.0], [30.0, 0.0]]), 40.0, weights=[3.0, 1.0]
        )
        assert len(out) == 1
        assert out[0].x == pytest.approx(7.5)
        assert out[0].weight == 4.0

    def test_members_partition_input(self):
        rng = np.random.default_rng(42)
        pts = rng.uniform(0, 1000, size=(200, 2))
        out = hierarchical_cluster(pts, 50.0)
        all_members = sorted(m for c in out for m in c.members)
        assert all_members == list(range(200))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hierarchical_cluster(np.zeros((3, 3)), 40.0)
        with pytest.raises(ValueError):
            hierarchical_cluster(np.zeros((3, 2)), 0.0)
        with pytest.raises(ValueError):
            hierarchical_cluster(np.zeros((3, 2)), 40.0, weights=[1.0])
        with pytest.raises(ValueError):
            hierarchical_cluster(np.zeros((2, 2)), 40.0, weights=[1.0, -1.0])

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=500),
                st.floats(min_value=0, max_value=500),
            ),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from([20.0, 40.0, 80.0]),
    )
    def test_final_centroids_separated_property(self, coords, threshold):
        """The paper's stopping criterion: no two centroids within D."""
        pts = np.array(coords, dtype=float)
        out = hierarchical_cluster(pts, threshold)
        centers = np.array([[c.x, c.y] for c in out])
        for i in range(len(centers)):
            for j in range(i + 1, len(centers)):
                d = float(np.hypot(*(centers[i] - centers[j])))
                assert d >= threshold - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=300),
                st.floats(min_value=0, max_value=300),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_weight_conservation_property(self, coords):
        pts = np.array(coords, dtype=float)
        out = hierarchical_cluster(pts, 40.0)
        assert sum(c.weight for c in out) == pytest.approx(len(pts))


class TestMergeWeightedClusters:
    def test_merge_with_empty_pool(self):
        out = merge_weighted_clusters([], np.array([[0.0, 0.0], [5.0, 0.0]]), 40.0)
        assert len(out) == 1

    def test_existing_weight_dominates(self):
        existing = [Cluster(x=0.0, y=0.0, weight=9.0, members=[])]
        out = merge_weighted_clusters(existing, np.array([[10.0, 0.0]]), 40.0)
        assert len(out) == 1
        assert out[0].x == pytest.approx(1.0)  # (9*0 + 1*10) / 10
        assert out[0].weight == 10.0

    def test_far_new_points_create_new_candidates(self):
        existing = [Cluster(x=0.0, y=0.0, weight=5.0, members=[])]
        out = merge_weighted_clusters(existing, np.array([[500.0, 0.0]]), 40.0)
        assert len(out) == 2

    def test_bi_weekly_incremental_stability(self):
        """Merging in two batches lands near a single-shot clustering."""
        rng = np.random.default_rng(1)
        batch1 = rng.normal([100, 100], 5, size=(20, 2))
        batch2 = rng.normal([100, 100], 5, size=(20, 2))
        pool = hierarchical_cluster(batch1, 40.0)
        merged = merge_weighted_clusters(pool, batch2, 40.0)
        single = hierarchical_cluster(np.vstack([batch1, batch2]), 40.0)
        assert len(merged) == len(single) == 1
        assert merged[0].x == pytest.approx(single[0].x, abs=1.0)
        assert merged[0].y == pytest.approx(single[0].y, abs=1.0)
