import numpy as np
import pytest

from repro.cluster import dbscan, extract_clusters, optics


class TestOptics:
    def test_empty(self):
        order, reach = optics(np.empty((0, 2)), eps_m=10.0, min_pts=2)
        assert order.shape == (0,)

    def test_order_is_permutation(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, size=(50, 2))
        order, reach = optics(pts, eps_m=20.0, min_pts=3)
        assert sorted(order.tolist()) == list(range(50))
        assert reach.shape == (50,)

    def test_two_blobs_low_reachability_within(self):
        rng = np.random.default_rng(1)
        a = rng.normal([0, 0], 1.5, size=(25, 2))
        b = rng.normal([300, 0], 1.5, size=(25, 2))
        pts = np.vstack([a, b])
        order, reach = optics(pts, eps_m=30.0, min_pts=3)
        finite = reach[np.isfinite(reach)]
        # Within-blob reachability is tiny; the cross-blob jump is inf
        # (outside eps), so all finite values stay small.
        assert finite.max() < 10.0

    def test_extract_matches_dbscan_clusters(self):
        """Cutting the reachability plot at eps reproduces DBSCAN's
        partition of core-reachable points into groups."""
        rng = np.random.default_rng(2)
        blobs = [rng.normal([c, 0], 2.0, size=(20, 2)) for c in (0, 200, 400)]
        pts = np.vstack(blobs)
        order, reach = optics(pts, eps_m=25.0, min_pts=3)
        labels_optics = extract_clusters(order, reach, eps_m=25.0)
        labels_db = dbscan(pts, eps_m=25.0, min_pts=3)
        # Same number of multi-point groups, and co-membership agrees.
        assert len(set(labels_optics)) == len(set(labels_db[labels_db >= 0]))
        for i in range(0, 60, 7):
            for j in range(0, 60, 11):
                same_optics = labels_optics[i] == labels_optics[j]
                same_db = labels_db[i] == labels_db[j]
                assert same_optics == same_db

    def test_validation(self):
        with pytest.raises(ValueError):
            optics(np.zeros((2, 2)), eps_m=0.0, min_pts=1)
        with pytest.raises(ValueError):
            optics(np.zeros((2, 2)), eps_m=1.0, min_pts=0)
        with pytest.raises(ValueError):
            optics(np.zeros((2, 3)), eps_m=1.0, min_pts=1)

    def test_min_pts_one_all_chainable(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        order, reach = optics(pts, eps_m=6.0, min_pts=1)
        labels = extract_clusters(order, reach, eps_m=6.0)
        assert len(set(labels)) == 1
