"""FixEventStream: seeded unbounded arrivals with disorder + duplicates."""

import numpy as np
import pytest

from repro.synth import (
    City,
    CityConfig,
    EventStreamConfig,
    FixEventStream,
    SimulationConfig,
    TripSimulator,
    build_day_streams,
)
from repro.trajectory import detect_stay_points


@pytest.fixture(scope="module")
def day_streams():
    rng = np.random.default_rng(0)
    city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
    sim = TripSimulator(city, SimulationConfig(n_days=2), rng)
    return build_day_streams(sim.simulate(), city,
                             rng=np.random.default_rng(0))


class TestDeterminism:
    def test_same_seed_same_arrivals(self, day_streams):
        a = FixEventStream(day_streams, seed=7).take(2000)
        b = FixEventStream(day_streams, seed=7).take(2000)
        assert a == b

    def test_different_seed_different_order(self, day_streams):
        a = FixEventStream(day_streams, seed=1).events_for_cycle(0)
        b = FixEventStream(day_streams, seed=2).events_for_cycle(0)
        assert a != b
        # ...but a full cycle always covers the same template fixes.
        assert {f.key() for f in a} == {f.key() for f in b}

    def test_cycles_are_independently_regenerable(self, day_streams):
        stream = FixEventStream(day_streams, seed=3)
        n0 = len(stream.events_for_cycle(0))
        taken = stream.take(n0 + 50)
        assert taken[:n0] == stream.events_for_cycle(0)
        assert taken[n0:] == stream.events_for_cycle(1)[:50]


class TestArrivalProcess:
    def test_disorder_is_bounded(self, day_streams):
        config = EventStreamConfig(disorder_s=20.0, p_duplicate=0.0)
        stream = FixEventStream(day_streams, seed=0, config=config)
        events = stream.events_for_cycle(0)
        worst = 0.0
        max_seen = {}
        for fix in events:
            prior = max_seen.get(fix.courier_id, float("-inf"))
            if prior > fix.t:
                worst = max(worst, prior - fix.t)
            max_seen[fix.courier_id] = max(prior, fix.t)
        assert 0.0 < worst < 20.0

    def test_duplicates_are_exact_and_near_their_original(self, day_streams):
        config = EventStreamConfig(disorder_s=10.0, p_duplicate=0.05,
                                   dup_gap_events=8)
        stream = FixEventStream(day_streams, seed=0, config=config)
        events = stream.events_for_cycle(0)
        n_template = stream.events_per_cycle()
        n_dups = len(events) - n_template
        assert n_dups > 0
        seen_at = {}
        for i, fix in enumerate(events):
            key = fix.key()
            if key in seen_at:
                # A duplicate is byte-identical and arrives within the
                # configured gap of its original.
                assert events[seen_at[key]] == fix
                assert i - seen_at[key] <= 8 + n_dups
            else:
                seen_at[key] = i

    def test_zero_disorder_zero_duplicates_is_clean_replay(self, day_streams):
        config = EventStreamConfig(disorder_s=0.0, p_duplicate=0.0)
        stream = FixEventStream(day_streams, seed=0, config=config)
        events = stream.events_for_cycle(0)
        assert len(events) == stream.events_per_cycle()
        assert [f.t for f in events] == sorted(f.t for f in events)

    def test_cycles_shift_by_the_period(self, day_streams):
        stream = FixEventStream(
            day_streams, seed=0,
            config=EventStreamConfig(disorder_s=0.0, p_duplicate=0.0),
        )
        c0 = stream.events_for_cycle(0)
        c1 = stream.events_for_cycle(1)
        assert c1[0].t - c0[0].t == pytest.approx(stream.period_s)
        # Event time never runs backwards across the cycle seam.
        assert c1[0].t > c0[-1].t

    def test_config_validation(self, day_streams):
        with pytest.raises(ValueError):
            EventStreamConfig(disorder_s=-1.0)
        with pytest.raises(ValueError):
            EventStreamConfig(p_duplicate=1.0)
        with pytest.raises(ValueError):
            EventStreamConfig(dup_gap_events=0)
        with pytest.raises(ValueError):
            FixEventStream({}, seed=0)


class TestGroundTruth:
    def test_expected_trajectory_matches_deduped_events(self, day_streams):
        stream = FixEventStream(day_streams, seed=0)
        courier = sorted(stream.templates)[0]
        expected = stream.expected_trajectory(courier, n_cycles=2)
        got = sorted(
            {(f.lng, f.lat, f.t)
             for c in range(2) for f in stream.events_for_cycle(c)
             if f.courier_id == courier},
            key=lambda row: row[2],
        )
        assert [(p.lng, p.lat, p.t) for p in expected.points] == got

    def test_ground_truth_contains_stays(self, day_streams):
        """The reference trajectories must exercise the detector."""
        stream = FixEventStream(day_streams, seed=0)
        total = sum(
            len(detect_stay_points(traj))
            for traj in stream.expected_trajectories(n_cycles=1).values()
        )
        assert total > 0
