import numpy as np
import pytest

from repro.synth import (
    City,
    CityConfig,
    ParsedAddress,
    building_of,
    parse_address,
    resolve_building,
)


@pytest.fixture(scope="module")
def city():
    return City(CityConfig(n_blocks_x=4, n_blocks_y=3), np.random.default_rng(0))


class TestParseAddress:
    def test_full_form(self):
        parsed = parse_address("San Yi Li Building 2 Unit 3")
        assert parsed == ParsedAddress("San Yi Li", 2, 3)

    def test_without_unit(self):
        parsed = parse_address("Hua Yuan Lu Building 7")
        assert parsed.building_no == 7
        assert parsed.unit_no is None

    def test_case_insensitive_and_whitespace(self):
        parsed = parse_address("  san yi li  building 1 unit 2 ")
        assert parsed.building_no == 1

    @pytest.mark.parametrize("bad", ["", "Building 2", "San Yi Li", "San Yi Li Building x"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestResolveBuilding:
    def test_every_city_address_resolves_to_its_building(self, city):
        for record in list(city.addresses.values())[:40]:
            resolved = building_of(record.text, city)
            assert resolved == record.building_id

    def test_unknown_complex(self, city):
        assert resolve_building(ParsedAddress("Nowhere", 1, 1), city) is None

    def test_building_number_out_of_range(self, city):
        block = next(iter(city.blocks.values()))
        parsed = ParsedAddress(block.name, 999, 1)
        assert resolve_building(parsed, city) is None

    def test_fuzzy_prefix_match(self, city):
        """Mirrors geocoder failure mode 1: a prefix-only complex name can
        resolve (possibly wrongly) when fuzzy matching is on."""
        # "San Yi Li" and "San Yi Xi Li" share the 2-token prefix "San Yi";
        # querying a name that exists exactly must not need fuzzy.
        exact = resolve_building(ParsedAddress("San Yi Li", 1, 1), city)
        assert exact is not None
        # A misspelled variant resolves only via fuzzy when unique.
        parsed = ParsedAddress("San Yi", 1, 1)
        assert resolve_building(parsed, city) is None  # strict: no match

    def test_building_of_malformed(self, city):
        assert building_of("not an address", city) is None
