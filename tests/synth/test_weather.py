import numpy as np
import pytest

from repro.apps import AvailabilityModel
from repro.synth import (
    City,
    CityConfig,
    SimulationConfig,
    TripSimulator,
    Weather,
    WeatherConfig,
    daily_weather,
    weather_of_time,
)


class TestDailyWeather:
    def test_length_and_values(self):
        series = daily_weather(30, rng=np.random.default_rng(0))
        assert len(series) == 30
        assert set(series) <= {Weather.CLEAR, Weather.RAIN}

    def test_rain_probability(self):
        series = daily_weather(
            2_000, WeatherConfig(p_rain=0.3), rng=np.random.default_rng(1)
        )
        frac = sum(1 for w in series if w == Weather.RAIN) / len(series)
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_extremes(self):
        assert all(w == Weather.RAIN for w in daily_weather(10, WeatherConfig(p_rain=1.0)))
        assert all(w == Weather.CLEAR for w in daily_weather(10, WeatherConfig(p_rain=0.0)))

    def test_validation(self):
        with pytest.raises(ValueError):
            daily_weather(-1)
        with pytest.raises(ValueError):
            WeatherConfig(p_rain=1.2)
        with pytest.raises(ValueError):
            WeatherConfig(rain_speed_factor=0.0)

    def test_weather_of_time(self):
        series = [Weather.CLEAR, Weather.RAIN]
        assert weather_of_time(100.0, series) == Weather.CLEAR
        assert weather_of_time(90_000.0, series) == Weather.RAIN
        assert weather_of_time(1e9, series) == Weather.RAIN  # clamps
        assert weather_of_time(100.0, []) == Weather.CLEAR


class TestWeatherInSimulation:
    def test_rain_slows_trips(self):
        def total_duration(series):
            rng = np.random.default_rng(5)
            city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
            sim = TripSimulator(
                city, SimulationConfig(n_days=6, extra_stop_prob=0.0), rng,
                weather=series,
                weather_config=WeatherConfig(rain_speed_factor=0.5, rain_dwell_factor=1.5),
            )
            trips = sim.simulate()
            return sum(t.trip.t_end - t.trip.t_start for t in trips)

        clear = total_duration([Weather.CLEAR] * 6)
        rainy = total_duration([Weather.RAIN] * 6)
        assert rainy > clear * 1.2


class TestWeatherAvailability:
    def test_weather_conditioned_profiles(self):
        # Rain on day 1; deliveries at hour 10 on both days.
        weather = [Weather.CLEAR, Weather.RAIN]
        times = {"a": [10 * 3_600.0, 86_400.0 + 10 * 3_600.0]}
        model = AvailabilityModel().fit(times, weather=weather)
        clear_profile = model.weather_profile("a", "clear")
        rain_profile = model.weather_profile("a", "rain")
        # Clear delivery was weekday 0, rain delivery weekday 1.
        assert clear_profile.prob(0, 10) > clear_profile.prob(1, 10)
        assert rain_profile.prob(1, 10) > rain_profile.prob(0, 10)

    def test_fallback_to_overall(self):
        model = AvailabilityModel().fit({"a": [3_600.0]}, weather=[Weather.CLEAR])
        profile = model.weather_profile("a", "rain")  # no rainy data
        assert profile is model.profile("a")
