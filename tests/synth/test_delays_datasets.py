import numpy as np
import pytest

from repro.synth import (
    City,
    CityConfig,
    SimulationConfig,
    TripSimulator,
    downbj_config,
    generate_dataset,
    inject_delays,
    split_addresses_by_region,
    subbj_config,
    tiny_config,
)


@pytest.fixture(scope="module")
def sim_trips():
    rng = np.random.default_rng(0)
    city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
    return TripSimulator(city, SimulationConfig(n_days=5), rng).simulate()


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_dataset(tiny_config())


class TestInjectDelays:
    def test_zero_probability_keeps_times_near_actual(self, sim_trips):
        trips = inject_delays(sim_trips, p_delay=0.0, rng=np.random.default_rng(1))
        for sim, trip in zip(sim_trips, trips):
            for waybill in trip.waybills:
                actual = sim.actual_delivery_time[waybill.waybill_id]
                assert 0 <= waybill.t_delivered - actual <= 130.0

    def test_full_probability_delays_everything_to_batch_times(self, sim_trips):
        trips = inject_delays(sim_trips, p_delay=1.0, n_batches=2, rng=np.random.default_rng(2))
        for sim, trip in zip(sim_trips, trips):
            confirm_times = {
                round(w.t_delivered, 6) for w in trip.waybills
            }
            # All waybills collapse onto at most n_batches distinct times.
            assert len(confirm_times) <= 2

    def test_delays_are_non_negative(self, sim_trips):
        trips = inject_delays(sim_trips, p_delay=0.6, rng=np.random.default_rng(3))
        for sim, trip in zip(sim_trips, trips):
            for waybill in trip.waybills:
                actual = sim.actual_delivery_time[waybill.waybill_id]
                assert waybill.t_delivered >= actual - 1e-6

    def test_higher_p_more_delayed(self, sim_trips):
        def mean_delay(p):
            trips = inject_delays(sim_trips, p_delay=p, rng=np.random.default_rng(4))
            total, n = 0.0, 0
            for sim, trip in zip(sim_trips, trips):
                for waybill in trip.waybills:
                    total += waybill.t_delivered - sim.actual_delivery_time[waybill.waybill_id]
                    n += 1
            return total / n

        assert mean_delay(0.2) < mean_delay(0.6) < mean_delay(1.0)

    def test_originals_untouched(self, sim_trips):
        before = [w.t_delivered for s in sim_trips for w in s.trip.waybills]
        inject_delays(sim_trips, p_delay=1.0, rng=np.random.default_rng(5))
        after = [w.t_delivered for s in sim_trips for w in s.trip.waybills]
        assert before == after

    def test_validation(self, sim_trips):
        with pytest.raises(ValueError):
            inject_delays(sim_trips, p_delay=1.5)
        with pytest.raises(ValueError):
            inject_delays(sim_trips, p_delay=0.5, n_batches=0)


class TestDatasets:
    def test_tiny_dataset_generates(self, tiny_dataset):
        stats = tiny_dataset.stats()
        assert stats["trips"] > 0
        assert stats["addresses"] > 10
        assert stats["waybills"] >= stats["addresses"]
        assert stats["gps_points"] > 1000

    def test_ground_truth_covers_all_addresses(self, tiny_dataset):
        assert set(tiny_dataset.ground_truth) == set(tiny_dataset.city.addresses)
        assert set(tiny_dataset.addresses) == set(tiny_dataset.city.addresses)

    def test_with_delays_resweep(self, tiny_dataset):
        heavy = tiny_dataset.with_delays(1.0)
        assert len(heavy) == len(tiny_dataset.trips)
        # Heavier delays shift recorded times later on average.
        def mean_time(trips):
            times = [w.t_delivered for t in trips for w in t.waybills]
            return np.mean(times)

        light = tiny_dataset.with_delays(0.0)
        assert mean_time(heavy) > mean_time(light)

    def test_presets_differ_as_documented(self):
        dow = downbj_config()
        sub = subbj_config()
        assert dow.geocoder.jitter_sigma_m < sub.geocoder.jitter_sigma_m
        assert dow.geocoder.coarse_poi_prob < sub.geocoder.coarse_poi_prob
        assert dow.sim.extra_stop_prob < sub.sim.extra_stop_prob

    def test_dataset_determinism(self):
        a = generate_dataset(tiny_config())
        b = generate_dataset(tiny_config())
        assert a.stats() == b.stats()
        assert [t.trip_id for t in a.trips] == [t.trip_id for t in b.trips]

    def test_split_disjoint_and_complete(self, tiny_dataset):
        split = split_addresses_by_region(tiny_dataset)
        train, val, test = set(split.train), set(split.val), set(split.test)
        assert train and test
        assert not (train & val) and not (train & test) and not (val & test)
        assert train | val | test == set(tiny_dataset.delivered_address_ids)

    def test_split_is_spatial(self, tiny_dataset):
        """Train and test addresses live in different blocks."""
        split = split_addresses_by_region(tiny_dataset)
        city = tiny_dataset.city

        def blocks_of(ids):
            return {city.buildings[city.addresses[a].building_id].block_id for a in ids}

        assert not (blocks_of(split.train) & blocks_of(split.test))

    def test_split_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            split_addresses_by_region(tiny_dataset, train_frac=0.8, val_frac=0.3)
