import numpy as np
import pytest

from repro.geo import haversine_m
from repro.synth import City, CityConfig, GeocoderConfig, SyntheticGeocoder


@pytest.fixture(scope="module")
def city():
    # 4x3 grid so similar-name pairs ("San Yi Li"/"San Yi Xi Li") coexist.
    return City(CityConfig(n_blocks_x=4, n_blocks_y=3), np.random.default_rng(0))


class TestSyntheticGeocoder:
    def test_perfect_geocoder(self, city):
        geocoder = SyntheticGeocoder(
            city,
            GeocoderConfig(jitter_sigma_m=0.0, parse_confusion_prob=0.0, coarse_poi_prob=0.0),
            np.random.default_rng(1),
        )
        for record in list(city.addresses.values())[:20]:
            x, y = geocoder.geocode_xy(record)
            building = city.buildings[record.building_id]
            assert x == pytest.approx(building.x)
            assert y == pytest.approx(building.y)

    def test_jitter_scale(self, city):
        geocoder = SyntheticGeocoder(
            city,
            GeocoderConfig(jitter_sigma_m=25.0, parse_confusion_prob=0.0, coarse_poi_prob=0.0),
            np.random.default_rng(2),
        )
        record = next(iter(city.addresses.values()))
        building = city.buildings[record.building_id]
        errs = []
        for _ in range(300):
            x, y = geocoder.geocode_xy(record)
            errs.append(np.hypot(x - building.x, y - building.y))
        # Mean distance of a 2-D gaussian with sigma=25 is sigma*sqrt(pi/2)≈31.
        assert 22 < np.mean(errs) < 42

    def test_coarse_mode_snaps_to_block_center(self, city):
        geocoder = SyntheticGeocoder(
            city,
            GeocoderConfig(jitter_sigma_m=0.0, parse_confusion_prob=0.0, coarse_poi_prob=1.0),
            np.random.default_rng(3),
        )
        record = next(iter(city.addresses.values()))
        block = city.blocks[city.buildings[record.building_id].block_id]
        x, y = geocoder.geocode_xy(record)
        assert x == pytest.approx(block.center_x)
        assert y == pytest.approx(block.center_y)

    def test_coarse_mode_collapses_multiple_addresses(self, city):
        """Case study 2: many addresses -> one geocoded location."""
        geocoder = SyntheticGeocoder(
            city,
            GeocoderConfig(jitter_sigma_m=0.0, parse_confusion_prob=0.0, coarse_poi_prob=1.0),
            np.random.default_rng(4),
        )
        block_id = next(iter(city.blocks))
        records = city.addresses_in_block(block_id)[:5]
        coords = {geocoder.geocode_xy(r) for r in records}
        assert len(coords) == 1

    def test_parse_confusion_lands_in_other_block(self, city):
        geocoder = SyntheticGeocoder(
            city,
            GeocoderConfig(jitter_sigma_m=0.0, parse_confusion_prob=1.0, coarse_poi_prob=0.0),
            np.random.default_rng(5),
        )
        confused = 0
        for record in city.addresses.values():
            building = city.buildings[record.building_id]
            if not geocoder._similar[building.block_id]:
                continue
            x, y = geocoder.geocode_xy(record)
            if np.hypot(x - building.x, y - building.y) > 50:
                confused += 1
        assert confused > 0

    def test_geocode_produces_address_entities(self, city):
        geocoder = SyntheticGeocoder(city, GeocoderConfig(), np.random.default_rng(6))
        addresses = geocoder.geocode_all()
        assert set(addresses) == set(city.addresses)
        for addr_id, address in addresses.items():
            record = city.addresses[addr_id]
            assert address.building_id == record.building_id
            assert address.poi_category == record.poi_category
            # Geocode is within a sane distance of the truth.
            truth = city.true_location(addr_id)
            err = haversine_m(address.geocode.lng, address.geocode.lat, truth.lng, truth.lat)
            assert err < 2_000

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeocoderConfig(jitter_sigma_m=-1.0)
        with pytest.raises(ValueError):
            GeocoderConfig(parse_confusion_prob=1.5)
        with pytest.raises(ValueError):
            GeocoderConfig(coarse_poi_prob=-0.1)
