import numpy as np
import pytest

from repro.geo import LocalProjection, haversine_m
from repro.synth import City, CityConfig, SimulationConfig, TripSimulator
from repro.trajectory import StayPointConfig, detect_stay_points, filter_noise


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(0)
    city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
    sim = TripSimulator(city, SimulationConfig(n_days=6), rng)
    return city, sim, sim.simulate()


class TestTripSimulator:
    def test_courier_zone_partition(self, world):
        city, sim, _ = world
        covered = [b for blocks in sim.courier_zones.values() for b in blocks]
        assert sorted(covered) == sorted(city.blocks)

    def test_trips_generated_for_every_courier_day(self, world):
        city, sim, trips = world
        assert len(trips) == len(sim.courier_zones) * 6

    def test_trip_invariants(self, world):
        _, _, trips = world
        for sim_trip in trips:
            trip = sim_trip.trip
            assert trip.t_start <= trip.t_end
            assert len(trip.trajectory) >= 2
            assert trip.trajectory.points[0].t >= trip.t_start - 1e-9
            for waybill in trip.waybills:
                assert waybill.t_received < trip.t_start
                actual = sim_trip.actual_delivery_time[waybill.waybill_id]
                assert trip.t_start <= actual <= trip.t_end
                # Clean recorded times confirm shortly after delivery.
                assert actual < waybill.t_delivered <= actual + 130.0

    def test_waybills_delivered_at_true_spots(self, world):
        city, _, trips = world
        for sim_trip in trips[:5]:
            for stop in sim_trip.stops:
                if stop.spot_id is None:
                    continue
                spot = city.spots[stop.spot_id]
                for addr in stop.address_ids:
                    assert city.addresses[addr].spot_id == stop.spot_id
                assert stop.x == spot.x and stop.y == spot.y

    def test_sampling_rate_near_config(self, world):
        _, _, trips = world
        deltas = []
        for sim_trip in trips[:10]:
            _, _, t = sim_trip.trip.trajectory.to_arrays()
            deltas.extend(np.diff(t))
        assert 11.0 < np.mean(deltas) < 16.0

    def test_stay_points_found_near_delivery_spots(self, world):
        """The core premise: deliveries cause detectable stays."""
        city, _, trips = world
        sim_trip = trips[0]
        cleaned = filter_noise(sim_trip.trip.trajectory)
        stays = detect_stay_points(cleaned, StayPointConfig(d_max_m=20.0, t_min_s=30.0))
        assert len(stays) >= 1
        proj = city.projection
        matched = 0
        for stop in sim_trip.stops:
            if stop.spot_id is None:
                continue
            best = min(
                haversine_m(sp.lng, sp.lat, *proj.to_lnglat(stop.x, stop.y))
                for sp in stays
            )
            if best < 25.0:
                matched += 1
        n_delivery_stops = sum(1 for s in sim_trip.stops if s.spot_id is not None)
        assert matched / n_delivery_stops > 0.7

    def test_gps_noise_present(self, world):
        city, _, trips = world
        sim_trip = trips[0]
        lng, lat, t = sim_trip.trip.trajectory.to_arrays()
        x, y = city.projection.to_xy(lng, lat)
        # During the first delivery dwell, positions scatter (not constant).
        stop = next(s for s in sim_trip.stops if s.spot_id is not None)
        in_dwell = (t >= stop.t_arrive) & (t <= stop.t_leave)
        assert in_dwell.sum() >= 3
        assert np.std(np.asarray(x)[in_dwell]) > 0.5

    def test_addresses_repeat_across_trips(self, world):
        """Most addresses must appear in multiple trips (Figure 9(b))."""
        _, _, trips = world
        counts: dict[str, int] = {}
        for sim_trip in trips:
            for addr in sim_trip.trip.address_ids:
                counts[addr] = counts.get(addr, 0) + 1
        repeated = sum(1 for c in counts.values() if c >= 2)
        assert repeated / len(counts) > 0.5

    def test_double_parcels_share_stop_and_time(self):
        rng = np.random.default_rng(9)
        city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
        sim = TripSimulator(city, SimulationConfig(n_days=10, double_parcel_prob=1.0), rng)
        trips = sim.simulate()
        found = 0
        for sim_trip in trips:
            per_address = {}
            for waybill in sim_trip.trip.waybills:
                per_address.setdefault(waybill.address_id, []).append(waybill)
            for waybills in per_address.values():
                if len(waybills) == 2:
                    found += 1
                    ids = {w.waybill_id for w in waybills}
                    assert len(ids) == 2
                    actuals = {
                        sim_trip.actual_delivery_time[w.waybill_id] for w in waybills
                    }
                    assert len(actuals) == 1  # delivered together
        assert found > 0

    def test_rest_stops_exist(self):
        rng = np.random.default_rng(3)
        city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
        sim = TripSimulator(city, SimulationConfig(n_days=8, extra_stop_prob=0.9), rng)
        trips = sim.simulate()
        rests = sum(
            1 for st in trips for s in st.stops if s.spot_id is None
        )
        assert rests > 0

    def test_determinism(self):
        def build():
            rng = np.random.default_rng(11)
            city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
            return TripSimulator(city, SimulationConfig(n_days=3), rng).simulate()

        a, b = build(), build()
        assert len(a) == len(b)
        for ta, tb in zip(a, b):
            assert ta.trip.trip_id == tb.trip.trip_id
            assert len(ta.trip.trajectory) == len(tb.trip.trajectory)
            assert ta.actual_delivery_time == tb.actual_delivery_time

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_days=0)
        with pytest.raises(ValueError):
            SimulationConfig(sampling_s=0)
        with pytest.raises(ValueError):
            SimulationConfig(addresses_per_trip=(0, 5))
