import pytest

from repro.synth.io import (
    load_addresses,
    load_ground_truth,
    load_trips,
    save_addresses,
    save_ground_truth,
    save_trips,
    trip_from_dict,
    trip_to_dict,
)


class TestTripsRoundtrip:
    def test_dict_roundtrip(self, tiny_dataset):
        trip = tiny_dataset.trips[0]
        again = trip_from_dict(trip_to_dict(trip))
        assert again.trip_id == trip.trip_id
        assert again.courier_id == trip.courier_id
        assert again.waybills == trip.waybills
        assert again.trajectory.points == trip.trajectory.points

    def test_file_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "trips.jsonl"
        save_trips(tiny_dataset.trips, path)
        loaded = load_trips(path)
        assert len(loaded) == len(tiny_dataset.trips)
        assert [t.trip_id for t in loaded] == [t.trip_id for t in tiny_dataset.trips]
        assert loaded[0].waybills == tiny_dataset.trips[0].waybills


class TestAddressesRoundtrip:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "addresses.json"
        save_addresses(tiny_dataset.addresses, path)
        loaded = load_addresses(path)
        assert loaded == tiny_dataset.addresses


class TestGroundTruthRoundtrip:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "gt.json"
        save_ground_truth(tiny_dataset.ground_truth, path)
        assert load_ground_truth(path) == tiny_dataset.ground_truth
