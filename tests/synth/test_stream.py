import numpy as np
import pytest

from repro.geo import Point
from repro.synth import City, CityConfig, SimulationConfig, TripSimulator, build_day_streams
from repro.trajectory import SegmentationConfig, segment_trips


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(0)
    city = City(CityConfig(n_blocks_x=2, n_blocks_y=1), rng)
    sim = TripSimulator(city, SimulationConfig(n_days=4), rng)
    return city, sim.simulate()


class TestBuildDayStreams:
    def test_one_stream_per_courier_day(self, world):
        city, sim_trips = world
        streams = build_day_streams(sim_trips, city)
        expected_keys = {
            (s.trip.courier_id, int(s.trip.t_start // 86_400.0)) for s in sim_trips
        }
        assert set(streams) == expected_keys

    def test_streams_are_chronological_and_bracketed_by_station(self, world):
        city, sim_trips = world
        streams = build_day_streams(sim_trips, city, rng=np.random.default_rng(1))
        sx, sy = city.station_xy
        for stream in streams.values():
            times = [p.t for p in stream.points]
            assert times == sorted(times)
            # First and last fixes near the station.
            for p in (stream.points[0], stream.points[-1]):
                x, y = city.projection.to_xy(p.lng, p.lat)
                assert np.hypot(x - sx, y - sy) < 40.0

    def test_segmentation_recovers_trips(self, world):
        """End-to-end: stream -> segment_trips finds the embedded trip."""
        city, sim_trips = world
        streams = build_day_streams(sim_trips, city, rng=np.random.default_rng(2))
        sx, sy = city.station_xy
        lng, lat = city.projection.to_lnglat(sx, sy)
        station = Point(float(lng), float(lat))
        config = SegmentationConfig(
            max_gap_s=3_600.0,
            station=station,
            station_radius_m=80.0,
            min_station_dwell_s=600.0,
        )
        recovered = 0
        for (courier_id, day), stream in streams.items():
            segments = segment_trips(stream, config)
            # One trip per courier-day in this simulation.
            if len(segments) == 1:
                recovered += 1
                original = next(
                    s for s in sim_trips
                    if s.trip.courier_id == courier_id
                    and int(s.trip.t_start // 86_400.0) == day
                )
                seg = segments[0]
                overlap_start = max(seg.points[0].t, original.trip.trajectory.points[0].t)
                overlap_end = min(seg.points[-1].t, original.trip.trajectory.points[-1].t)
                # The recovered segment covers most of the original trip.
                span = original.trip.trajectory.duration_s
                assert (overlap_end - overlap_start) > 0.8 * span
        assert recovered / len(streams) > 0.7

    def test_validation(self, world):
        city, sim_trips = world
        with pytest.raises(ValueError):
            build_day_streams(sim_trips, city, station_dwell_s=0.0)
