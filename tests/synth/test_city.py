import numpy as np
import pytest

from repro.synth import City, CityConfig, SpotKind


@pytest.fixture(scope="module")
def city():
    return City(CityConfig(), np.random.default_rng(0))


class TestCityGeneration:
    def test_block_count(self, city):
        cfg = city.config
        assert len(city.blocks) == cfg.n_blocks_x * cfg.n_blocks_y

    def test_buildings_within_bounds(self, city):
        for block in city.blocks.values():
            assert len(block.building_ids) >= city.config.buildings_per_block[0]
        width, height = city.extent_m
        for b in city.buildings.values():
            assert -50 <= b.x <= width + 50
            assert -50 <= b.y <= height + 50

    def test_every_block_has_locker_and_reception(self, city):
        for block in city.blocks.values():
            assert block.locker.kind == SpotKind.LOCKER
            assert block.reception.kind == SpotKind.RECEPTION
            assert block.locker.spot_id in city.spots
            assert block.reception.spot_id in city.spots

    def test_every_building_has_doorstep_spot(self, city):
        doorsteps = [s for s in city.spots.values() if s.kind == SpotKind.DOORSTEP]
        assert len(doorsteps) == len(city.buildings)

    def test_addresses_reference_valid_entities(self, city):
        for addr in city.addresses.values():
            assert addr.building_id in city.buildings
            assert addr.spot_id in city.spots
            assert 0 <= addr.poi_category < 21
            assert addr.activity > 0

    def test_spot_preferences_respected(self, city):
        """Spot assignment must stay within the address's own block."""
        for addr in city.addresses.values():
            building = city.buildings[addr.building_id]
            spot = city.spots[addr.spot_id]
            assert spot.block_id == building.block_id
            if spot.kind == SpotKind.DOORSTEP:
                assert spot.spot_id == f"{addr.building_id}-door"

    def test_same_building_different_locations_exist(self):
        """Figure 9(a): buildings with >1 distinct delivery location."""
        city = City(
            CityConfig(n_blocks_x=4, n_blocks_y=3, addresses_per_building=(3, 6)),
            np.random.default_rng(1),
        )
        multi = 0
        buildings: dict[str, set[str]] = {}
        for addr in city.addresses.values():
            buildings.setdefault(addr.building_id, set()).add(addr.spot_id)
        multi = sum(1 for spots in buildings.values() if len(spots) > 1)
        assert multi / len(buildings) > 0.1

    def test_true_location_roundtrip(self, city):
        addr_id = next(iter(city.addresses))
        point = city.true_location(addr_id)
        x, y = city.projection.project_point(point)
        spot = city.spot_of(addr_id)
        assert x == pytest.approx(spot.x, abs=1e-6)
        assert y == pytest.approx(spot.y, abs=1e-6)

    def test_addresses_in_block(self, city):
        for block_id in city.blocks:
            for addr in city.addresses_in_block(block_id):
                assert city.buildings[addr.building_id].block_id == block_id

    def test_determinism(self):
        a = City(CityConfig(), np.random.default_rng(7))
        b = City(CityConfig(), np.random.default_rng(7))
        assert set(a.addresses) == set(b.addresses)
        for k in a.addresses:
            assert a.addresses[k] == b.addresses[k]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CityConfig(n_blocks_x=0)
        with pytest.raises(ValueError):
            CityConfig(locker_preference=0.6, reception_preference=0.5)

    def test_station_outside_blocks(self, city):
        sx, sy = city.station_xy
        assert sx < 0 or sy < 0
