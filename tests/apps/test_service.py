import pytest

from repro.apps import DeliveryLocationService, QuerySource
from repro.core import DLInfMAConfig
from repro.eval import evaluate


@pytest.fixture(scope="module")
def service(tiny_workload):
    svc = DeliveryLocationService(
        tiny_workload.addresses,
        tiny_workload.projection,
        config=DLInfMAConfig(selector="maxtc-ilc"),  # fast, no NN training
    )
    svc.refresh(
        tiny_workload.trips,
        tiny_workload.ground_truth,
        tiny_workload.train_ids,
        tiny_workload.val_ids,
    )
    return svc


class TestDeliveryLocationService:
    def test_refresh_populates_store(self, service, tiny_workload):
        assert service.last_refresh is not None
        assert service.last_refresh.n_addresses_inferred > 0
        assert len(service.store) > 0

    def test_query_known_address(self, service, tiny_workload):
        aid = tiny_workload.test_ids[0]
        result = service.query_id(aid)
        assert result.source == QuerySource.ADDRESS

    def test_inference_quality_is_reasonable(self, service, tiny_workload):
        # The heuristic selector used here is weaker than LocMatcher; just
        # require sane, bounded errors on the tiny dataset.
        preds = {a: service.query_id(a).location for a in tiny_workload.test_ids}
        result = evaluate(preds, tiny_workload.ground_truth)
        assert result.n == len(tiny_workload.test_ids)
        assert result.mae < 120.0

    def test_timings_surface_in_stats(self, service):
        assert "training_s" in service.last_refresh.timings

    def test_save_load_roundtrip(self, service, tiny_workload, tmp_path):
        service.save(tmp_path)
        fresh = DeliveryLocationService(
            tiny_workload.addresses, tiny_workload.projection
        )
        fresh.load(tmp_path)
        aid = tiny_workload.test_ids[0]
        assert fresh.query_id(aid).location == service.query_id(aid).location
        assert fresh.query_id(aid).source == QuerySource.ADDRESS

    def test_unknown_address_falls_back(self, service):
        from tests.core.helpers import make_address

        # Same building as an existing address -> building tier.
        known_building = next(iter(service.addresses.values())).building_id
        probe = make_address("probe", known_building, (0.0, 0.0))
        result = service.query(probe)
        assert result.source in (QuerySource.BUILDING, QuerySource.GEOCODE)


class TestIncrementalRefresh:
    @pytest.fixture()
    def split_batches(self, tiny_workload):
        trips = sorted(tiny_workload.trips, key=lambda t: t.t_start)
        half = len(trips) // 2
        return trips[:half], trips[half:]

    def test_second_refresh_is_incremental(self, tiny_workload, split_batches):
        first, second = split_batches
        svc = DeliveryLocationService(
            tiny_workload.addresses,
            tiny_workload.projection,
            config=DLInfMAConfig(selector="maxtc-ilc"),
        )
        stats1 = svc.refresh(
            first, tiny_workload.ground_truth, tiny_workload.train_ids
        )
        assert not stats1.incremental
        assert stats1.n_new_trips == len(first)

        stats2 = svc.refresh(
            second, tiny_workload.ground_truth, tiny_workload.train_ids
        )
        assert stats2.incremental
        assert stats2.n_new_trips == len(second)
        assert stats2.n_trips == len(first) + len(second)
        # O(new data): extraction only ran over the second batch.
        assert stats2.counters["stay_point_extraction.trips"] == len(second)
        assert len(svc.store) >= stats1.n_addresses_inferred

    def test_overlapping_refresh_absorbs_only_new(self, tiny_workload, split_batches):
        first, second = split_batches
        svc = DeliveryLocationService(
            tiny_workload.addresses,
            tiny_workload.projection,
            config=DLInfMAConfig(selector="maxtc-ilc"),
        )
        svc.refresh(first, tiny_workload.ground_truth, tiny_workload.train_ids)
        # Resend everything: only the unseen half is new work.
        stats = svc.refresh(
            list(tiny_workload.trips), tiny_workload.ground_truth, tiny_workload.train_ids
        )
        assert stats.incremental
        assert stats.n_new_trips == len(second)
        assert stats.n_trips == len(tiny_workload.trips)


class TestRefreshDrift:
    def test_drift_tracked_across_refreshes(self, tiny_workload):
        svc = DeliveryLocationService(
            tiny_workload.addresses,
            tiny_workload.projection,
            config=DLInfMAConfig(selector="maxtc-ilc"),
        )
        first = svc.refresh(
            tiny_workload.trips, tiny_workload.ground_truth, tiny_workload.train_ids
        )
        # No baseline yet: the first refresh cannot report drift.
        assert first.drift == {}
        assert not first.drifted
        # Resending the identical trips absorbs nothing new, so the pool
        # fingerprint is unchanged and the refresh must NOT flag drift.
        second = svc.refresh(
            list(tiny_workload.trips),
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
        )
        assert "pool" in second.drift
        assert second.drift["pool"]["drifted"] is False
        assert not second.drifted
        assert second.drift["pool"]["dimensions"]
