"""Fallback-chain coverage in isolation: each tier's ``source`` label.

The obs histogram ``service_query_latency_seconds`` is labeled by
``QueryResult.source.value``; these tests pin the three tier labels at
the store level and assert the histogram actually receives them when
queries flow through the service facade.
"""

import pytest

from repro.apps import (
    DeliveryLocationService,
    DeliveryLocationStore,
    QuerySource,
)
from repro.obs import MetricsRegistry, get_registry, set_registry
from tests.core.helpers import PROJ, make_address, point_at


@pytest.fixture()
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield get_registry()
    finally:
        set_registry(previous)


@pytest.fixture()
def tiers():
    """A world where each tier is the unique answer for one probe."""
    addresses = {
        "hit": make_address("hit", "b-located", (0.0, 0.0)),
        "sibling": make_address("sibling", "b-located", (4.0, 0.0)),
        "cold": make_address("cold", "b-located", (8.0, 0.0)),
        "orphan": make_address("orphan", "b-empty", (400.0, 0.0)),
    }
    locations = {
        "hit": point_at(15.0, 0.0),
        "sibling": point_at(15.0, 0.0),
    }
    return addresses, locations


class TestTierLabels:
    def test_address_tier_label(self, tiers):
        addresses, locations = tiers
        store = DeliveryLocationStore(locations, addresses)
        result = store.query(addresses["hit"])
        assert result.source == QuerySource.ADDRESS
        assert result.source.value == "address"
        assert result.location == locations["hit"]

    def test_building_tier_label(self, tiers):
        addresses, locations = tiers
        store = DeliveryLocationStore(locations, addresses)
        # "cold" was never inferred, but its building has located
        # siblings: the modal sibling location answers.
        result = store.query(addresses["cold"])
        assert result.source == QuerySource.BUILDING
        assert result.source.value == "building"
        # The building table rounds coordinates to 6 decimals when voting.
        assert result.location.lng == pytest.approx(locations["hit"].lng, abs=1e-6)
        assert result.location.lat == pytest.approx(locations["hit"].lat, abs=1e-6)

    def test_geocode_tier_label(self, tiers):
        addresses, locations = tiers
        store = DeliveryLocationStore(locations, addresses)
        # "orphan" has neither an inferred location nor located
        # building-mates: the raw geocode is the last resort.
        result = store.query(addresses["orphan"])
        assert result.source == QuerySource.GEOCODE
        assert result.source.value == "geocode"
        assert result.location == addresses["orphan"].geocode

    def test_all_labels_are_distinct_and_stable(self):
        assert {s.value for s in QuerySource} == {
            "address", "building", "geocode", "model",
        }


class TestServiceHistogramLabels:
    def test_each_tier_feeds_its_own_histogram_series(
        self, tiers, fresh_registry
    ):
        addresses, locations = tiers
        service = DeliveryLocationService(addresses, PROJ)
        service.store.update(locations)
        service.query_id("hit")         # address tier
        service.query_id("cold")        # building tier
        service.query_id("orphan")      # geocode tier
        service.query(addresses["hit"])  # address tier again, by object
        histogram = fresh_registry.histogram("service_query_latency_seconds")
        assert histogram.count(source="address") == 2
        assert histogram.count(source="building") == 1
        assert histogram.count(source="geocode") == 1
