import threading

import pytest

from repro.apps import DeliveryLocationStore, QuerySource, UnknownAddressError
from repro.geo import Point
from tests.core.helpers import make_address, point_at


@pytest.fixture()
def store():
    addresses = {
        "a1": make_address("a1", "b1", (0.0, 0.0)),
        "a2": make_address("a2", "b1", (5.0, 0.0)),
        "a3": make_address("a3", "b1", (10.0, 0.0)),
        "a4": make_address("a4", "b2", (500.0, 0.0)),
    }
    locations = {
        "a1": point_at(20.0, 0.0),
        "a2": point_at(20.0, 0.0),
        "a3": point_at(300.0, 0.0),  # locker preference
    }
    return DeliveryLocationStore(locations, addresses), addresses


class TestQueryFallback:
    def test_address_tier(self, store):
        s, addresses = store
        result = s.query(addresses["a1"])
        assert result.source == QuerySource.ADDRESS
        assert result.location == point_at(20.0, 0.0)

    def test_building_tier_uses_most_common_location(self, store):
        s, _ = store
        # Unseen address in b1: the modal location (2 votes for the
        # doorstep at 20 m) wins over the locker.
        newcomer = make_address("new", "b1", (2.0, 2.0))
        result = s.query(newcomer)
        assert result.source == QuerySource.BUILDING
        x, _ = __import__("tests.core.helpers", fromlist=["PROJ"]).PROJ.to_xy(
            result.location.lng, result.location.lat
        )
        assert x == pytest.approx(20.0, abs=1.0)

    def test_geocode_tier(self, store):
        s, _ = store
        stranger = make_address("s", "unknown-building", (42.0, 0.0))
        result = s.query(stranger)
        assert result.source == QuerySource.GEOCODE
        assert result.location == stranger.geocode

    def test_query_id(self, store):
        s, _ = store
        assert s.query_id("a1").source == QuerySource.ADDRESS
        with pytest.raises(KeyError):
            s.query_id("missing")

    def test_query_id_raises_typed_unknown_address(self, store):
        s, _ = store
        with pytest.raises(UnknownAddressError) as excinfo:
            s.query_id("missing")
        assert excinfo.value.address_id == "missing"
        assert "missing" in str(excinfo.value)

    def test_update_refreshes_building_table(self, store):
        s, _ = store
        # Flip the b1 majority to the locker.
        s.update({"a1": point_at(300.0, 0.0), "a2": point_at(300.0, 0.0)})
        newcomer = make_address("new", "b1", (2.0, 2.0))
        result = s.query(newcomer)
        from tests.core.helpers import PROJ

        x, _ = PROJ.to_xy(result.location.lng, result.location.lat)
        assert x == pytest.approx(300.0, abs=1.0)

    def test_len(self, store):
        s, _ = store
        assert len(s) == 3

    def test_building_locations_copy(self, store):
        s, _ = store
        table = s.building_locations
        table["b1"] = Point(0.0, 0.0)
        assert s.building_locations["b1"] != Point(0.0, 0.0)


class TestConcurrentUpdate:
    """Regression: update swaps complete tables; readers never see a
    half-mutated dict (the old implementation mutated in place while a
    concurrent query could be iterating the building aggregation)."""

    def test_query_hammered_during_updates(self):
        n_addresses = 64
        addresses = {
            f"a{i}": make_address(f"a{i}", f"b{i % 8}", (float(i), 0.0))
            for i in range(n_addresses)
        }
        base = {f"a{i}": point_at(float(i), 10.0) for i in range(n_addresses)}
        moved = {f"a{i}": point_at(float(i), 90.0) for i in range(n_addresses)}
        store = DeliveryLocationStore(base, addresses)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            i = 0
            while not stop.is_set():
                try:
                    result = store.query(addresses[f"a{i % n_addresses}"])
                    assert result.source == QuerySource.ADDRESS
                    # Either generation is fine; a torn one is not.
                    assert result.location in (
                        base[f"a{i % n_addresses}"],
                        moved[f"a{i % n_addresses}"],
                    )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for round_no in range(300):
            store.update(moved if round_no % 2 == 0 else base)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
