import pytest

from repro.apps import DeliveryLocationStore, QuerySource
from repro.geo import Point
from tests.core.helpers import make_address, point_at


@pytest.fixture()
def store():
    addresses = {
        "a1": make_address("a1", "b1", (0.0, 0.0)),
        "a2": make_address("a2", "b1", (5.0, 0.0)),
        "a3": make_address("a3", "b1", (10.0, 0.0)),
        "a4": make_address("a4", "b2", (500.0, 0.0)),
    }
    locations = {
        "a1": point_at(20.0, 0.0),
        "a2": point_at(20.0, 0.0),
        "a3": point_at(300.0, 0.0),  # locker preference
    }
    return DeliveryLocationStore(locations, addresses), addresses


class TestQueryFallback:
    def test_address_tier(self, store):
        s, addresses = store
        result = s.query(addresses["a1"])
        assert result.source == QuerySource.ADDRESS
        assert result.location == point_at(20.0, 0.0)

    def test_building_tier_uses_most_common_location(self, store):
        s, _ = store
        # Unseen address in b1: the modal location (2 votes for the
        # doorstep at 20 m) wins over the locker.
        newcomer = make_address("new", "b1", (2.0, 2.0))
        result = s.query(newcomer)
        assert result.source == QuerySource.BUILDING
        x, _ = __import__("tests.core.helpers", fromlist=["PROJ"]).PROJ.to_xy(
            result.location.lng, result.location.lat
        )
        assert x == pytest.approx(20.0, abs=1.0)

    def test_geocode_tier(self, store):
        s, _ = store
        stranger = make_address("s", "unknown-building", (42.0, 0.0))
        result = s.query(stranger)
        assert result.source == QuerySource.GEOCODE
        assert result.location == stranger.geocode

    def test_query_id(self, store):
        s, _ = store
        assert s.query_id("a1").source == QuerySource.ADDRESS
        with pytest.raises(KeyError):
            s.query_id("missing")

    def test_update_refreshes_building_table(self, store):
        s, _ = store
        # Flip the b1 majority to the locker.
        s.update({"a1": point_at(300.0, 0.0), "a2": point_at(300.0, 0.0)})
        newcomer = make_address("new", "b1", (2.0, 2.0))
        result = s.query(newcomer)
        from tests.core.helpers import PROJ

        x, _ = PROJ.to_xy(result.location.lng, result.location.lat)
        assert x == pytest.approx(300.0, abs=1.0)

    def test_len(self, store):
        s, _ = store
        assert len(s) == 3

    def test_building_locations_copy(self, store):
        s, _ = store
        table = s.building_locations
        table["b1"] = Point(0.0, 0.0)
        assert s.building_locations["b1"] != Point(0.0, 0.0)
