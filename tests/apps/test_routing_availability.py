import numpy as np
import pytest

from repro.apps import (
    AvailabilityModel,
    DeliveryLocationStore,
    RoutePlanner,
    actual_delivery_times,
    nearest_neighbor_order,
    plan_route,
    route_length,
    two_opt,
)
from repro.core import extract_trip_stay_points
from tests.core.helpers import PROJ, make_address, make_trip, point_at


class TestTSP:
    def test_empty_and_single(self):
        assert plan_route(np.empty((0, 2)), (0, 0)) == []
        assert plan_route(np.array([[5.0, 5.0]]), (0, 0)) == [0]

    def test_route_length_math(self):
        points = np.array([[3.0, 4.0], [3.0, 8.0]])
        assert route_length(points, [0, 1], (0.0, 0.0)) == pytest.approx(9.0)

    def test_nearest_neighbor_orders_line(self):
        points = np.array([[30.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        assert nearest_neighbor_order(points, (0.0, 0.0)) == [1, 2, 0]

    def test_two_opt_fixes_crossing(self):
        # NN from origin can zigzag; 2-opt must untangle to monotone order.
        points = np.array([[10.0, 0.0], [12.0, 10.0], [20.0, 0.0], [22.0, 10.0]])
        nn = nearest_neighbor_order(points, (0.0, 0.0))
        improved = two_opt(points, nn, (0.0, 0.0))
        assert route_length(points, improved, (0.0, 0.0)) <= route_length(
            points, nn, (0.0, 0.0)
        )

    def test_plan_route_beats_random_orders(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 500, size=(12, 2))
        tour = plan_route(points, (0.0, 0.0))
        assert sorted(tour) == list(range(12))
        our_len = route_length(points, tour, (0.0, 0.0))
        for _ in range(20):
            perm = list(rng.permutation(12))
            assert our_len <= route_length(points, perm, (0.0, 0.0)) + 1e-9

    def test_route_planner_resolves_store_locations(self):
        addresses = {
            "a1": make_address("a1", "b1", (0.0, 0.0)),
            "a2": make_address("a2", "b2", (0.0, 0.0)),
        }
        store = DeliveryLocationStore(
            {"a1": point_at(100.0, 0.0), "a2": point_at(50.0, 0.0)}, addresses
        )
        planner = RoutePlanner(store, PROJ)
        order, length = planner.plan([addresses["a1"], addresses["a2"]], (0.0, 0.0))
        assert [a.address_id for a in order] == ["a2", "a1"]
        assert length == pytest.approx(100.0, abs=1.0)

    def test_route_planner_empty(self):
        store = DeliveryLocationStore({}, {})
        order, length = RoutePlanner(store, PROJ).plan([], (0.0, 0.0))
        assert order == [] and length == 0.0


class TestActualDeliveryTimes:
    def test_recovers_time_despite_delayed_confirmation(self):
        """A waybill confirmed at the second stop still maps to the stay
        at the inferred location (the first stop)."""
        trip = make_trip(
            "t1", "c1",
            stops=[(100.0, 0.0, 60.0, 120.0), (500.0, 0.0, 300.0, 120.0)],
            waybills=[("a1", 380.0)],  # delayed confirmation
        )
        stays = extract_trip_stay_points([trip])
        times = actual_delivery_times(
            [trip], stays, {"a1": point_at(100.0, 0.0)}, PROJ
        )
        assert len(times["a1"]) == 1
        # Actual delivery happened during the first dwell (~60..180 s).
        assert 50.0 <= times["a1"][0] <= 200.0

    def test_recorded_fallback_when_no_stay_nearby(self):
        trip = make_trip(
            "t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 150.0)]
        )
        stays = extract_trip_stay_points([trip])
        times = actual_delivery_times(
            [trip], stays, {"a1": point_at(2_000.0, 0.0)}, PROJ, radius_m=30.0
        )
        assert times["a1"] == [150.0]

    def test_unknown_address_skipped(self):
        trip = make_trip("t1", "c1", stops=[(100.0, 0.0, 60.0, 120.0)], waybills=[("a1", 150.0)])
        stays = extract_trip_stay_points([trip])
        assert actual_delivery_times([trip], stays, {}, PROJ) == {}


class TestAvailabilityModel:
    def test_profile_peaks_at_delivery_hour(self):
        # Deliveries at 10:00 on several days.
        times = [day * 86_400.0 + 10 * 3_600.0 for day in range(10)]
        model = AvailabilityModel().fit({"a1": times})
        profile = model.profile("a1")
        hourly = profile.hourly()
        assert hourly.argmax() == 10

    def test_windows_detects_contiguous_block(self):
        times = []
        for day in range(7):
            for hour in (9, 10, 11):
                times.append(day * 86_400.0 + hour * 3_600.0)
        profile = AvailabilityModel().fit({"a": times}).profile("a")
        windows = profile.windows(threshold=0.5)
        assert windows == [(9, 12)]

    def test_weekday_resolution(self):
        # Deliveries only on weekday 0.
        times = [0 * 86_400.0 + 14 * 3_600.0, 7 * 86_400.0 + 14 * 3_600.0]
        profile = AvailabilityModel().fit({"a": times}).profile("a")
        assert profile.prob(0, 14) > profile.prob(3, 14)

    def test_unknown_address(self):
        model = AvailabilityModel().fit({})
        with pytest.raises(KeyError):
            model.profile("ghost")

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            AvailabilityModel(smoothing=-1.0)
