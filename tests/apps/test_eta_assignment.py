import numpy as np
import pytest

from repro.apps import (
    AssignmentResult,
    DeliveryLocationStore,
    ETAEstimator,
    ParcelAllocator,
    estimate_courier_speed,
)
from tests.core.helpers import PROJ, make_address, make_trip, point_at


@pytest.fixture()
def line_store():
    addresses = {
        f"a{i}": make_address(f"a{i}", f"b{i}", (100.0 * (i + 1), 0.0)) for i in range(4)
    }
    locations = {f"a{i}": point_at(100.0 * (i + 1), 0.0) for i in range(4)}
    return DeliveryLocationStore(locations, addresses), addresses


class TestETAEstimator:
    def test_sequential_etas(self, line_store):
        store, addresses = line_store
        est = ETAEstimator(store, PROJ, speed_mps=10.0, default_dwell_s=60.0)
        tour = [addresses["a0"], addresses["a1"]]
        etas = est.estimate(tour, start_xy=(0.0, 0.0))
        # 100 m at 10 m/s = 10 s to a0; dwell 60; +100 m = 10 s to a1.
        assert etas[0].eta_s == pytest.approx(10.0, abs=1.0)
        assert etas[0].etd_s == pytest.approx(70.0, abs=1.0)
        assert etas[1].eta_s == pytest.approx(80.0, abs=1.5)

    def test_dwell_overrides(self, line_store):
        store, addresses = line_store
        est = ETAEstimator(
            store, PROJ, speed_mps=10.0,
            dwell_s_by_address={"a0": 300.0}, default_dwell_s=60.0,
        )
        etas = est.estimate([addresses["a0"], addresses["a1"]], (0.0, 0.0))
        assert etas[0].etd_s - etas[0].eta_s == pytest.approx(300.0)

    def test_evaluate_against_actual(self, line_store):
        store, addresses = line_store
        est = ETAEstimator(store, PROJ, speed_mps=10.0)
        etas = est.estimate([addresses["a0"]], (0.0, 0.0))
        err = est.evaluate_against_actual(etas, {"a0": etas[0].eta_s + 30.0})
        assert err == pytest.approx(30.0)
        with pytest.raises(ValueError):
            est.evaluate_against_actual(etas, {})

    def test_validation(self, line_store):
        store, _ = line_store
        with pytest.raises(ValueError):
            ETAEstimator(store, PROJ, speed_mps=0.0)
        with pytest.raises(ValueError):
            ETAEstimator(store, PROJ, default_dwell_s=-1.0)

    def test_estimate_courier_speed_from_trips(self):
        trip = make_trip("t1", "c1", stops=[(600.0, 0.0, 200.0, 120.0)], waybills=[("a1", 250.0)])
        speed = estimate_courier_speed([trip])
        # Helper trips travel at 5 m/s in make_trip.
        assert 2.0 < speed < 8.0

    def test_estimate_speed_default_when_no_data(self):
        assert estimate_courier_speed([], default_mps=3.3) == 3.3


class TestParcelAllocator:
    def _spread_store(self, n=10):
        addresses = {}
        locations = {}
        rng = np.random.default_rng(0)
        for i in range(n):
            # Two geographic lobes.
            cx = 0.0 if i % 2 == 0 else 2_000.0
            x, y = cx + rng.uniform(-100, 100), rng.uniform(-100, 100)
            aid = f"a{i}"
            addresses[aid] = make_address(aid, f"b{i}", (x, y))
            locations[aid] = point_at(x, y)
        return DeliveryLocationStore(locations, addresses), list(addresses.values())

    def test_balanced_two_couriers(self):
        store, addresses = self._spread_store()
        allocator = ParcelAllocator(store, PROJ)
        result = allocator.allocate(addresses, ["c1", "c2"], start_xy=(1_000.0, 0.0))
        assert isinstance(result, AssignmentResult)
        assigned = [a.address_id for lst in result.assignment.values() for a in lst]
        assert sorted(assigned) == sorted(a.address_id for a in addresses)
        # Geographic lobes should separate: each courier's tour much
        # shorter than a single courier doing everything.
        single = allocator.allocate(addresses, ["solo"], start_xy=(1_000.0, 0.0))
        assert result.makespan_m < single.makespan_m

    def test_empty_batch(self):
        store, _ = self._spread_store(2)
        allocator = ParcelAllocator(store, PROJ)
        result = allocator.allocate([], ["c1", "c2"], (0.0, 0.0))
        assert result.makespan_m == 0.0
        assert result.total_m == 0.0

    def test_more_couriers_than_addresses(self):
        store, addresses = self._spread_store(2)
        allocator = ParcelAllocator(store, PROJ)
        result = allocator.allocate(addresses, ["c1", "c2", "c3"], (0.0, 0.0))
        assigned = [a for lst in result.assignment.values() for a in lst]
        assert len(assigned) == 2

    def test_no_couriers_rejected(self):
        store, addresses = self._spread_store(2)
        with pytest.raises(ValueError):
            ParcelAllocator(store, PROJ).allocate(addresses, [], (0.0, 0.0))
