"""Store edge cases beyond the fallback happy paths."""

import pytest

from repro.apps import DeliveryLocationStore, QuerySource
from repro.geo import Point
from tests.core.helpers import make_address, point_at


class TestStoreEdges:
    def test_empty_store_geocodes_everything(self):
        store = DeliveryLocationStore({}, {})
        probe = make_address("x", "bX", (0.0, 0.0))
        result = store.query(probe)
        assert result.source == QuerySource.GEOCODE
        assert result.location == probe.geocode

    def test_location_for_unknown_address_ignored_in_building_table(self):
        # A location keyed by an address missing from the book cannot vote.
        store = DeliveryLocationStore(
            {"ghost": point_at(0.0, 0.0)},
            {"a1": make_address("a1", "b1", (0.0, 0.0))},
        )
        assert store.building_locations == {}
        # But the address tier still answers for the ghost id via query_id?
        with pytest.raises(KeyError):
            store.query_id("ghost")

    def test_tie_between_locations_resolves_deterministically(self):
        addresses = {
            "a1": make_address("a1", "b1", (0.0, 0.0)),
            "a2": make_address("a2", "b1", (1.0, 0.0)),
        }
        store = DeliveryLocationStore(
            {"a1": point_at(10.0, 0.0), "a2": point_at(50.0, 0.0)}, addresses
        )
        first = store.building_locations["b1"]
        for _ in range(5):
            again = DeliveryLocationStore(
                {"a1": point_at(10.0, 0.0), "a2": point_at(50.0, 0.0)}, addresses
            ).building_locations["b1"]
            assert again == first

    def test_update_with_new_address(self):
        addresses = {"a1": make_address("a1", "b1", (0.0, 0.0))}
        store = DeliveryLocationStore({}, addresses)
        assert store.query_id("a1").source == QuerySource.GEOCODE
        store.update({"a1": point_at(25.0, 0.0)})
        assert store.query_id("a1").source == QuerySource.ADDRESS
        assert len(store) == 1
