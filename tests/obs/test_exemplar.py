"""Exemplars: value objects, histogram attachment, OpenMetrics rendering."""

import pytest

from repro.obs.exemplar import (
    Exemplar,
    exemplars_enabled,
    pick_latest,
    set_exemplars_enabled,
)
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def _exemplars_on():
    set_exemplars_enabled(True)
    yield
    set_exemplars_enabled(True)


class TestExemplar:
    def test_dict_roundtrip(self):
        ex = Exemplar(0.25, trace_id="abc123", provenance_key="w0:00000007",
                      ts_unix=1234.5)
        assert Exemplar.from_dict(ex.to_dict()) == ex

    def test_labels_text_is_openmetrics_shaped(self):
        ex = Exemplar(0.25, trace_id="abc", provenance_key="k1", ts_unix=1.0)
        text = ex.labels_text()
        assert text.startswith("{") and text.endswith("}")
        assert 'trace_id="abc"' in text
        assert 'provenance_key="k1"' in text

    def test_pick_latest_prefers_higher_timestamp(self):
        old = Exemplar(1.0, trace_id="a", provenance_key="x", ts_unix=10.0)
        new = Exemplar(2.0, trace_id="b", provenance_key="y", ts_unix=20.0)
        assert pick_latest(old, new) is new
        assert pick_latest(new, old) is new
        assert pick_latest(None, old) is old
        assert pick_latest(old, None) is old
        assert pick_latest(None, None) is None


class TestHistogramExemplars:
    def _hist(self):
        return Histogram("lat", "latency", buckets=(0.1, 1.0))

    def test_observe_attaches_to_the_right_bucket(self):
        h = self._hist()
        h.observe(0.05, exemplar=Exemplar.now(0.05, "t1", "k1"))
        h.observe(0.5, exemplar=Exemplar.now(0.5, "t2", "k2"))
        h.observe(5.0, exemplar=Exemplar.now(5.0, "t3", "k3"))
        stored = h.exemplars()
        assert [e.trace_id for e in stored] == ["t1", "t2", "t3"]

    def test_disabled_flag_skips_storage(self):
        h = self._hist()
        set_exemplars_enabled(False)
        assert not exemplars_enabled()
        h.observe(0.05, exemplar=Exemplar.now(0.05, "t1", "k1"))
        assert h.exemplars() == [None, None, None]

    def test_samples_include_exemplars_only_when_present(self):
        h = self._hist()
        h.observe(0.05)
        assert all("exemplars" not in s for s in h.samples())
        h.observe(0.5, exemplar=Exemplar.now(0.5, "t2", "k2"))
        with_ex = [s for s in h.samples() if "exemplars" in s]
        assert with_ex, "exemplar-bearing sample missing"

    def test_merge_exemplars_newest_wins(self):
        h = self._hist()
        h.observe(0.05,
                  exemplar=Exemplar(0.05, "old", "k", ts_unix=1.0))
        h.merge_exemplars(
            (Exemplar(0.06, "new", "k2", ts_unix=2.0), None, None)
        )
        assert h.exemplars()[0].trace_id == "new"

    def test_merge_exemplars_rejects_wrong_arity(self):
        h = self._hist()
        with pytest.raises(ValueError):
            h.merge_exemplars((None,))

    def test_prometheus_text_carries_exemplar_suffix(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05, exemplar=Exemplar(0.05, "tr", "pk", ts_unix=3.0))
        text = registry.to_prometheus(exemplars=True)
        lines = [l for l in text.splitlines() if "# {" in l]
        assert lines, text
        assert 'trace_id="tr"' in lines[0]
        plain = registry.to_prometheus()
        assert "# {" not in plain
