"""Flight recorder: bounded ring, anomaly triggers, black-box dumps."""

import json

import pytest

from repro.obs import events as events_mod
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    KNOWN_TRIGGERS,
    FlightRecorder,
    configure_recorder,
    get_recorder,
    load_blackbox,
    render_blackbox,
    reset_recorder,
)


@pytest.fixture(autouse=True)
def _fresh_recorder():
    reset_recorder()
    yield
    reset_recorder()


class TestRing:
    def test_ring_is_bounded_and_ordered(self):
        recorder = FlightRecorder(capacity=4, registry=MetricsRegistry())
        for i in range(10):
            recorder.note_event(f"e{i}")
        names = [e["name"] for e in recorder.entries()]
        assert names == ["e6", "e7", "e8", "e9"]
        assert recorder.n_seen == 10

    def test_note_kinds_are_tagged(self):
        recorder = FlightRecorder(capacity=8, registry=MetricsRegistry())
        recorder.note_span({"name": "s", "trace_id": "t", "duration_s": 0.1})
        recorder.note_event("ev", level="warning", fields={"k": 1})
        recorder.note_provenance("main:00000001", "a1", "ok")
        kinds = [e["kind"] for e in recorder.entries()]
        assert kinds == ["span", "event", "provenance"]

    def test_dump_counters_preseeded_at_zero(self):
        registry = MetricsRegistry()
        FlightRecorder(capacity=4, registry=registry)
        doc = registry.to_dict()
        family = next(
            m for m in doc["metrics"]
            if m["name"] == "flightrecorder_dumps_total"
        )
        triggers = {s["labels"]["trigger"] for s in family["samples"]}
        assert triggers == set(KNOWN_TRIGGERS)
        assert all(s["value"] == 0 for s in family["samples"])


class TestTrigger:
    def test_trigger_without_dump_dir_records_but_returns_none(self):
        recorder = FlightRecorder(capacity=8, registry=MetricsRegistry())
        assert recorder.trigger("gate_refusal", context={"tick": 1}) is None
        assert any(
            e["kind"] == "event" and "gate_refusal" in e["name"]
            for e in recorder.entries()
        )

    def test_dump_is_atomic_json_with_ring_and_context(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8, dump_dir=tmp_path, registry=MetricsRegistry()
        )
        recorder.note_event("before")
        path = recorder.trigger(
            "slo_violation",
            context={"why": "p99"},
            registry_doc={"metrics": []},
            slo={"ok": False, "results": []},
            provenance=[{"key": "main:00000001", "address_id": "a1",
                         "status": "ok"}],
        )
        assert path is not None and path.name == "blackbox-slo_violation-0000.json"
        assert not list(tmp_path.glob("*.tmp"))
        payload = load_blackbox(path)
        assert payload["trigger"] == "slo_violation"
        assert payload["context"]["why"] == "p99"
        assert any(e["name"] == "before" for e in payload["ring"])
        assert payload["provenance"][0]["key"] == "main:00000001"

    def test_max_dumps_cap_still_counts(self, tmp_path):
        registry = MetricsRegistry()
        recorder = FlightRecorder(
            capacity=8, dump_dir=tmp_path, max_dumps=2, registry=registry
        )
        paths = [recorder.trigger("worker_crash") for _ in range(5)]
        assert sum(1 for p in paths if p is not None) == 2
        assert len(list(tmp_path.glob("blackbox-*.json"))) == 2
        doc = registry.to_dict()
        family = next(
            m for m in doc["metrics"]
            if m["name"] == "flightrecorder_dumps_total"
        )
        crash = next(
            s["value"] for s in family["samples"]
            if s["labels"]["trigger"] == "worker_crash"
        )
        assert crash == 5

    def test_render_blackbox_is_readable(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8, dump_dir=tmp_path, registry=MetricsRegistry()
        )
        path = recorder.trigger(
            "gate_refusal",
            context={"served_version": 3, "rejected_candidate_version": 4},
            slo={"ok": False,
                 "results": [{"ok": False, "name": "p99",
                              "observed": 2.0, "objective": 1.0}]},
        )
        text = render_blackbox(load_blackbox(path))
        assert "gate_refusal" in text
        assert "served_version" in text and "3" in text
        assert "p99" in text


class TestEventHook:
    def test_anomaly_event_triggers_recorder(self, tmp_path):
        configure_recorder(capacity=16, dump_dir=tmp_path,
                           registry=MetricsRegistry())
        events_mod.event(
            "slo_violation", level="warning", component="health", slo="p99"
        )
        dumps = list(tmp_path.glob("blackbox-slo_violation-*.json"))
        assert len(dumps) == 1
        payload = load_blackbox(dumps[0])
        assert payload["context"]["component"] == "health"

    def test_ordinary_events_are_noted_not_dumped(self, tmp_path):
        recorder = configure_recorder(
            capacity=16, dump_dir=tmp_path, registry=MetricsRegistry()
        )
        events_mod.event("stream_promotion", component="stream", version=2)
        assert not list(tmp_path.glob("blackbox-*.json"))
        assert any(
            e["kind"] == "event" and e["name"] == "stream_promotion"
            for e in recorder.entries()
        )

    def test_get_recorder_is_a_singleton_until_reset(self):
        a = get_recorder()
        assert get_recorder() is a
        reset_recorder()
        assert get_recorder() is not a
