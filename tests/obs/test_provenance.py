"""Provenance records: minting, retention policy, persistence, merging."""

import json

import pytest

from repro.obs.drift import Fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import (
    PROVENANCE_VERSION,
    ProvenanceRecord,
    ProvenanceRing,
    fingerprint_digest,
    iter_jsonl_tolerant,
    merge_provenance,
    pop_evidence,
    put_evidence,
    read_provenance,
    render_record,
)


def _fill(ring, n, status="ok", confidence=0.9, **fields):
    return [
        ring.mint(f"addr-{i:04d}", status, confidence=confidence, **fields)
        for i in range(n)
    ]


class TestRecord:
    def test_dict_roundtrip(self):
        record = ProvenanceRecord(
            key="main:00000001", address_id="a1", status="ok",
            lng=116.4, lat=39.9, source="model", cache_state="miss",
            confidence=0.83,
            candidates=[{"candidate_id": "c1", "score": 0.8, "rank": 1}],
            stays=[{"candidate_id": "c1", "weight": 3.0}],
            snapshot_version=7, model_fingerprint="matcher:abc",
            pool_fingerprint="pool:def", trace_id="t" * 16,
        )
        back = ProvenanceRecord.from_dict(record.to_dict())
        assert back == record
        assert back.version == PROVENANCE_VERSION

    def test_fingerprint_digest_is_stable_and_kind_prefixed(self):
        fp = Fingerprint(kind="pool", dists={"w": (1, 2, 3)})
        d1, d2 = fingerprint_digest(fp), fingerprint_digest(fp)
        assert d1 == d2
        assert d1.startswith("pool:")

    def test_render_mentions_the_load_bearing_fields(self):
        record = ProvenanceRecord(
            key="main:00000009", address_id="a9", status="ok",
            lng=1.0, lat=2.0, source="model", cache_state="miss",
            confidence=0.5,
            candidates=[
                {"candidate_id": "c2", "score": 0.1, "rank": 2,
                 "weight": 1.0},
                {"candidate_id": "c1", "score": 0.9, "rank": 1,
                 "weight": 2.0},
            ],
            stays=[{"candidate_id": "c1", "weight": 2.0,
                    "avg_duration_s": 300.0, "n_couriers": 3}],
            snapshot_version=4, model_fingerprint="matcher:aa",
            pool_fingerprint="pool:bb", trace_id="abcd",
        )
        text = render_record(record)
        assert "a9" in text and "model" in text
        assert "matcher:aa" in text and "pool:bb" in text
        assert "c1" in text and "abcd" in text


class TestRingRetention:
    def test_always_keeps_errors_and_low_confidence(self):
        ring = ProvenanceRing(capacity=4, keep_capacity=8)
        _fill(ring, 50)
        bad = ring.mint("bad-id", "error", error="boom")
        shaky = ring.mint("shaky", "ok", confidence=0.05)
        unknown = ring.mint("nope", "unknown_address")
        keys = {r.key for r in ring.records()}
        assert {bad.key, shaky.key, unknown.key} <= keys

    def test_reservoir_is_deterministic(self):
        def run():
            ring = ProvenanceRing(capacity=8)
            _fill(ring, 200)
            return [r.key for r in ring.records()]

        assert run() == run()

    def test_counts_match_total_minted(self):
        ring = ProvenanceRing(capacity=8, registry=MetricsRegistry())
        _fill(ring, 100)
        counts = ring.counts()
        assert counts["kept"] + counts["sampled_out"] == 100
        assert counts["kept"] >= 8  # accepted-at-mint, ring-bounded after

    def test_counters_preseeded_at_zero(self):
        registry = MetricsRegistry()
        ProvenanceRing(capacity=4, registry=registry)
        doc = registry.to_dict()
        family = next(
            m for m in doc["metrics"]
            if m["name"] == "provenance_records_total"
        )
        values = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in family["samples"]
        }
        assert values[(("result", "kept"),)] == 0
        assert values[(("result", "sampled_out"),)] == 0

    def test_find_returns_newest_first(self):
        ring = ProvenanceRing(capacity=32)
        first = ring.mint("dup", "ok", confidence=0.9, snapshot_version=1)
        second = ring.mint("dup", "ok", confidence=0.9, snapshot_version=2)
        found = ring.find("dup")
        assert [r.key for r in found] == [second.key, first.key]


class TestEvidenceChannel:
    def test_put_pop_is_one_shot(self):
        put_evidence("a1", {"candidates": [{"candidate_id": "c1"}]})
        assert pop_evidence("a1")["candidates"][0]["candidate_id"] == "c1"
        assert pop_evidence("a1") is None

    def test_mint_folds_evidence_fields(self):
        ring = ProvenanceRing(capacity=8)
        record = ring.mint(
            "a2", "ok", confidence=0.9,
            candidates=[{"candidate_id": "c9", "score": 1.0, "rank": 1}],
            model_fingerprint="matcher:ff", pool_fingerprint="pool:ee",
        )
        assert record.candidates[0]["candidate_id"] == "c9"
        assert record.model_fingerprint == "matcher:ff"


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        ring = ProvenanceRing(capacity=16)
        minted = _fill(ring, 10, snapshot_version=3)
        path = ring.write_jsonl(tmp_path / "provenance-w0.jsonl")
        records, n_torn = read_provenance(path)
        assert n_torn == 0
        assert {r.key for r in records} == {m.key for m in minted}

    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        ring = ProvenanceRing(capacity=16)
        _fill(ring, 5)
        path = ring.write_jsonl(tmp_path / "p.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "main:fffffff"')  # crash mid-line
        records, n_torn = read_provenance(path)
        assert len(records) == 5
        assert n_torn == 1

    def test_future_version_records_are_skipped_not_fatal(self, tmp_path):
        ring = ProvenanceRing(capacity=16)
        _fill(ring, 2)
        path = ring.write_jsonl(tmp_path / "p.jsonl")
        doc = _fill(ProvenanceRing(capacity=4), 1)[0].to_dict()
        doc["version"] = PROVENANCE_VERSION + 1
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(doc) + "\n")
        records, n_torn = read_provenance(path)
        assert len(records) == 2
        assert n_torn == 1

    def test_iter_jsonl_tolerant_on_binary_garbage(self, tmp_path):
        path = tmp_path / "g.jsonl"
        path.write_bytes(b'{"a": 1}\n\xff\xfe\x00garbage\n{"b": 2}\n')
        docs, n_torn = iter_jsonl_tolerant(path)
        assert docs == [{"a": 1}, {"b": 2}]
        assert n_torn == 1


class TestMerge:
    def test_merge_dedups_newest_wins_and_counts(self, tmp_path):
        r1 = ProvenanceRing(capacity=16, origin="w0")
        r2 = ProvenanceRing(capacity=16, origin="w1")
        _fill(r1, 4)
        _fill(r2, 6)
        p1 = r1.write_jsonl(tmp_path / "provenance-worker-0.jsonl")
        p2 = r2.write_jsonl(tmp_path / "provenance-worker-1.jsonl")
        out = tmp_path / "merged.jsonl"
        records, stats = merge_provenance([p1, p2, p1], out=out)
        assert stats["n_files"] == 3
        assert stats["n_records"] == 10  # duplicate file dedup'd by key
        assert out.exists()
        again, stats2 = merge_provenance([out])
        assert {r.key for r in again} == {r.key for r in records}

    def test_unreadable_file_is_counted_not_fatal(self, tmp_path):
        ring = ProvenanceRing(capacity=8)
        _fill(ring, 3)
        good = ring.write_jsonl(tmp_path / "good.jsonl")
        records, stats = merge_provenance(
            [good, tmp_path / "missing.jsonl"]
        )
        assert len(records) == 3
        assert stats["n_unreadable_files"] == 1

    def test_merge_nothing_is_empty(self):
        records, stats = merge_provenance([])
        assert records == []
        assert stats["n_records"] == 0
