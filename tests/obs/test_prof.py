"""Sampling profiler: capture, exports, overhead; tracemalloc snapshots."""

import json
import time

import pytest

from repro.obs.prof import (
    MemoryProfiler,
    SamplingProfiler,
    StackProfile,
    active_memory_profiler,
    configure_memory_profiling,
    disable_memory_profiling,
    profile_block,
)


def _spin(seconds: float) -> int:
    """A busy loop the sampler can catch by name."""
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestStackProfile:
    @pytest.fixture()
    def profile(self):
        return StackProfile(
            hz=100.0, duration_s=0.1, n_ticks=10,
            samples={
                ("main.py:main", "work.py:outer", "work.py:inner"): 6,
                ("main.py:main", "work.py:outer"): 4,
            },
        )

    def test_top_self_vs_total(self, profile):
        rows = {frame: (self_s, total_s) for frame, self_s, total_s in profile.top()}
        assert rows["work.py:inner"] == (pytest.approx(0.06), pytest.approx(0.06))
        # outer: leaf on 4 ticks, present on all 10.
        assert rows["work.py:outer"] == (pytest.approx(0.04), pytest.approx(0.10))
        assert rows["main.py:main"][0] == 0.0

    def test_collapsed_format(self, profile):
        lines = profile.to_collapsed().splitlines()
        assert "main.py:main;work.py:outer;work.py:inner 6" in lines
        assert "main.py:main;work.py:outer 4" in lines

    def test_speedscope_document(self, profile):
        doc = profile.to_speedscope(name="unit")
        assert doc["$schema"].endswith("file-format-schema.json")
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert "work.py:inner" in frames
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled" and prof["unit"] == "seconds"
        assert len(prof["samples"]) == len(prof["weights"]) == 2
        assert sum(prof["weights"]) == pytest.approx(0.10)
        # Sample rows index into the shared frame table.
        for row in prof["samples"]:
            assert all(0 <= idx < len(frames) for idx in row)

    def test_save_picks_format_by_suffix(self, profile, tmp_path):
        collapsed = profile.save(tmp_path / "p.collapsed")
        assert ";" in collapsed.read_text()
        speedscope = profile.save(tmp_path / "p.speedscope.json")
        assert json.loads(speedscope.read_text())["profiles"]


class TestSamplingProfiler:
    def test_captures_busy_function(self):
        with profile_block(hz=250) as profiler:
            _spin(0.25)
        profile = profiler.profile()
        assert profile.n_ticks >= 10
        leaves = " ".join(
            frame for stack in profile.samples for frame in stack
        )
        assert "_spin" in leaves

    def test_excludes_its_own_sampler_thread(self):
        with profile_block(hz=200) as profiler:
            _spin(0.1)
        for stack in profiler.profile().samples:
            assert all("_run" != frame.split(":")[-1] or "prof.py" not in frame
                       for frame in stack)

    def test_start_twice_rejected(self):
        profiler = SamplingProfiler().start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            SamplingProfiler().stop()

    def test_bad_hz_rejected(self):
        with pytest.raises(ValueError, match="hz must be > 0"):
            SamplingProfiler(hz=0)

    def test_overhead_is_bounded_at_default_rate(self):
        # Acceptance: sampling at 100 Hz costs a few percent, not tens.
        # Generous 20% bound keeps this robust on loaded CI runners.
        t0 = time.perf_counter()
        _spin(0.2)
        baseline = time.perf_counter() - t0
        profiler = SamplingProfiler(hz=100).start()
        try:
            t0 = time.perf_counter()
            _spin(0.2)
            profiled = time.perf_counter() - t0
        finally:
            profiler.stop()
        assert profiled <= baseline * 1.20


class TestMemoryProfiler:
    def test_snapshots_capture_labels_and_peak(self):
        profiler = MemoryProfiler(top_n=5).start()
        try:
            blob = ["x"] * 200_000
            snap = profiler.snapshot("stage_a")
            assert snap.label == "stage_a"
            assert snap.current_bytes > 0
            assert snap.peak_bytes >= snap.current_bytes > 0
            del blob
            profiler.snapshot("stage_b")
        finally:
            snaps = profiler.stop()
        assert [s.label for s in snaps] == ["stage_a", "stage_b"]

    def test_report_and_save(self, tmp_path):
        profiler = MemoryProfiler(top_n=3).start()
        try:
            profiler.snapshot("only")
        finally:
            profiler.stop()
        path = profiler.save(tmp_path / "mem.json")
        payload = json.loads(path.read_text())
        assert payload["snapshots"][0]["label"] == "only"

    def test_snapshot_before_start_rejected(self):
        with pytest.raises(RuntimeError, match="not started"):
            MemoryProfiler().snapshot("x")

    def test_global_switchboard(self):
        assert active_memory_profiler() is None
        installed = configure_memory_profiling(top_n=0)
        try:
            assert active_memory_profiler() is installed
        finally:
            returned = disable_memory_profiling()
        assert returned is installed
        assert active_memory_profiler() is None

    def test_engine_stage_snapshot_through_run_context(self):
        from repro.engine import RunContext

        configure_memory_profiling(top_n=0)
        try:
            ctx = RunContext(label="unit")
            with ctx.timed("stage_x"):
                _ = list(range(1000))
        finally:
            profiler = disable_memory_profiling()
        assert [s.label for s in profiler.snapshots] == ["unit:stage_x"]
