"""Shared-memory metrics planes: seqlock safety, attach, scrape, merge."""

import struct
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.shm import (
    MetricsPlane,
    PlaneSchemaError,
    SlotSpec,
    merge_snapshots,
    merged_registry,
    scrape_planes,
)

SPECS = (
    SlotSpec("counter", "reqs_total", (("status", "ok"),)),
    SlotSpec("counter", "reqs_total", (("status", "error"),)),
    SlotSpec("gauge", "depth"),
    SlotSpec("histogram", "lat_seconds", buckets=(0.1, 1.0)),
)


@pytest.fixture
def plane(tmp_path):
    p = MetricsPlane.create(str(tmp_path / "metrics-w0.shm"), SPECS,
                            meta={"worker": "0"})
    yield p
    p.close()


class TestSlotSpec:
    def test_histogram_defaults_latency_buckets(self):
        spec = SlotSpec("histogram", "h")
        assert spec.buckets  # filled from DEFAULT_LATENCY_BUCKETS
        assert spec.slot_bytes % 64 == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown slot kind"):
            SlotSpec("summary", "s")

    def test_dict_roundtrip(self):
        spec = SPECS[3]
        assert SlotSpec.from_dict(spec.to_dict()) == spec


class TestWriteReadRoundTrip:
    def test_counter_gauge_histogram(self, plane):
        plane.inc(plane.slot("reqs_total", status="ok"), 3)
        plane.inc(plane.slot("reqs_total", status="error"))
        plane.set(plane.slot("depth"), 7.5)
        h = plane.slot("lat_seconds")
        for v in (0.05, 0.5, 5.0):
            plane.observe(h, v)
        snap = plane.read()
        assert snap.meta == {"worker": "0"}
        assert snap.n_torn == 0
        by = {(s.spec.name, s.spec.labels): s for s in snap.slots}
        assert by[("reqs_total", (("status", "ok"),))].value == 3.0
        assert by[("reqs_total", (("status", "error"),))].value == 1.0
        assert by[("depth", ())].value == 7.5
        hist = by[("lat_seconds", ())]
        assert hist.bucket_counts == (1, 1, 1)
        assert hist.sum == pytest.approx(5.55)
        assert hist.count == 3

    def test_boundary_value_lands_in_le_bucket(self, plane):
        plane.observe(plane.slot("lat_seconds"), 0.1)
        (hist,) = [s for s in plane.read().slots
                   if s.spec.kind == "histogram"]
        assert hist.bucket_counts == (1, 0, 0)

    def test_unknown_slot_raises(self, plane):
        with pytest.raises(KeyError):
            plane.slot("reqs_total", status="nope")

    def test_observe_on_scalar_slot_rejected(self, plane):
        with pytest.raises(TypeError, match="not a histogram"):
            plane.observe(plane.slot("depth"), 1.0)

    def test_reader_sees_writer_through_the_file(self, plane):
        plane.inc(plane.slot("depth"), 2)
        reader = MetricsPlane.open(plane.path)
        try:
            (depth,) = [s for s in reader.read().slots
                        if s.spec.name == "depth"]
            assert depth.value == 2.0
        finally:
            reader.close()


class TestAttachAndRecreate:
    def test_matching_schema_attaches_and_preserves(self, tmp_path):
        path = str(tmp_path / "m.shm")
        first = MetricsPlane.create(path, SPECS, meta={"worker": "0"})
        first.inc(first.slot("reqs_total", status="ok"), 5)
        first.close()
        # A restarted worker re-creates with the identical schema: the
        # counter keeps its history (monotonic across restarts).
        second = MetricsPlane.create(path, SPECS, meta={"worker": "0"})
        try:
            second.inc(second.slot("reqs_total", status="ok"), 2)
            (ok,) = [s for s in second.read().slots
                     if s.spec.labels == (("status", "ok"),)]
            assert ok.value == 7.0
        finally:
            second.close()

    def test_schema_change_zeroes(self, tmp_path):
        path = str(tmp_path / "m.shm")
        first = MetricsPlane.create(path, SPECS, meta={"worker": "0"})
        first.inc(first.slot("reqs_total", status="ok"), 5)
        first.close()
        changed = SPECS + (SlotSpec("counter", "new_total"),)
        second = MetricsPlane.create(path, changed, meta={"worker": "0"})
        try:
            (ok,) = [s for s in second.read().slots
                     if s.spec.labels == (("status", "ok"),)]
            assert ok.value == 0.0
        finally:
            second.close()

    def test_meta_change_also_recreates(self, tmp_path):
        path = str(tmp_path / "m.shm")
        first = MetricsPlane.create(path, SPECS, meta={"worker": "0"})
        first.inc(first.slot("depth"))
        first.close()
        second = MetricsPlane.create(path, SPECS, meta={"worker": "1"})
        try:
            (depth,) = [s for s in second.read().slots
                        if s.spec.name == "depth"]
            assert depth.value == 0.0
        finally:
            second.close()

    def test_junk_file_is_replaced_not_crashed(self, tmp_path):
        path = tmp_path / "m.shm"
        path.write_bytes(b"definitely not a plane")
        plane = MetricsPlane.create(str(path), SPECS, meta={})
        try:
            plane.inc(plane.slot("depth"))
        finally:
            plane.close()

    def test_open_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.shm"
        path.write_bytes(b"nope" * 10)
        with pytest.raises(PlaneSchemaError):
            MetricsPlane.open(str(path))

    def test_open_rejects_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.shm"
        path.write_bytes(b"ROBSPLN1" + struct.pack("<I", 10_000))
        with pytest.raises(PlaneSchemaError):
            MetricsPlane.open(str(path))


class TestTornSlots:
    def test_odd_epoch_marks_torn_not_garbage(self, plane):
        plane.inc(plane.slot("reqs_total", status="ok"), 9)
        # Simulate a writer that died mid-update: epoch left odd forever.
        offset = plane._offsets[plane.slot("reqs_total", status="ok")]
        struct.pack_into("<Q", plane._mm, offset, 1)
        snap = plane.read()
        (ok,) = [s for s in snap.slots
                 if s.spec.labels == (("status", "ok"),)]
        assert ok.torn is True
        assert snap.n_torn == 1

    def test_merge_skips_torn_slots(self, plane):
        plane.inc(plane.slot("reqs_total", status="ok"), 9)
        plane.inc(plane.slot("reqs_total", status="error"), 4)
        offset = plane._offsets[plane.slot("reqs_total", status="ok")]
        struct.pack_into("<Q", plane._mm, offset, 1)
        registry = merge_snapshots([plane.read()])
        counter = registry.counter("reqs_total")
        assert counter.value(status="ok") == 0   # torn -> omitted
        assert counter.value(status="error") == 4

    def test_concurrent_writer_never_yields_inconsistent_hist(self, plane):
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                plane.observe(plane.slot("lat_seconds"), (i % 20) / 10.0)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            reader = MetricsPlane.open(plane.path)
            try:
                last_count = 0
                for _ in range(300):
                    (hist,) = [s for s in reader.read().slots
                               if s.spec.kind == "histogram"]
                    if hist.torn:
                        continue
                    # Seqlock invariant: bucket counts always sum to the
                    # total count, and the total never goes backwards.
                    assert sum(hist.bucket_counts) == hist.count
                    assert hist.count >= last_count
                    last_count = hist.count
            finally:
                reader.close()
        finally:
            stop.set()
            thread.join()


class TestScrapeAndMerge:
    def _two_planes(self, tmp_path):
        a = MetricsPlane.create(str(tmp_path / "metrics-w0.shm"), SPECS,
                                meta={"worker": "0"})
        b = MetricsPlane.create(str(tmp_path / "metrics-w1.shm"), SPECS,
                                meta={"worker": "1"})
        a.inc(a.slot("reqs_total", status="ok"), 10)
        b.inc(b.slot("reqs_total", status="ok"), 7)
        b.inc(b.slot("reqs_total", status="error"), 1)
        a.set(a.slot("depth"), 3)
        b.set(b.slot("depth"), 5)
        a.observe(a.slot("lat_seconds"), 0.05)
        b.observe(b.slot("lat_seconds"), 0.5)
        b.observe(b.slot("lat_seconds"), 5.0)
        return a, b

    def test_counters_sum_gauges_max(self, tmp_path):
        a, b = self._two_planes(tmp_path)
        try:
            registry = merged_registry(str(tmp_path))
            counter = registry.counter("reqs_total")
            assert counter.value(status="ok") == 17.0
            assert counter.value(status="error") == 1.0
            assert registry.gauge("depth").value() == 5.0
            hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
            assert hist.count() == 3
            assert hist.sum() == pytest.approx(5.55)
            (sample,) = hist.samples()
            assert sample["buckets"] == {"0.1": 1, "1.0": 2, "+Inf": 3}
        finally:
            a.close()
            b.close()

    def test_scrape_skips_foreign_files(self, tmp_path):
        a, b = self._two_planes(tmp_path)
        try:
            (tmp_path / "metrics-bogus.shm").write_bytes(b"junk")
            snaps = scrape_planes(str(tmp_path))
            assert len(snaps) == 2
            assert {s.meta["worker"] for s in snaps} == {"0", "1"}
        finally:
            a.close()
            b.close()

    def test_scrape_needs_no_live_writer(self, tmp_path):
        a, b = self._two_planes(tmp_path)
        a.close()
        b.close()
        # The writers are gone; the files alone carry the fleet view.
        registry = merged_registry(str(tmp_path))
        assert registry.counter("reqs_total").total() == 18.0

    def test_merge_into_existing_registry(self, tmp_path):
        a, b = self._two_planes(tmp_path)
        try:
            base = MetricsRegistry()
            base.counter("unrelated_total").inc(2)
            merged = merged_registry(str(tmp_path), base=base)
            assert merged is base
            assert merged.counter("unrelated_total").value() == 2
            assert merged.counter("reqs_total").value(status="ok") == 17.0
        finally:
            a.close()
            b.close()

    def test_empty_directory_merges_empty(self, tmp_path):
        registry = merged_registry(str(tmp_path))
        assert registry.to_dict()["metrics"] == []
