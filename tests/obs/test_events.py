"""Structured event log: JSON-lines sink, level gating, stdlib bridge."""

import logging

import pytest

from repro.obs import configure_events, event, read_events


@pytest.fixture
def event_file(tmp_path):
    path = tmp_path / "events.jsonl"
    configure_events(path, level="debug")
    yield path
    configure_events(None)


class TestEventSink:
    def test_event_written_as_json_line(self, event_file):
        event("refresh.complete", component="service", n_trips=10, incremental=True)
        (rec,) = read_events(event_file)
        assert rec["event"] == "refresh.complete"
        assert rec["component"] == "service"
        assert rec["level"] == "info"
        assert rec["n_trips"] == 10
        assert rec["incremental"] is True
        assert rec["ts_unix"] > 0

    def test_level_gates_file_sink(self, tmp_path):
        path = tmp_path / "e.jsonl"
        configure_events(path, level="warning")
        try:
            event("quiet", level="debug")
            event("loud", level="error")
        finally:
            configure_events(None)
        events = read_events(path)
        assert [e["event"] for e in events] == ["loud"]

    def test_non_jsonable_fields_degrade_to_repr(self, event_file):
        class Widget:
            def __repr__(self):
                return "<widget>"

        event("made", widget=Widget())
        (rec,) = read_events(event_file)
        assert rec["widget"] == "<widget>"

    def test_no_sink_is_silent(self):
        configure_events(None)
        event("into.the.void", n=1)  # must not raise


class TestStdlibBridge:
    def test_events_forward_to_stdlib_logging(self, event_file, caplog):
        with caplog.at_level(logging.INFO, logger="repro.service"):
            event("refresh.complete", component="service", n_trips=3)
        assert any(
            "refresh.complete" in rec.getMessage() and rec.name == "repro.service"
            for rec in caplog.records
        )

    def test_levels_map_to_stdlib_levels(self, event_file, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.engine"):
            event("stage.cache_hit", level="debug", component="engine")
            event("stage.fail", level="error", component="engine")
        levels = {rec.getMessage().split()[0]: rec.levelno for rec in caplog.records}
        assert levels["stage.cache_hit"] == logging.DEBUG
        assert levels["stage.fail"] == logging.ERROR
