"""Metrics registry: counters/gauges/histograms, exporters, escaping."""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    export_metrics,
    get_registry,
    load_metrics,
    render_metrics,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_total(self, registry):
        c = registry.counter("requests_total")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        assert c.total() == 3

    def test_labels_partition_values(self, registry):
        c = registry.counter("hits_total")
        c.inc(stage="pool")
        c.inc(2, stage="extract")
        assert c.value(stage="pool") == 1
        assert c.value(stage="extract") == 2
        assert c.value(stage="other") == 0
        assert c.total() == 3

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("c").inc(-1)

    def test_same_name_returns_same_metric(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_raises(self, registry):
        registry.counter("c")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("c")


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("pool_size")
        g.set(10)
        assert g.value() == 10
        g.add(-3)
        assert g.value() == 7
        g.set(2.5, shard="a")
        assert g.value(shard="a") == 2.5
        assert g.value() == 7

    def test_unset_value_is_none(self, registry):
        assert registry.gauge("g").value() is None


class TestHistogram:
    def test_observe_buckets_cumulative(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)
        (sample,) = h.samples()
        assert sample["buckets"] == {"0.1": 1, "1.0": 3, "10.0": 4, "+Inf": 5}

    def test_boundary_value_counts_in_le_bucket(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" includes exactly 1.0
        (sample,) = h.samples()
        assert sample["buckets"]["1.0"] == 1

    def test_labeled_histograms_are_independent(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        h.observe(0.5, source="address")
        h.observe(0.5, source="address")
        h.observe(2.0, source="geocode")
        assert h.count(source="address") == 2
        assert h.count(source="geocode") == 1
        assert h.count() == 0

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("h", buckets=())

    def test_merge_raw_folds_prebucketed_counts(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        # Per-bucket (non-cumulative) counts incl. +Inf, as read from a
        # shared-memory plane slot.
        h.merge_raw((1, 2, 1), 7.5)
        assert h.count() == 5
        assert h.sum() == pytest.approx(7.55)
        (sample,) = h.samples()
        assert sample["buckets"] == {"0.1": 2, "1.0": 4, "+Inf": 5}

    def test_merge_raw_respects_labels(self, registry):
        h = registry.histogram("lat", buckets=(1.0,))
        h.merge_raw((3, 0), 1.5, worker="0")
        h.merge_raw((1, 1), 4.0, worker="1")
        assert h.count(worker="0") == 3
        assert h.count(worker="1") == 2
        assert h.count() == 0

    def test_merge_raw_rejects_wrong_arity(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            h.merge_raw((1, 2), 1.0)

    def test_merge_raw_rejects_negative_counts(self, registry):
        h = registry.histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.merge_raw((1, -1), 1.0)


class TestPrometheusFormat:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("requests_total", "Total requests").inc(3, route="/q")
        registry.gauge("pool_size", "Pool size").set(7)
        text = registry.to_prometheus()
        assert "# HELP requests_total Total requests" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{route="/q"} 3' in text
        assert "# TYPE pool_size gauge" in text
        assert "pool_size 7" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self, registry):
        h = registry.histogram("lat_seconds", "Latency", buckets=(0.5, 1.0))
        h.observe(0.2)
        h.observe(0.7)
        h.observe(3.0)
        text = registry.to_prometheus()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 3.9" in text
        assert "lat_seconds_count 3" in text

    def test_label_value_escaping(self, registry):
        registry.counter("c").inc(1, path='a\\b"c\nd')
        text = registry.to_prometheus()
        assert 'c{path="a\\\\b\\"c\\nd"} 1' in text
        # The exposition stays one line per sample.
        assert len([ln for ln in text.splitlines() if ln.startswith("c{")]) == 1

    def test_help_escaping(self, registry):
        registry.counter("c", "line one\nline two \\ backslash")
        text = registry.to_prometheus()
        assert "# HELP c line one\\nline two \\\\ backslash" in text

    def test_hostile_label_values_stay_parseable(self, registry):
        # Adversarial values probing escape ordering: a literal backslash
        # directly before characters that are themselves escaped.  If
        # quote/newline escaping ran before backslash doubling, the
        # emitted backslashes would double and the exposition would
        # change meaning.
        hostile = {
            "backslash_n": "\\n",        # literal backslash + n, NOT newline
            "backslash_quote": '\\"',
            "trailing_backslash": "ends\\",
            "mixed": 'a\\\n"b\\n',
            "only_newlines": "\n\n",
        }
        for i, (name, value) in enumerate(hostile.items()):
            registry.counter(f"hostile_{i}").inc(1, v=value)
            expected = (value.replace("\\", "\\\\")
                        .replace('"', '\\"')
                        .replace("\n", "\\n"))
            line = f'hostile_{i}{{v="{expected}"}} 1'
            text = registry.to_prometheus()
            assert line in text, (name, value, text)
        # Every sample stays on its own line: no raw newline leaked.
        body = [ln for ln in registry.to_prometheus().splitlines()
                if not ln.startswith("#")]
        assert len(body) == len(hostile)

    def test_nan_renders_as_nan_token(self, registry):
        registry.gauge("g").set(math.nan)
        text = registry.to_prometheus()
        assert "g NaN" in text
        # Not the repr-style token the float formatter would produce.
        assert "g nan" not in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.to_prometheus() == ""


class TestExportAndRender:
    def test_json_roundtrip_with_meta(self, registry, tmp_path):
        registry.counter("hits_total").inc(5, stage="pool")
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        path = export_metrics(tmp_path / "m.json", registry, meta={"git_sha": "abc123"})
        payload = load_metrics(path)
        assert payload["meta"]["git_sha"] == "abc123"
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["hits_total"]["type"] == "counter"
        assert by_name["hits_total"]["samples"][0]["value"] == 5
        assert by_name["lat"]["samples"][0]["count"] == 1

    def test_prom_suffix_writes_text_format(self, registry, tmp_path):
        registry.counter("hits_total").inc()
        path = export_metrics(tmp_path / "m.prom", registry)
        assert "# TYPE hits_total counter" in path.read_text()

    def test_render_shows_counters_gauges_histograms(self, registry, tmp_path):
        registry.counter("artifact_cache_hits_total").inc(2, stage="pool")
        registry.gauge("service_store_size").set(17)
        registry.histogram("service_query_latency_seconds").observe(0.001, source="address")
        path = export_metrics(tmp_path / "m.json", registry, meta={"git_sha": "xyz"})
        text = render_metrics(load_metrics(path))
        assert "artifact_cache_hits_total{stage=pool}" in text
        assert "service_store_size" in text
        assert "service_query_latency_seconds{source=address}" in text
        assert "git_sha" in text

    def test_render_empty_payload(self):
        assert render_metrics({"meta": {}, "metrics": []}) == "(no metrics)"

    def test_infinity_formatting(self, registry):
        registry.gauge("g").set(math.inf)
        assert "g +Inf" in registry.to_prometheus()


class TestGlobalRegistry:
    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        prev = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(prev)
        assert get_registry() is prev


class TestPrometheusEdgeCases:
    def test_never_observed_histogram_still_emits_inf_bucket(self, registry):
        registry.histogram("cold_latency_seconds", buckets=(0.1, 1.0))
        text = registry.to_prometheus()
        assert '# TYPE cold_latency_seconds histogram' in text
        assert 'cold_latency_seconds_bucket{le="+Inf"} 0' in text
        assert "cold_latency_seconds_sum 0" in text
        assert "cold_latency_seconds_count 0" in text

    def test_observed_histogram_drops_placeholder_series(self, registry):
        h = registry.histogram("warm_latency_seconds", buckets=(0.1,))
        h.observe(0.05)
        text = registry.to_prometheus()
        # Only the real labeled family, not the empty placeholder.
        assert text.count('warm_latency_seconds_bucket{le="+Inf"}') == 1
        assert 'warm_latency_seconds_bucket{le="+Inf"} 1' in text


class TestRenderMalformed:
    def test_non_mapping_payload_rejected(self):
        with pytest.raises(TypeError, match="must be a mapping"):
            render_metrics([1, 2, 3])

    def test_metrics_not_a_list_renders_empty(self):
        assert render_metrics({"metrics": "oops"}) == "(no metrics)"

    def test_entries_missing_name_or_samples_skipped(self):
        payload = {"metrics": [
            {"type": "counter"},                       # no name
            {"name": "bare", "type": "counter"},       # no samples
            {"name": "good", "type": "counter",
             "samples": [{"labels": {}, "value": 4}]},
        ]}
        text = render_metrics(payload)
        assert "good" in text and "bare" not in text

    def test_non_numeric_values_skipped(self):
        payload = {"metrics": [
            {"name": "c", "type": "counter", "samples": [
                {"labels": {}, "value": "not-a-number"},
                {"labels": {"ok": "1"}, "value": 2},
            ]},
        ]}
        text = render_metrics(payload)
        assert "c{ok=1}" in text and "not-a-number" not in text

    def test_histogram_sample_with_bad_count_skipped(self):
        payload = {"metrics": [
            {"name": "h", "type": "histogram", "samples": [
                {"labels": {}, "count": "many", "sum": 1.0},
            ]},
        ]}
        assert render_metrics(payload) == "(no metrics)"

    def test_malformed_meta_ignored(self):
        payload = {"meta": "truncated", "metrics": []}
        assert render_metrics(payload) == "(no metrics)"
