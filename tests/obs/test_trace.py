"""Tracing primitives: nesting, attributes, errors, JSON-lines round trip."""

import json
import os
import subprocess
import sys

import pytest

from repro.obs import (
    RemoteSpanContext,
    configure_tracing,
    current_span,
    current_trace_path,
    disable_tracing,
    make_traceparent,
    merge_traces,
    parse_traceparent,
    read_trace,
    span,
    span_tree,
    tracing_enabled,
)


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    configure_tracing(path)
    yield path
    disable_tracing()


class TestDisabled:
    def test_span_is_noop_when_disabled(self):
        disable_tracing()
        assert not tracing_enabled()
        with span("anything", key="value") as sp:
            assert sp is None
        assert current_span() is None

    def test_exceptions_propagate_when_disabled(self):
        disable_tracing()
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")


class TestSpans:
    def test_single_span_written_as_json_line(self, trace_file):
        with span("op", a=1, b="two") as sp:
            assert sp is not None
            assert current_span() is sp
        spans = read_trace(trace_file)
        assert len(spans) == 1
        (rec,) = spans
        assert rec["name"] == "op"
        assert rec["parent_id"] is None
        assert rec["status"] == "ok"
        assert rec["attributes"] == {"a": 1, "b": "two"}
        assert rec["duration_s"] >= 0.0
        assert rec["end_unix"] >= rec["start_unix"]

    def test_nesting_follows_call_stack(self, trace_file):
        with span("parent") as parent:
            with span("child") as child:
                assert child.parent_id == parent.span_id
                assert child.trace_id == parent.trace_id
                with span("grandchild") as gc:
                    assert gc.parent_id == child.span_id
            assert current_span() is parent
        spans = read_trace(trace_file)
        # Children finish (and are written) before parents.
        assert [s["name"] for s in spans] == ["grandchild", "child", "parent"]
        tree = span_tree(spans)
        assert [s["name"] for s in tree[None]] == ["parent"]
        parent_id = tree[None][0]["span_id"]
        assert [s["name"] for s in tree[parent_id]] == ["child"]

    def test_sibling_spans_share_parent(self, trace_file):
        with span("root") as root:
            with span("a"):
                pass
            with span("b"):
                pass
        tree = span_tree(read_trace(trace_file))
        assert {s["name"] for s in tree[root.span_id]} == {"a", "b"}

    def test_mid_flight_attributes(self, trace_file):
        with span("op") as sp:
            sp.set("result_count", 42)
        (rec,) = read_trace(trace_file)
        assert rec["attributes"]["result_count"] == 42

    def test_exception_captured_and_reraised(self, trace_file):
        with pytest.raises(ValueError, match="bad"):
            with span("failing"):
                raise ValueError("bad")
        (rec,) = read_trace(trace_file)
        assert rec["status"] == "error"
        assert rec["error"] == {"type": "ValueError", "message": "bad"}
        # The contextvar must be restored even on error.
        assert current_span() is None

    def test_non_jsonable_attributes_degrade_to_repr(self, trace_file):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        with span("op", thing=Opaque(), many=(1, 2)):
            pass
        (rec,) = read_trace(trace_file)
        assert rec["attributes"]["thing"] == "<opaque>"
        assert rec["attributes"]["many"] == [1, 2]

    def test_every_line_is_valid_json(self, trace_file):
        for i in range(5):
            with span(f"op{i}"):
                pass
        for line in trace_file.read_text().splitlines():
            json.loads(line)

    def test_separate_roots_get_separate_trace_ids(self, trace_file):
        with span("first"):
            pass
        with span("second"):
            pass
        spans = read_trace(trace_file)
        assert spans[0]["trace_id"] != spans[1]["trace_id"]

    def test_reconfigure_appends_to_new_file(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        configure_tracing(first)
        try:
            with span("one"):
                pass
            configure_tracing(second)
            with span("two"):
                pass
        finally:
            disable_tracing()
        assert [s["name"] for s in read_trace(first)] == ["one"]
        assert [s["name"] for s in read_trace(second)] == ["two"]

    def test_current_trace_path_follows_configuration(self, tmp_path):
        disable_tracing()
        assert current_trace_path() is None
        configure_tracing(tmp_path / "t.jsonl")
        try:
            assert current_trace_path() == tmp_path / "t.jsonl"
        finally:
            disable_tracing()


class TestTraceparent:
    def test_round_trip_preserves_identity(self, trace_file):
        with span("op") as sp:
            header = make_traceparent(sp)
        ctx = parse_traceparent(header)
        assert ctx is not None
        assert ctx.trace_id == sp.trace_id
        assert ctx.span_id == sp.span_id
        assert ctx.sampled is True

    def test_unsampled_flag_round_trips(self, trace_file):
        with span("op") as sp:
            header = make_traceparent(sp, sampled=False)
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    @pytest.mark.parametrize("garbage", [
        None,
        42,
        "",
        "not a traceparent",
        "00-abc-def",                  # too few fields
        "00-abc-def-01-extra",         # too many fields
        "99-abc-def-01",               # unknown version
        "00--def-01",                  # empty trace id
        "00-abc--01",                  # empty span id
        "00-abc-def-zz",               # non-hex flags
    ])
    def test_garbage_parses_to_none(self, garbage):
        assert parse_traceparent(garbage) is None

    def test_remote_context_parents_like_a_live_span(self, trace_file):
        remote = RemoteSpanContext("trace123", "span456")
        with span("child", parent=remote) as sp:
            assert sp.trace_id == "trace123"
            assert sp.parent_id == "span456"
        (rec,) = read_trace(trace_file)
        assert rec["trace_id"] == "trace123"
        assert rec["parent_id"] == "span456"

    def test_remote_context_round_trips_through_header(self, trace_file):
        with span("router") as route:
            header = make_traceparent(route)
        with span("worker", parent=parse_traceparent(header)):
            pass
        worker = [s for s in read_trace(trace_file) if s["name"] == "worker"]
        assert worker[0]["trace_id"] == route.trace_id
        assert worker[0]["parent_id"] == route.span_id


def _write_spans(path, spans):
    with open(path, "w", encoding="utf-8") as fh:
        for sp in spans:
            fh.write(json.dumps(sp) + "\n")


def _span(name, trace_id, span_id, parent_id=None, duration_s=0.001,
          status="ok", start_unix=1.0, **attributes):
    return {
        "name": name, "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id, "start_unix": start_unix,
        "end_unix": start_unix + duration_s, "duration_s": duration_s,
        "status": status, "attributes": attributes,
    }


class TestMergeTraces:
    def test_tail_sampler_keeps_errored_slow_and_sampled(self, tmp_path):
        router = tmp_path / "router.jsonl"
        worker = tmp_path / "worker.jsonl"
        # 10 fast boring roots + one slow, one errored, one head-sampled;
        # with 13 roots the nearest-rank p99 is the slowest duration, so
        # only the genuinely slow trace clears the tail threshold.
        boring = [_span("req", f"t{i}", f"r{i}", duration_s=0.001)
                  for i in range(10)]
        _write_spans(router, boring + [
            _span("req", "slow", "rs", duration_s=9.0),
            _span("req", "err", "re"),
            _span("req", "head", "rh", sampled=True),
        ])
        _write_spans(worker, [
            _span("work", "slow", "ws", parent_id="rs"),
            _span("work", "err", "we", parent_id="re", status="error"),
            _span("work", "head", "wh", parent_id="rh"),
        ])
        out = tmp_path / "merged.jsonl"
        stats = merge_traces([router, worker], out)
        assert stats["n_files"] == 2
        assert stats["n_spans"] == 16
        assert stats["n_traces"] == 13
        assert stats["kept_by_reason"] == {"error": 1, "slow": 1, "sampled": 1}
        assert stats["n_kept_traces"] == 3
        kept = read_trace(out)
        assert len(kept) == stats["n_kept_spans"] == 6
        # Both halves of each kept trace survive, parent links intact.
        by_trace = {}
        for sp in kept:
            by_trace.setdefault(sp["trace_id"], []).append(sp)
        assert set(by_trace) == {"slow", "err", "head"}
        for group in by_trace.values():
            child = [s for s in group if s["parent_id"]][0]
            assert child["parent_id"] in {s["span_id"] for s in group}

    def test_p99_hint_overrides_estimate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_spans(path, [
            _span("req", "a", "sa", duration_s=0.010),
            _span("req", "b", "sb", duration_s=0.002),
        ])
        stats = merge_traces([path], tmp_path / "out.jsonl",
                             p99_hint=0.005)
        assert stats["p99_threshold_s"] == 0.005
        assert stats["kept_by_reason"]["slow"] == 1
        (kept,) = {s["trace_id"] for s in read_trace(tmp_path / "out.jsonl")},
        assert kept == {"a"}

    def test_output_sorted_by_start_time(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_spans(path, [
            _span("late", "t", "s2", start_unix=5.0, sampled=True),
            _span("early", "t", "s1", start_unix=1.0),
        ])
        merge_traces([path], tmp_path / "out.jsonl")
        assert [s["name"] for s in read_trace(tmp_path / "out.jsonl")] == \
            ["early", "late"]

    def test_unreadable_inputs_skipped(self, tmp_path):
        good = tmp_path / "good.jsonl"
        _write_spans(good, [_span("req", "t", "s", status="error")])
        stats = merge_traces(
            [good, tmp_path / "missing.jsonl"], tmp_path / "out.jsonl"
        )
        assert stats["n_files"] == 1
        assert stats["n_kept_spans"] == 1

    def test_empty_inputs_produce_empty_output(self, tmp_path):
        stats = merge_traces([], tmp_path / "out.jsonl")
        assert stats["n_spans"] == 0
        assert (tmp_path / "out.jsonl").read_text() == ""


class TestAtexitFlush:
    def test_spans_reach_disk_without_explicit_shutdown(self, tmp_path):
        # A short-lived process (e.g. a serve worker) that never calls
        # disable_tracing must still leave its spans on disk at exit.
        trace = tmp_path / "exit.jsonl"
        script = (
            "from repro.obs import configure_tracing, span\n"
            f"configure_tracing({str(trace)!r})\n"
            "with span('work', worker=3):\n"
            "    pass\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        subprocess.run([sys.executable, "-c", script], check=True, env=env)
        (rec,) = read_trace(trace)
        assert rec["name"] == "work"
        assert rec["attributes"] == {"worker": 3}
