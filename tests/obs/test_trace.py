"""Tracing primitives: nesting, attributes, errors, JSON-lines round trip."""

import json

import pytest

from repro.obs import (
    configure_tracing,
    current_span,
    disable_tracing,
    read_trace,
    span,
    span_tree,
    tracing_enabled,
)


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    configure_tracing(path)
    yield path
    disable_tracing()


class TestDisabled:
    def test_span_is_noop_when_disabled(self):
        disable_tracing()
        assert not tracing_enabled()
        with span("anything", key="value") as sp:
            assert sp is None
        assert current_span() is None

    def test_exceptions_propagate_when_disabled(self):
        disable_tracing()
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")


class TestSpans:
    def test_single_span_written_as_json_line(self, trace_file):
        with span("op", a=1, b="two") as sp:
            assert sp is not None
            assert current_span() is sp
        spans = read_trace(trace_file)
        assert len(spans) == 1
        (rec,) = spans
        assert rec["name"] == "op"
        assert rec["parent_id"] is None
        assert rec["status"] == "ok"
        assert rec["attributes"] == {"a": 1, "b": "two"}
        assert rec["duration_s"] >= 0.0
        assert rec["end_unix"] >= rec["start_unix"]

    def test_nesting_follows_call_stack(self, trace_file):
        with span("parent") as parent:
            with span("child") as child:
                assert child.parent_id == parent.span_id
                assert child.trace_id == parent.trace_id
                with span("grandchild") as gc:
                    assert gc.parent_id == child.span_id
            assert current_span() is parent
        spans = read_trace(trace_file)
        # Children finish (and are written) before parents.
        assert [s["name"] for s in spans] == ["grandchild", "child", "parent"]
        tree = span_tree(spans)
        assert [s["name"] for s in tree[None]] == ["parent"]
        parent_id = tree[None][0]["span_id"]
        assert [s["name"] for s in tree[parent_id]] == ["child"]

    def test_sibling_spans_share_parent(self, trace_file):
        with span("root") as root:
            with span("a"):
                pass
            with span("b"):
                pass
        tree = span_tree(read_trace(trace_file))
        assert {s["name"] for s in tree[root.span_id]} == {"a", "b"}

    def test_mid_flight_attributes(self, trace_file):
        with span("op") as sp:
            sp.set("result_count", 42)
        (rec,) = read_trace(trace_file)
        assert rec["attributes"]["result_count"] == 42

    def test_exception_captured_and_reraised(self, trace_file):
        with pytest.raises(ValueError, match="bad"):
            with span("failing"):
                raise ValueError("bad")
        (rec,) = read_trace(trace_file)
        assert rec["status"] == "error"
        assert rec["error"] == {"type": "ValueError", "message": "bad"}
        # The contextvar must be restored even on error.
        assert current_span() is None

    def test_non_jsonable_attributes_degrade_to_repr(self, trace_file):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        with span("op", thing=Opaque(), many=(1, 2)):
            pass
        (rec,) = read_trace(trace_file)
        assert rec["attributes"]["thing"] == "<opaque>"
        assert rec["attributes"]["many"] == [1, 2]

    def test_every_line_is_valid_json(self, trace_file):
        for i in range(5):
            with span(f"op{i}"):
                pass
        for line in trace_file.read_text().splitlines():
            json.loads(line)

    def test_separate_roots_get_separate_trace_ids(self, trace_file):
        with span("first"):
            pass
        with span("second"):
            pass
        spans = read_trace(trace_file)
        assert spans[0]["trace_id"] != spans[1]["trace_id"]

    def test_reconfigure_appends_to_new_file(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        configure_tracing(first)
        try:
            with span("one"):
                pass
            configure_tracing(second)
            with span("two"):
                pass
        finally:
            disable_tracing()
        assert [s["name"] for s in read_trace(first)] == ["one"]
        assert [s["name"] for s in read_trace(second)] == ["two"]
