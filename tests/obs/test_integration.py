"""End-to-end observability: trace the pipeline, export + render metrics.

The acceptance path of the obs subsystem: a full ``fit`` + ``query`` run
with tracing enabled yields a JSON-lines trace whose span tree covers all
five registered engine stages, and the exported metrics file renders cache
hit/miss counters and query-latency histograms through ``repro metrics``.
"""

import pytest

from repro.apps import DeliveryLocationService
from repro.cli import main
from repro.core import DLInfMA, DLInfMAConfig
from repro.obs import (
    MetricsRegistry,
    configure_tracing,
    disable_tracing,
    export_metrics,
    get_registry,
    read_trace,
    set_registry,
    span_tree,
)

STAGE_NAMES = (
    "stay_point_extraction",
    "pool_construction",
    "profile_build",
    "feature_extraction",
    "training",
)


@pytest.fixture
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield get_registry()
    set_registry(previous)


@pytest.fixture
def traced(tmp_path):
    path = tmp_path / "trace.jsonl"
    configure_tracing(path)
    yield path
    disable_tracing()


def _fast_config(**kwargs):
    return DLInfMAConfig(selector="maxtc-ilc", **kwargs)


class TestTracedFitAndQuery:
    def test_span_tree_covers_all_five_stages(self, tiny_workload, traced, fresh_registry):
        service = DeliveryLocationService(
            tiny_workload.addresses, tiny_workload.projection, _fast_config()
        )
        service.refresh(
            tiny_workload.trips,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
        )
        address = next(iter(tiny_workload.addresses.values()))
        service.query(address)

        spans = read_trace(traced)
        by_id = {s["span_id"]: s for s in spans}
        names = {s["name"] for s in spans}
        for stage in STAGE_NAMES:
            assert stage in names, f"stage {stage} missing from trace"

        # All five stage spans sit under the service.refresh root.
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["service.refresh"]
        for stage in STAGE_NAMES:
            node = next(s for s in spans if s["name"] == stage)
            ancestors = []
            while node["parent_id"] is not None:
                node = by_id[node["parent_id"]]
                ancestors.append(node["name"])
            assert ancestors[-1] == "service.refresh"
            assert "dlinfma.fit" in ancestors

        tree = span_tree(spans)
        fit_span = next(s for s in spans if s["name"] == "dlinfma.fit")
        child_names = {s["name"] for s in tree.get(fit_span["span_id"], [])}
        assert "training" in child_names
        assert all(s["status"] == "ok" for s in spans)

    def test_update_path_traces_incremental_stages(self, tiny_workload, traced):
        trips = sorted(tiny_workload.trips, key=lambda t: t.t_start)
        half = len(trips) // 2
        service = DeliveryLocationService(
            tiny_workload.addresses, tiny_workload.projection, _fast_config()
        )
        common = (
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
        )
        service.refresh(trips[:half], *common)
        service.refresh(trips[half:], *common)
        spans = read_trace(traced)
        update = next(s for s in spans if s["name"] == "dlinfma.update")
        assert update["attributes"]["n_new_trips"] == len(trips) - half
        update_children = {
            s["name"] for s in spans if s["parent_id"] == update["span_id"]
        }
        assert "pool_construction" in update_children
        assert "feature_extraction" in update_children

    def test_query_latency_histogram_by_source(self, tiny_workload, fresh_registry):
        service = DeliveryLocationService(
            tiny_workload.addresses, tiny_workload.projection, _fast_config()
        )
        service.refresh(
            tiny_workload.trips,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
        )
        for address in tiny_workload.addresses.values():
            service.query(address)
        hist = fresh_registry.histogram("service_query_latency_seconds")
        total = sum(
            sample["count"] for sample in hist.samples()
        )
        assert total == len(tiny_workload.addresses)
        assert fresh_registry.gauge("service_store_size").value() > 0

    def test_cache_hit_miss_counters(self, tiny_workload, tmp_path, fresh_registry):
        kwargs = dict(
            addresses=tiny_workload.addresses,
            ground_truth=tiny_workload.ground_truth,
            train_ids=tiny_workload.train_ids,
            val_ids=tiny_workload.val_ids,
            projection=tiny_workload.projection,
            cache_dir=tmp_path / "cache",
        )
        DLInfMA(_fast_config()).fit(tiny_workload.trips, **kwargs)
        misses = fresh_registry.counter("artifact_cache_misses_total")
        assert misses.total() >= 3  # cold cache: every cacheable stage misses
        model = DLInfMA(_fast_config()).fit(tiny_workload.trips, **kwargs)
        hits = fresh_registry.counter("artifact_cache_hits_total")
        assert hits.value(stage="stay_point_extraction") == 1
        assert hits.value(stage="pool_construction") == 1
        # StageRecord.cached propagates through the rerun's records.
        cached_stages = {r.name for r in model.context.records if r.cached}
        assert "stay_point_extraction" in cached_stages
        assert "pool_construction" in cached_stages

    def test_locmatcher_training_metrics(self, tiny_workload, fresh_registry):
        from dataclasses import replace

        from repro.core import LocMatcherConfig

        config = DLInfMAConfig(
            selector="locmatcher",
            locmatcher=replace(LocMatcherConfig(), max_epochs=3, patience=2),
        )
        DLInfMA(config).fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
            projection=tiny_workload.projection,
        )
        assert fresh_registry.gauge("locmatcher_train_loss").value() is not None
        assert fresh_registry.gauge("locmatcher_epochs_run").value() == 3
        accuracy = fresh_registry.gauge("locmatcher_train_accuracy").value()
        assert 0.0 <= accuracy <= 1.0
        assert fresh_registry.histogram("locmatcher_grad_norm").count() > 0

    def test_per_worker_extraction_counters(self, tiny_workload, fresh_registry):
        from repro.core import extract_trip_stay_points

        extract_trip_stay_points(tiny_workload.trips[:4])
        counter = fresh_registry.counter("staypoint_extraction_trips_total")
        assert counter.value(worker="serial") == 4

    def test_metrics_cli_renders_export(self, tiny_workload, tmp_path, fresh_registry, capsys):
        fresh_registry.counter("artifact_cache_hits_total").inc(3, stage="pool_construction")
        fresh_registry.histogram("service_query_latency_seconds").observe(
            0.0004, source="address"
        )
        path = tmp_path / "metrics.json"
        export_metrics(path, fresh_registry, meta={"git_sha": "deadbeef"})
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "artifact_cache_hits_total{stage=pool_construction}" in out
        assert "service_query_latency_seconds{source=address}" in out
        assert "deadbeef" in out

    def test_metrics_cli_missing_file(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 1
