"""PSI fingerprints: pool/matcher drift detection across refreshes."""

from types import SimpleNamespace

import pytest

from repro.obs import MetricsRegistry, set_registry
from repro.obs.drift import (
    DriftMonitor,
    Fingerprint,
    bin_values,
    compare_fingerprints,
    matcher_fingerprint,
    pool_fingerprint,
    psi,
    save_drift_report,
)
from repro.obs.events import configure_events, read_events


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(previous)


def _pool(weights):
    return SimpleNamespace(
        candidates=[SimpleNamespace(weight=w) for w in weights]
    )


def _profiles(durations):
    return {f"c{i}": SimpleNamespace(avg_duration_s=d)
            for i, d in enumerate(durations)}


def _examples(counts):
    return {f"a{i}": SimpleNamespace(n_candidates=n)
            for i, n in enumerate(counts)}


class TestPsi:
    def test_identical_distributions_score_zero(self):
        assert psi((10, 20, 30), (10, 20, 30)) == pytest.approx(0.0)

    def test_proportional_distributions_score_zero(self):
        assert psi((1, 2, 3), (10, 20, 30)) == pytest.approx(0.0)

    def test_shift_scores_positive_and_symmetric(self):
        forward = psi((80, 15, 5), (40, 40, 20))
        assert forward > 0.25
        assert psi((40, 40, 20), (80, 15, 5)) == pytest.approx(forward)

    def test_empty_bin_is_finite(self):
        assert psi((10, 0), (0, 10)) < float("inf")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bin count mismatch"):
            psi((1, 2), (1, 2, 3))

    def test_bin_values_upper_inclusive(self):
        assert bin_values([1.0, 1.5, 2.0, 9.0], edges=(1.0, 2.0)) == (1, 2, 1)


class TestFingerprints:
    def test_pool_fingerprint_shape(self):
        fp = pool_fingerprint(
            _pool([1, 2, 8]), _profiles([30, 400]), _examples([1, 3])
        )
        assert fp.kind == "pool"
        assert fp.scalars["n_candidates"] == 3.0
        assert fp.scalars["total_weight"] == 11.0
        assert fp.scalars["n_examples"] == 2.0
        assert set(fp.dists) == {"weight", "stay_duration",
                                 "candidates_per_address"}

    def test_bare_pool_fingerprints_without_extras(self):
        fp = pool_fingerprint(_pool([1, 1]))
        assert set(fp.dists) == {"weight"}

    def test_roundtrip_dict(self):
        fp = pool_fingerprint(_pool([1, 2]), _profiles([10]))
        again = Fingerprint.from_dict(fp.to_dict())
        assert again == fp

    def test_matcher_fingerprint_uses_scores(self):
        selector = SimpleNamespace(scores=lambda e: e.raw_scores)
        examples = {
            "a0": SimpleNamespace(raw_scores=[0.1, 0.8, 0.1]),
            "a1": SimpleNamespace(raw_scores=[0.9, 0.05, 0.05]),
        }
        fp = matcher_fingerprint(selector, examples)
        assert fp.kind == "matcher"
        assert fp.scalars["n_examples"] == 2.0
        assert 0.5 < fp.scalars["mean_confidence"] <= 1.0
        # a1 selects rank 0, a0 selects rank 1.
        assert sum(fp.dists["selected_rank"]) == 2

    def test_matcher_fingerprint_softmaxes_signed_scores(self):
        # Negative scores (margins / log-likelihoods) go through softmax:
        # softmax([-2, 3]) -> top probability e^0 / (e^0 + e^-5) ~= 0.993.
        selector = SimpleNamespace(scores=lambda e: [-2.0, 3.0])
        fp = matcher_fingerprint(selector, {"a": SimpleNamespace()})
        assert fp.scalars["mean_confidence"] == pytest.approx(0.9933, abs=1e-3)


class TestCompare:
    def test_unchanged_pool_is_stable(self):
        before = pool_fingerprint(_pool([1, 2, 8]), _profiles([30, 400]))
        after = pool_fingerprint(_pool([1, 2, 8]), _profiles([30, 400]))
        report = compare_fingerprints(before, after)
        assert not report.drifted
        assert report.max_psi == pytest.approx(0.0)

    def test_thirty_percent_candidate_drop_flags(self):
        # A uniform 30% drop keeps every *proportion* identical — PSI is
        # blind to it; the scalar ratio dimension is what must flag.
        weights = [1, 2, 4] * 10
        before = pool_fingerprint(_pool(weights))
        after = pool_fingerprint(_pool(weights[: int(len(weights) * 0.7)]))
        report = compare_fingerprints(before, after)
        assert report.drifted
        flagged = {d.name for d in report.dimensions if d.flagged}
        assert "n_candidates" in flagged
        psi_dims = [d for d in report.dimensions if d.kind == "psi"]
        assert all(d.score < 0.25 for d in psi_dims)

    def test_distribution_shift_flags_via_psi(self):
        before = pool_fingerprint(_pool([1] * 50))
        after = pool_fingerprint(_pool([50] * 50))  # same count, new shape
        report = compare_fingerprints(before, after)
        flagged = {d.name for d in report.dimensions if d.flagged}
        assert "weight" in flagged

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="kinds differ"):
            compare_fingerprints(
                Fingerprint(kind="pool"), Fingerprint(kind="matcher")
            )

    def test_render_marks_flags(self):
        report = compare_fingerprints(
            pool_fingerprint(_pool([1] * 10)), pool_fingerprint(_pool([1] * 4))
        )
        text = report.render()
        assert "FLAGGED" in text and "[!!]" in text


class TestDriftMonitor:
    def test_first_observation_returns_none(self):
        monitor = DriftMonitor()
        assert monitor.observe(pool_fingerprint(_pool([1, 2]))) is None

    def test_second_observation_compares_to_previous(self):
        monitor = DriftMonitor()
        monitor.observe(pool_fingerprint(_pool([1] * 10)))
        report = monitor.observe(pool_fingerprint(_pool([1] * 10)))
        assert report is not None and not report.drifted
        # The baseline rolls forward: a later drop compares to the latest.
        dropped = monitor.observe(pool_fingerprint(_pool([1] * 5)))
        assert dropped.drifted

    def test_kinds_tracked_independently(self):
        monitor = DriftMonitor()
        selector = SimpleNamespace(scores=lambda e: [1.0, 0.0])
        examples = {"a": SimpleNamespace()}
        assert monitor.observe(pool_fingerprint(_pool([1]))) is None
        assert monitor.observe(matcher_fingerprint(selector, examples)) is None
        assert monitor.observe(pool_fingerprint(_pool([1]))) is not None

    def test_scores_land_in_gauge(self):
        registry = set_registry(MetricsRegistry())
        try:
            monitor = DriftMonitor()
            monitor.observe(pool_fingerprint(_pool([1, 2])))
            monitor.observe(pool_fingerprint(_pool([1, 2])))
            from repro.obs import get_registry

            gauge = get_registry().gauge("drift_score")
            assert gauge.value(kind="pool", dimension="n_candidates") == 0.0
        finally:
            set_registry(registry)

    def test_flagged_report_emits_event(self, tmp_path):
        configure_events(tmp_path / "events.jsonl")
        try:
            monitor = DriftMonitor()
            monitor.observe(pool_fingerprint(_pool([1] * 10)))
            monitor.observe(pool_fingerprint(_pool([1] * 3)))
        finally:
            configure_events(None)
        names = [r["event"] for r in read_events(tmp_path / "events.jsonl")]
        assert "drift_flagged" in names


class TestSaveReport:
    def test_save_drift_report_shape(self, tmp_path):
        import json

        stable = compare_fingerprints(
            pool_fingerprint(_pool([1] * 10)), pool_fingerprint(_pool([1] * 10))
        )
        flagged = compare_fingerprints(
            pool_fingerprint(_pool([1] * 10)), pool_fingerprint(_pool([1] * 3))
        )
        path = save_drift_report([stable, flagged], tmp_path / "drift.json")
        payload = json.loads(path.read_text())
        assert payload["drifted"] is True
        assert [r["drifted"] for r in payload["reports"]] == [False, True]
