"""Schema evolution + exemplar slots on the shared-memory planes.

The exemplar upgrade must not strand existing fleets: pre-exemplar plane
files have to keep attaching (monotonic counters survive), old readers
have to scrape new planes' non-exemplar slots, and a torn exemplar write
must be caught by the same seqlock that guards the bucket counts.
"""

import json
import struct

import pytest

from repro.obs.exemplar import Exemplar, set_exemplars_enabled
from repro.obs.shm import (
    MAGIC,
    MetricsPlane,
    SlotSpec,
    merge_snapshots,
)

PLAIN = (
    SlotSpec("counter", "reqs_total", (("status", "ok"),)),
    SlotSpec("histogram", "lat_seconds", buckets=(0.1, 1.0)),
)
WITH_EX = (
    SlotSpec("counter", "reqs_total", (("status", "ok"),)),
    SlotSpec("histogram", "lat_seconds", buckets=(0.1, 1.0),
             exemplars=True),
)


@pytest.fixture(autouse=True)
def _exemplars_on():
    set_exemplars_enabled(True)
    yield
    set_exemplars_enabled(True)


class TestSchemaEvolution:
    def test_plain_spec_dict_has_no_exemplars_key(self):
        # The byte-identical-schema attach contract: old specs must
        # serialize exactly as they did before the exemplar field existed.
        assert "exemplars" not in PLAIN[1].to_dict()
        assert WITH_EX[1].to_dict()["exemplars"] is True

    def test_pre_exemplar_plane_still_attaches(self, tmp_path):
        path = str(tmp_path / "metrics-w0.shm")
        plane = MetricsPlane.create(path, PLAIN)
        plane.inc(plane.slot("reqs_total", status="ok"), 5)
        plane.close()
        again = MetricsPlane.create(path, PLAIN)  # attach, not zero
        snap = again.read()
        counter = next(
            s for s in snap.slots if s.spec.name == "reqs_total"
        )
        assert counter.value == 5
        again.close()

    def test_exemplar_upgrade_recreates_not_corrupts(self, tmp_path):
        # Same metric family, new exemplar-bearing schema: the slot
        # layout changed, so create() must start a fresh plane rather
        # than attach and scribble exemplar bytes over foreign slots.
        path = str(tmp_path / "metrics-w0.shm")
        plane = MetricsPlane.create(path, PLAIN)
        plane.inc(plane.slot("reqs_total", status="ok"), 5)
        plane.close()
        upgraded = MetricsPlane.create(path, WITH_EX)
        snap = upgraded.read()
        counter = next(
            s for s in snap.slots if s.spec.name == "reqs_total"
        )
        assert counter.value == 0  # fresh plane, not a half-attach
        assert snap.n_torn == 0
        upgraded.close()

    def test_old_reader_scrapes_new_plane(self, tmp_path):
        # An old scraper build models the exemplar field defaulting off;
        # reading a new plane through the self-describing schema must
        # still produce correct counts (the schema carries the flag, so
        # offsets line up even for a reader that ignores exemplars).
        path = str(tmp_path / "metrics-w0.shm")
        plane = MetricsPlane.create(path, WITH_EX)
        h = plane.slot("lat_seconds")
        plane.observe(h, 0.05,
                      exemplar=Exemplar.now(0.05, "trace1", "w0:00000001"))
        plane.observe(h, 5.0)
        plane.close()
        reader = MetricsPlane.open(path)
        snap = reader.read()
        hist = next(
            s for s in snap.slots if s.spec.name == "lat_seconds"
        )
        assert sum(hist.bucket_counts) == 2
        assert hist.exemplars[0] is not None
        assert hist.exemplars[0].trace_id == "trace1"
        assert hist.exemplars[1] is None
        reader.close()

    def test_merge_carries_exemplars_into_registry(self, tmp_path):
        path = str(tmp_path / "metrics-w0.shm")
        plane = MetricsPlane.create(path, WITH_EX)
        plane.observe(plane.slot("lat_seconds"), 0.05,
                      exemplar=Exemplar.now(0.05, "tr", "pk"))
        snap = plane.read()
        registry = merge_snapshots([snap])
        hist = next(
            m for m in registry.metrics() if m.name == "lat_seconds"
        )
        assert hist.exemplars()[0].trace_id == "tr"
        text = registry.to_prometheus(exemplars=True)
        assert 'trace_id="tr"' in text
        plane.close()

    def test_disabled_exemplars_leave_slots_empty(self, tmp_path):
        set_exemplars_enabled(False)
        path = str(tmp_path / "metrics-w0.shm")
        plane = MetricsPlane.create(path, WITH_EX)
        plane.observe(plane.slot("lat_seconds"), 0.05,
                      exemplar=Exemplar.now(0.05, "tr", "pk"))
        snap = plane.read()
        hist = next(
            s for s in snap.slots if s.spec.name == "lat_seconds"
        )
        assert sum(hist.bucket_counts) == 1  # the observation itself lands
        assert all(e is None for e in hist.exemplars)
        plane.close()


class TestTornExemplarSeqlock:
    def _slot_offset(self, plane, name):
        index = plane.slot(name)
        return plane._offsets[index]

    def test_odd_epoch_marks_slot_torn(self, tmp_path):
        path = str(tmp_path / "metrics-w0.shm")
        plane = MetricsPlane.create(path, WITH_EX)
        h = plane.slot("lat_seconds")
        plane.observe(h, 0.05,
                      exemplar=Exemplar.now(0.05, "tr", "pk"))
        # Simulate a writer dying mid-exemplar-write: force the epoch odd.
        offset = self._slot_offset(plane, "lat_seconds")
        (epoch,) = struct.unpack_from("<Q", plane._mm, offset)
        struct.pack_into("<Q", plane._mm, offset, epoch + 1)
        snap = plane.read()
        hist = next(
            s for s in snap.slots if s.spec.name == "lat_seconds"
        )
        assert snap.n_torn == 1
        assert hist.torn
        # Heal the epoch: the same mapping reads clean again.
        struct.pack_into("<Q", plane._mm, offset, epoch + 2)
        snap2 = plane.read()
        assert snap2.n_torn == 0
        hist2 = next(
            s for s in snap2.slots if s.spec.name == "lat_seconds"
        )
        assert hist2.exemplars[0].trace_id == "tr"
        plane.close()

    def test_concurrent_writer_reader_never_sees_torn_exemplars(
        self, tmp_path
    ):
        import threading

        path = str(tmp_path / "metrics-w0.shm")
        plane = MetricsPlane.create(path, WITH_EX)
        reader = MetricsPlane.open(path)
        h = plane.slot("lat_seconds")
        stop = threading.Event()
        seen_bad = []

        def write():
            i = 0
            while not stop.is_set():
                trace = f"t{i:06d}"
                plane.observe(
                    h, 0.05,
                    exemplar=Exemplar(0.05, trace, trace, ts_unix=float(i + 1)),
                )
                i += 1

        def read():
            for _ in range(300):
                snap = reader.read()
                hist = next(
                    s for s in snap.slots if s.spec.name == "lat_seconds"
                )
                if hist.torn:
                    continue  # bounded-retry gave up; never half-read
                ex = hist.exemplars[0]
                if ex is not None and ex.trace_id != ex.provenance_key:
                    seen_bad.append(ex)

        w = threading.Thread(target=write)
        r = threading.Thread(target=read)
        w.start(); r.start()
        r.join(); stop.set(); w.join()
        assert not seen_bad
        reader.close()
        plane.close()
