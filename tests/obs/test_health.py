"""SLO parsing, histogram quantile math, payload evaluation, live windows."""

import json
import math

import pytest

from repro.obs import MetricsRegistry, set_registry
from repro.obs.events import configure_events, read_events
from repro.obs.health import (
    SLO,
    RequestWindows,
    _parse_mini_yaml,
    evaluate_slos,
    histogram_quantile,
    load_slo_file,
    parse_slos,
    quantile_from_export,
)
from repro.obs.shm import MetricsPlane, SlotSpec, merge_snapshots

SPEC_TEXT = """\
# objectives gating the serving tier
slos:
  - name: p95-latency
    metric: serve_request_latency_seconds
    kind: quantile
    quantile: 0.95
    objective: 0.25
  - name: error-rate
    metric: serve_requests_total
    kind: error_rate
    objective: 0.01
    bad:
      status: [error, timed_out]
"""


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(previous)


def _payload(registry: MetricsRegistry) -> dict:
    return json.loads(json.dumps(registry.to_dict()))


class TestSLOParsing:
    def test_from_dict_normalizes(self):
        slo = SLO.from_dict({
            "name": "s", "metric": "m", "objective": 0.5,
            "kind": "error_rate", "labels": {"b": "2", "a": "1"},
            "bad": {"status": ["error"]},
        })
        assert slo.labels == (("a", "1"), ("b", "2"))
        assert slo.bad == (("status", ("error",)),)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO fields"):
            SLO.from_dict({"name": "s", "metric": "m", "objective": 1, "frobs": 2})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLO(name="s", metric="m", objective=1.0, kind="median")

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            SLO(name="s", metric="m", objective=1.0, quantile=1.5)

    def test_parse_accepts_bare_list(self):
        slos = parse_slos([{"name": "s", "metric": "m", "objective": 1}])
        assert len(slos) == 1 and slos[0].kind == "quantile"

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no objectives"):
            parse_slos({"slos": []})

    def test_mini_yaml_parses_spec(self):
        payload = _parse_mini_yaml(SPEC_TEXT)
        slos = parse_slos(payload)
        assert [s.name for s in slos] == ["p95-latency", "error-rate"]
        assert slos[0].quantile == 0.95
        assert slos[1].bad == (("status", ("error", "timed_out")),)

    def test_load_slo_file_yaml_and_json(self, tmp_path):
        yml = tmp_path / "slo.yaml"
        yml.write_text(SPEC_TEXT)
        assert [s.name for s in load_slo_file(yml)] == ["p95-latency", "error-rate"]
        jsn = tmp_path / "slo.json"
        jsn.write_text(json.dumps(
            {"slos": [{"name": "j", "metric": "m", "objective": 1}]}
        ))
        assert load_slo_file(jsn)[0].name == "j"


class TestHistogramQuantile:
    BOUNDS = (0.1, 0.5, 1.0)

    def test_interpolates_within_bucket(self):
        # 10 observations uniformly in (0.1, 0.5]: p50 is mid-bucket.
        value = histogram_quantile(self.BOUNDS, (0, 10, 10, 10), 0.5)
        assert value == pytest.approx(0.3)

    def test_q0_and_q1_boundaries(self):
        cumulative = (2, 5, 10, 10)
        assert histogram_quantile(self.BOUNDS, cumulative, 0.0) == pytest.approx(0.0)
        assert histogram_quantile(self.BOUNDS, cumulative, 1.0) == pytest.approx(1.0)

    def test_rank_exactly_on_bucket_boundary(self):
        # rank == cumulative[0]: stays in the first bucket, at its upper edge.
        value = histogram_quantile(self.BOUNDS, (5, 10, 10, 10), 0.5)
        assert value == pytest.approx(0.1)

    def test_inf_mass_clamps_to_last_finite_bound(self):
        assert histogram_quantile(self.BOUNDS, (0, 0, 0, 10), 0.95) == 1.0

    def test_empty_histogram_returns_none(self):
        assert histogram_quantile(self.BOUNDS, (0, 0, 0, 0), 0.95) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="len\\(bounds\\)\\+1"):
            histogram_quantile(self.BOUNDS, (1, 2, 3), 0.5)

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            histogram_quantile(self.BOUNDS, (5, 3, 5, 5), 0.5)


class TestMergedExportQuantile:
    """Quantiles over a multi-worker merged export == pooled observations."""

    BUCKETS = (0.05, 0.1, 0.5, 1.0)
    PER_WORKER = {
        "0": (0.01, 0.02, 0.06, 0.3),
        "1": (0.07, 0.09, 0.4, 0.8, 2.0),
        "2": (0.03, 0.55),
    }

    def _merged_payload(self, tmp_path) -> dict:
        planes = []
        for worker, values in self.PER_WORKER.items():
            plane = MetricsPlane.create(
                str(tmp_path / f"metrics-w{worker}.shm"),
                (SlotSpec("histogram", "lat_seconds",
                          (("worker", worker),), self.BUCKETS),),
                meta={"worker": worker},
            )
            idx = plane.slot("lat_seconds", worker=worker)
            for v in values:
                plane.observe(idx, v)
            planes.append(plane)
        merged = merge_snapshots([p.read() for p in planes])
        for plane in planes:
            plane.close()
        return json.loads(json.dumps(merged.to_dict()))

    def _pooled_cumulative(self, values) -> list:
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", buckets=self.BUCKETS)
        for v in values:
            h.observe(v)
        (sample,) = h.samples()
        return ([sample["buckets"][str(b)] for b in self.BUCKETS]
                + [sample["buckets"]["+Inf"]])

    def test_quantile_equals_pooled_observations(self, tmp_path):
        payload = self._merged_payload(tmp_path)
        pooled = self._pooled_cumulative(
            [v for vs in self.PER_WORKER.values() for v in vs]
        )
        for q in (0.5, 0.9, 0.95, 0.99):
            expected = histogram_quantile(list(self.BUCKETS), pooled, q)
            assert quantile_from_export(payload, "lat_seconds", q) == \
                pytest.approx(expected), q

    def test_label_filter_selects_one_worker(self, tmp_path):
        payload = self._merged_payload(tmp_path)
        pooled = self._pooled_cumulative(self.PER_WORKER["1"])
        expected = histogram_quantile(list(self.BUCKETS), pooled, 0.5)
        observed = quantile_from_export(
            payload, "lat_seconds", 0.5, labels={"worker": "1"}
        )
        assert observed == pytest.approx(expected)

    def test_absent_family_returns_none(self, tmp_path):
        payload = self._merged_payload(tmp_path)
        assert quantile_from_export(payload, "nope_seconds", 0.5) is None
        assert quantile_from_export(
            payload, "lat_seconds", 0.5, labels={"worker": "9"}
        ) is None


class TestEvaluateAgainstPayload:
    def _slo_latency(self, objective=0.25):
        return SLO(name="lat", metric="lat_seconds", objective=objective,
                   kind="quantile", quantile=0.95)

    def test_quantile_pass_and_fail(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", buckets=(0.05, 0.25, 1.0))
        for _ in range(100):
            h.observe(0.01)
        report = evaluate_slos(
            _payload(registry), [self._slo_latency()], emit_events=False
        )
        assert report.ok and report.exit_code == 0
        strict = evaluate_slos(
            _payload(registry), [self._slo_latency(objective=0.001)],
            emit_events=False,
        )
        assert not strict.ok and strict.exit_code == 1

    def test_missing_metric_is_violation(self):
        report = evaluate_slos({"metrics": []}, [self._slo_latency()],
                               emit_events=False)
        assert not report.ok
        assert report.results[0].observed is None

    def test_empty_histogram_is_violation(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", buckets=(0.1,))
        report = evaluate_slos(_payload(registry), [self._slo_latency()],
                               emit_events=False)
        assert not report.ok

    def test_error_rate_with_bad_labels(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total")
        c.inc(98, status="ok")
        c.inc(2, status="error")
        slo = SLO(name="err", metric="requests_total", objective=0.05,
                  kind="error_rate", bad=(("status", ("error",)),))
        report = evaluate_slos(_payload(registry), [slo], emit_events=False)
        assert report.ok
        assert report.results[0].observed == pytest.approx(0.02)
        assert report.results[0].detail["burn_rate"] == pytest.approx(0.4)

    def test_max_over_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("queue_depth").set(12, shard="a")
        registry.gauge("queue_depth").set(3, shard="b")
        slo = SLO(name="q", metric="queue_depth", objective=10, kind="max")
        report = evaluate_slos(_payload(registry), [slo], emit_events=False)
        assert not report.ok and report.results[0].observed == 12.0

    def test_label_filter_narrows_samples(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(100, tier="cold")
        registry.gauge("g").set(1, tier="hot")
        slo = SLO(name="hot-only", metric="g", objective=10, kind="max",
                  labels=(("tier", "hot"),))
        assert evaluate_slos(_payload(registry), [slo], emit_events=False).ok

    def test_violation_emits_event(self, tmp_path):
        configure_events(tmp_path / "events.jsonl")
        try:
            evaluate_slos({"metrics": []}, [self._slo_latency()])
        finally:
            configure_events(None)
        rows = read_events(tmp_path / "events.jsonl")
        names = [r["event"] for r in rows]
        assert "slo_violation" in names

    def test_render_mentions_verdict(self):
        report = evaluate_slos({"metrics": []}, [self._slo_latency()],
                               emit_events=False)
        text = report.render()
        assert "VIOLATED" in text and text.endswith("health: VIOLATED")


class TestRequestWindows:
    def _windows(self):
        return RequestWindows(windows=(5.0, 60.0))

    def test_stats_respect_window(self):
        w = self._windows()
        w.record("ok", 0.010, t=0.0)
        w.record("error", 0.500, t=58.0)
        w.record("ok", 0.020, t=59.0)
        short = w.stats(5.0, now=60.0)
        assert short.n == 2 and short.errors == 1
        long = w.stats(60.0, now=60.0)
        assert long.n == 3
        assert long.error_rate == pytest.approx(1 / 3)

    def test_samples_prune_beyond_horizon(self):
        w = self._windows()
        w.record("ok", 0.010, t=0.0)
        w.record("ok", 0.010, t=100.0)  # pushes t=0 out of the 60 s horizon
        assert w.stats(60.0, now=100.0).n == 1

    def test_quantile_is_nearest_rank_over_ok_only(self):
        w = self._windows()
        for i in range(10):
            w.record("ok", (i + 1) / 100.0, t=1.0)
        w.record("error", 9.0, t=1.0)  # errors never pollute latency
        stats = w.stats(60.0, now=2.0)
        assert stats.quantile(0.5) == pytest.approx(0.05)
        assert stats.quantile(1.0) == pytest.approx(0.10)

    def test_burn_rates_and_multiwindow_alert(self):
        w = self._windows()
        # Old errors only: long window burns, short window is clean.
        for _ in range(10):
            w.record("error", 0.1, t=1.0)
        for _ in range(90):
            w.record("ok", 0.01, t=1.0)
        rates = w.burn_rates(0.01, now=30.0)
        assert rates[60.0] == pytest.approx(10.0)
        assert rates[5.0] == 0.0
        assert not w.burning(0.01, now=30.0)
        # Fresh errors too: every window burns -> alert.
        w.record("error", 0.1, t=29.5)
        assert w.burning(0.01, now=30.0)

    def test_zero_budget_burns_infinitely(self):
        w = self._windows()
        w.record("error", 0.1, t=1.0)
        assert w.burn_rates(0.0, now=2.0)[60.0] == math.inf

    def test_queue_depth_series_buckets_max(self):
        w = self._windows()
        w.note_queue_depth(1, t=10.0)
        w.note_queue_depth(7, t=10.05)
        w.note_queue_depth(2, t=10.3)
        series = w.queue_depth_series(bucket_s=0.1, now=11.0)
        assert series[0] == (0.0, 7)
        assert (0.3, 2) in series

    def test_verdict_quantile_and_error_rate(self):
        w = self._windows()
        for _ in range(99):
            w.record("ok", 0.010, t=1.0)
        w.record("timed_out", 1.0, t=1.0)
        slos = [
            SLO(name="p95", metric="latency", objective=0.05,
                kind="quantile", quantile=0.95),
            SLO(name="err", metric="requests", objective=0.05,
                kind="error_rate"),
            SLO(name="queue", metric="depth", objective=10, kind="max"),
        ]
        report = w.verdict(slos, now=2.0, emit_events=False)
        assert report.source == "live"
        assert report.ok
        by_name = {r.slo.name: r for r in report.results}
        assert by_name["p95"].observed == pytest.approx(0.010)
        assert by_name["err"].observed == pytest.approx(0.01)
        assert "burn_rates" in by_name["err"].detail

    def test_verdict_no_data_is_violation(self):
        w = self._windows()
        report = w.verdict(
            [SLO(name="p95", metric="m", objective=1.0)], now=1.0,
            emit_events=False,
        )
        assert not report.ok and report.results[0].observed is None

    def test_needs_at_least_one_window(self):
        with pytest.raises(ValueError, match="at least one window"):
            RequestWindows(windows=())
