"""Torn-tail tolerance for the JSONL forensic readers (traces, provenance).

A worker killed mid-flush leaves a truncated final line; every reader
that merges post-mortem files must skip-and-count, never raise, never
silently swallow.
"""

import json

from repro.obs.trace import merge_traces, read_trace, read_trace_stats


def _span(trace_id, span_id, name="s", duration=0.01, error=None):
    return {
        "trace_id": trace_id, "span_id": span_id, "parent_id": None,
        "name": name, "t_start": 0.0, "duration_s": duration,
        "attrs": {}, "error": error,
    }


def _write_spans(path, spans, tail=""):
    with open(path, "w", encoding="utf-8") as fh:
        for doc in spans:
            fh.write(json.dumps(doc) + "\n")
        if tail:
            fh.write(tail)


class TestReadTraceStats:
    def test_clean_file_has_zero_torn(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_spans(path, [_span("t1", "s1"), _span("t1", "s2")])
        spans, n_torn = read_trace_stats(path)
        assert len(spans) == 2 and n_torn == 0

    def test_truncated_tail_is_counted_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_spans(path, [_span("t1", "s1")],
                     tail='{"trace_id": "t1", "span_id": "s2", "na')
        spans, n_torn = read_trace_stats(path)
        assert len(spans) == 1
        assert n_torn == 1

    def test_non_dict_and_binary_lines_count_as_torn(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "wb") as fh:
            fh.write(json.dumps(_span("t1", "s1")).encode() + b"\n")
            fh.write(b"[1, 2, 3]\n")
            fh.write(b"\xff\xfe half a line\n")
        spans, n_torn = read_trace_stats(path)
        assert len(spans) == 1
        assert n_torn == 2

    def test_read_trace_keeps_old_signature(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_spans(path, [_span("t1", "s1")], tail="{torn")
        assert len(read_trace(path)) == 1


class TestMergeTracesTornAccounting:
    def test_merge_reports_torn_lines_across_files(self, tmp_path):
        p1 = tmp_path / "trace-worker-0.jsonl"
        p2 = tmp_path / "trace-worker-1.jsonl"
        _write_spans(p1, [_span("t1", "s1", error={"type": "X"})],
                     tail='{"cut')
        _write_spans(p2, [_span("t2", "s2", error={"type": "Y"})])
        out = tmp_path / "merged.jsonl"
        stats = merge_traces([p1, p2], out)
        assert stats["n_files"] == 2
        assert stats["n_torn_lines"] == 1
        assert stats["n_kept_spans"] == 2  # errored traces always kept

    def test_unreadable_file_skipped(self, tmp_path):
        p1 = tmp_path / "trace-worker-0.jsonl"
        _write_spans(p1, [_span("t1", "s1", error={"type": "X"})])
        out = tmp_path / "merged.jsonl"
        stats = merge_traces([p1, tmp_path / "gone.jsonl"], out)
        assert stats["n_files"] == 1
        assert stats["n_kept_spans"] == 1
