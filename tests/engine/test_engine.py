"""Engine unit tests: stage contract, plan execution, fingerprint cache."""

import json

import numpy as np
import pytest

from repro.engine import (
    ArtifactCache,
    ArtifactCodec,
    RunContext,
    Stage,
    StagePlan,
    available_stages,
    fingerprint,
    get_stage,
    register_stage,
)


def make_stage(name="double", fn=None, **kwargs):
    def default_fn(ctx, xs):
        ctx.count(name, "items", len(xs))
        return {"ys": [x * 2 for x in xs]}

    return Stage(
        name=name, inputs=("xs",), outputs=("ys",), fn=fn or default_fn, **kwargs
    )


class TestStageContract:
    def test_run_produces_declared_outputs(self):
        ctx = RunContext()
        out = make_stage().run(ctx, {"xs": [1, 2, 3]})
        assert out == {"ys": [2, 4, 6]}

    def test_missing_input_raises_keyerror(self):
        with pytest.raises(KeyError, match="missing inputs"):
            make_stage().run(RunContext(), {})

    def test_non_dict_return_raises_typeerror(self):
        bad = make_stage(fn=lambda ctx, xs: [1, 2])
        with pytest.raises(TypeError, match="must return a dict"):
            bad.run(RunContext(), {"xs": []})

    def test_undeclared_output_raises_valueerror(self):
        bad = make_stage(fn=lambda ctx, xs: {"ys": [], "zs": []})
        with pytest.raises(ValueError, match="undeclared=\\['zs'\\]"):
            bad.run(RunContext(), {"xs": []})

    def test_absent_output_raises_valueerror(self):
        bad = make_stage(fn=lambda ctx, xs: {})
        with pytest.raises(ValueError, match="absent=\\['ys'\\]"):
            bad.run(RunContext(), {"xs": []})


class TestRegistry:
    def test_pipeline_stages_are_registered(self):
        # Importing repro.core registers the DLInfMA stages.
        import repro.core  # noqa: F401

        names = available_stages()
        for expected in (
            "stay_point_extraction",
            "pool_construction",
            "profile_build",
            "feature_extraction",
            "training",
        ):
            assert expected in names
            assert get_stage(expected).name == expected

    def test_duplicate_registration_rejected(self):
        stage_obj = make_stage(name="test_engine_dup")
        register_stage(stage_obj)
        with pytest.raises(ValueError, match="already registered"):
            register_stage(make_stage(name="test_engine_dup"))
        register_stage(stage_obj, replace=True)  # explicit replace is fine

    def test_unknown_stage_lookup(self):
        with pytest.raises(KeyError, match="unknown stage"):
            get_stage("no-such-stage")


class TestStagePlan:
    def test_plan_runs_stages_in_order_with_instrumentation(self):
        first = make_stage(name="plan_first")

        def second_fn(ctx, ys):
            return {"total": sum(ys)}

        second = Stage(name="plan_second", inputs=("ys",), outputs=("total",), fn=second_fn)
        ctx = RunContext()
        state = StagePlan([first, second]).run(ctx, {"xs": [1, 2, 3]})
        assert state["total"] == 12
        assert set(ctx.timings) == {"plan_first_s", "plan_second_s"}
        assert ctx.counters["plan_first.items"] == 3
        assert [r.name for r in ctx.records] == ["plan_first", "plan_second"]
        assert ctx.records[0].items_in == 3
        assert ctx.records[0].items_out == 3

    def test_timed_accumulates_over_repeated_runs(self):
        stage_obj = make_stage(name="plan_repeat")
        ctx = RunContext()
        plan = StagePlan([stage_obj])
        plan.run(ctx, {"xs": [1]})
        t1 = ctx.timings["plan_repeat_s"]
        plan.run(ctx, {"xs": [1]})
        assert ctx.timings["plan_repeat_s"] >= t1
        assert ctx.counters["plan_repeat.items"] == 2


class TestFingerprint:
    def test_deterministic(self):
        a = fingerprint({"x": [1, 2.5, "s"], "y": np.arange(4)})
        b = fingerprint({"y": np.arange(4), "x": [1, 2.5, "s"]})
        assert a == b  # dict ordering must not matter

    def test_sensitive_to_content(self):
        assert fingerprint([1, 2, 3]) != fingerprint([1, 2, 4])
        assert fingerprint(np.zeros(3)) != fingerprint(np.zeros(4))
        # type distinctions matter: 1 vs "1" vs 1.0 vs True
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(1) != fingerprint(1.0)

    def test_content_key_protocol(self):
        class Blob:
            def __init__(self, payload):
                self.payload = payload

            def content_key(self):
                return ("Blob", self.payload)

        assert fingerprint(Blob("a")) == fingerprint(Blob("a"))
        assert fingerprint(Blob("a")) != fingerprint(Blob("b"))

    def test_unfingerprintable_raises(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(object())


JSON_CODEC = ArtifactCodec(
    ".json",
    lambda obj, path: path.write_text(json.dumps(obj)),
    lambda path: json.loads(path.read_text()),
)


class TestArtifactCache:
    def test_cache_hit_skips_stage_fn(self, tmp_path):
        calls = []

        def fn(ctx, xs):
            calls.append(list(xs))
            return {"ys": [x * 2 for x in xs]}

        stage_obj = Stage(
            name="cache_double",
            inputs=("xs",),
            outputs=("ys",),
            fn=fn,
            cache_codecs={"ys": JSON_CODEC},
        )
        assert stage_obj.cacheable
        plan = StagePlan([stage_obj])

        ctx1 = RunContext(cache=ArtifactCache(tmp_path))
        s1 = plan.run(ctx1, {"xs": [1, 2]})
        assert s1["ys"] == [2, 4] and calls == [[1, 2]]

        ctx2 = RunContext(cache=ArtifactCache(tmp_path))
        s2 = plan.run(ctx2, {"xs": [1, 2]})
        assert s2["ys"] == [2, 4]
        assert calls == [[1, 2]]  # fn did NOT run again
        assert ctx2.counters["cache_double.cache_hits"] == 1
        assert ctx2.records[0].cached is True
        assert ctx2.timings["cache_double_s"] == 0.0

    def test_changed_input_misses_cache(self, tmp_path):
        calls = []

        def fn(ctx, xs):
            calls.append(list(xs))
            return {"ys": [x * 2 for x in xs]}

        stage_obj = Stage(
            name="cache_miss",
            inputs=("xs",),
            outputs=("ys",),
            fn=fn,
            cache_codecs={"ys": JSON_CODEC},
        )
        plan = StagePlan([stage_obj])
        plan.run(RunContext(cache=ArtifactCache(tmp_path)), {"xs": [1]})
        plan.run(RunContext(cache=ArtifactCache(tmp_path)), {"xs": [2]})
        assert calls == [[1], [2]]

    def test_cache_config_projection_controls_key(self, tmp_path):
        calls = []

        def fn(ctx, xs):
            calls.append(1)
            return {"ys": list(xs)}

        stage_obj = Stage(
            name="cache_cfgproj",
            inputs=("xs",),
            outputs=("ys",),
            fn=fn,
            cache_codecs={"ys": JSON_CODEC},
            cache_config=lambda cfg: cfg["relevant"],
        )
        plan = StagePlan([stage_obj])
        cache = ArtifactCache(tmp_path)
        plan.run(RunContext(config={"relevant": 1, "noise": "a"}, cache=cache), {"xs": [1]})
        # Different irrelevant field -> same key -> hit.
        plan.run(RunContext(config={"relevant": 1, "noise": "b"}, cache=cache), {"xs": [1]})
        assert len(calls) == 1
        # Different relevant field -> miss.
        plan.run(RunContext(config={"relevant": 2, "noise": "a"}, cache=cache), {"xs": [1]})
        assert len(calls) == 2

    def test_partial_codecs_not_cacheable(self):
        stage_obj = Stage(
            name="cache_partial",
            inputs=("xs",),
            outputs=("ys", "zs"),
            fn=lambda ctx, xs: {"ys": [], "zs": []},
            cache_codecs={"ys": JSON_CODEC},
        )
        assert not stage_obj.cacheable


class TestRunContext:
    def test_merge_timings_accumulates(self):
        ctx = RunContext()
        ctx.merge_timings({"a_s": 1.0})
        ctx.merge_timings({"a_s": 0.5, "b_s": 2.0})
        assert ctx.timings == {"a_s": 1.5, "b_s": 2.0}

    def test_timing_rows_strip_suffix(self):
        ctx = RunContext()
        ctx.merge_timings({"stay_point_extraction_s": 1.25})
        assert ctx.timing_rows() == [("stay_point_extraction", 1.25)]

    def test_timing_rows_follow_execution_order_not_dict_order(self):
        ctx = RunContext()
        # Timings inserted in one order...
        ctx.timings = {"late_s": 3.0, "early_s": 1.0}
        # ...but executed in another (records are authoritative).
        ctx.record("early", 1.0)
        ctx.record("late", 3.0)
        assert ctx.timing_rows() == [("early", 1.0), ("late", 3.0)]

    def test_timing_rows_dedupe_repeated_executions(self):
        ctx = RunContext()
        with ctx.timed("loop"):
            pass
        with ctx.timed("loop"):
            pass
        ctx.record("loop", 0.0)
        ctx.record("loop", 0.0)
        rows = ctx.timing_rows()
        assert [name for name, _ in rows] == ["loop"]
        assert rows[0][1] == ctx.timings["loop_s"]

    def test_merge_timings_with_records_keeps_producer_order(self):
        producer = RunContext(label="artifacts")
        producer.record("extract", 1.0)
        producer.record("pool", 2.0)
        producer.merge_timings({"extract_s": 1.0, "pool_s": 2.0})

        consumer = RunContext(label="fit")
        consumer.merge_timings(producer.timings, producer.records)
        consumer.record("training", 0.5)
        consumer.timings["training_s"] = 0.5
        assert [name for name, _ in consumer.timing_rows()] == [
            "extract", "pool", "training",
        ]

    def test_merge_timings_without_records_appends_after_recorded(self):
        ctx = RunContext()
        ctx.record("training", 0.5)
        ctx.timings["training_s"] = 0.5
        ctx.merge_timings({"extract_s": 1.0})
        # No records for the merged stage: it trails the executed ones.
        assert [name for name, _ in ctx.timing_rows()] == ["training", "extract"]

    def test_timed_yields_span_handle(self):
        ctx = RunContext()
        with ctx.timed("op") as sp:
            assert sp is None  # tracing disabled -> no span, still timed
        assert "op_s" in ctx.timings

    def test_stage_record_cached_propagation(self):
        ctx = RunContext()
        ctx.record("hot", 1.0)
        ctx.record("warm", 0.0, cached=True)
        assert [r.cached for r in ctx.records] == [False, True]
        cached = [r.name for r in ctx.records if r.cached]
        assert cached == ["warm"]


class TestSharedArtifactOrdering:
    def test_fit_with_shared_artifacts_reports_generation_stages_first(
        self, tiny_workload, tiny_artifacts
    ):
        from repro.core import DLInfMA, DLInfMAConfig

        model = DLInfMA(DLInfMAConfig(selector="maxtc-ilc"))
        model.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        names = [name for name, _ in model.context.timing_rows()]
        assert names == [
            "stay_point_extraction",
            "pool_construction",
            "profile_build",
            "feature_extraction",
            "training",
        ]
