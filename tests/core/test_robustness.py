"""Failure injection and invariance properties for the DLInfMA pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DLInfMA,
    DLInfMAConfig,
    build_candidate_pool,
    build_profiles,
    extract_trip_stay_points,
)
from repro.core.features import FeatureExtractor
from repro.core.locmatcher import LocMatcherConfig, LocMatcherSelector
from repro.trajectory import DeliveryTrip, Trajectory, Waybill
from tests.core.helpers import PROJ, make_address, make_trip
from tests.core.test_locmatcher import synthetic_examples


class TestFailureInjection:
    def test_trip_with_no_stays_is_tolerated(self):
        """A trip whose courier never stops yields no candidates but must
        not crash candidate generation or retrieval."""
        # Fast pass-through: fixes 150 m apart every 10 s -> no stays.
        moving = make_trip(
            "fast", "c1", stops=[(2000.0, 0.0, 400.0, 120.0)], waybills=[("a1", 450.0)]
        )
        # Strip the dwell by slicing the trajectory to the moving prefix.
        prefix = moving.trajectory.slice_time(0.0, 300.0)
        trip = DeliveryTrip("fast", "c1", 0.0, 300.0, prefix, moving.waybills)
        stays = extract_trip_stay_points([trip])
        assert stays["fast"] == []
        pool = build_candidate_pool([], PROJ)
        extractor = FeatureExtractor(
            [trip], stays, pool, {}, {"a1": make_address("a1", "b1", (0.0, 0.0))}
        )
        assert extractor.retrieve_candidates("a1") == []
        assert extractor.build_example("a1") is None

    def test_waybill_for_unknown_address_is_skipped(self):
        trip = make_trip("t1", "c1", stops=[(0.0, 0.0, 100.0, 120.0)], waybills=[("ghost", 200.0)])
        stays = extract_trip_stay_points([trip])
        all_stays = [sp for v in stays.values() for sp in v]
        pool = build_candidate_pool(all_stays, PROJ, 40.0)
        extractor = FeatureExtractor([trip], stays, pool, build_profiles(all_stays, pool), {})
        assert extractor.build_example("ghost") is None

    def test_pipeline_with_some_corrupt_trips(self, tiny_workload, tiny_artifacts):
        """Mixing in empty-trajectory trips must not break fitting."""
        corrupt = DeliveryTrip(
            "corrupt", "cX", 0.0, 1.0, Trajectory("cX", []),
            waybills=[Waybill("w", "a-none", 0.0, 1.0)],
        )
        trips = tiny_workload.trips + [corrupt]
        model = DLInfMA(DLInfMAConfig(selector="mindist"))
        model.fit(
            trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
        )
        preds = model.predict(tiny_workload.test_ids)
        assert set(preds) == set(tiny_workload.test_ids)

    def test_all_confirmations_at_trip_end(self):
        """Worst-case batch confirmation: every waybill recorded at the
        end; candidates are then everything visited — still functional."""
        trip = make_trip(
            "t1", "c1",
            stops=[(0.0, 0.0, 100.0, 120.0), (300.0, 0.0, 400.0, 120.0)],
            waybills=[("a1", 5_000.0), ("a2", 5_000.0)],
        )
        stays = extract_trip_stay_points([trip])
        all_stays = [sp for v in stays.values() for sp in v]
        pool = build_candidate_pool(all_stays, PROJ, 40.0)
        addresses = {
            "a1": make_address("a1", "b1", (5.0, 0.0)),
            "a2": make_address("a2", "b2", (295.0, 0.0)),
        }
        extractor = FeatureExtractor([trip], stays, pool, build_profiles(all_stays, pool), addresses)
        assert len(extractor.retrieve_candidates("a1")) == 2


class TestPaddingInvariance:
    def test_scores_independent_of_batch_padding(self):
        """An example's scores must be identical whether it is scored alone
        or padded inside a batch with much larger candidate sets — the
        attention mask has to fully isolate padded slots."""
        cfg = LocMatcherConfig(max_epochs=10, patience=5, dropout=0.1)
        train = synthetic_examples(30, seed=0, n_cands=(3, 12))
        selector = LocMatcherSelector(config=cfg).fit(train)

        small = synthetic_examples(1, seed=5, n_cands=(2, 3))[0]
        alone = selector.scores(small)
        big = synthetic_examples(1, seed=6, n_cands=(11, 12))[0]
        scalars, hist, mask, poi, deliv, _ = selector._make_batch([small, big])
        logits = selector.net(scalars, hist, mask, poi, deliv)
        from repro.nn.functional import masked_softmax

        batched = masked_softmax(logits.data[None][0], mask).data[0][: small.n_candidates]
        np.testing.assert_allclose(batched, alone, rtol=1e-8, atol=1e-10)


class TestRetrievalProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=150.0, max_value=5_000.0))
    def test_retrieval_monotone_in_recorded_time(self, bound):
        """Later recorded times can only grow the candidate set."""
        def build(recorded):
            trip = make_trip(
                "t1", "c1",
                stops=[(0.0, 0.0, 100.0, 120.0), (300.0, 0.0, 400.0, 120.0),
                       (600.0, 0.0, 700.0, 120.0)],
                waybills=[("a1", recorded)],
            )
            stays = extract_trip_stay_points([trip])
            all_stays = [sp for v in stays.values() for sp in v]
            pool = build_candidate_pool(all_stays, PROJ, 40.0)
            extractor = FeatureExtractor(
                [trip], stays, pool, build_profiles(all_stays, pool),
                {"a1": make_address("a1", "b1", (0.0, 0.0))},
            )
            return set(extractor.retrieve_candidates("a1"))

        earlier = build(bound)
        later = build(bound + 300.0)
        assert earlier <= later

    def test_feature_ranges(self, tiny_artifacts):
        """TC and LC are fractions; distances and durations non-negative."""
        from repro.core.features import COL_DIST, COL_DURATION, COL_LC_ADDRESS, COL_LC_BUILDING, COL_TC

        for example in tiny_artifacts.examples.values():
            f = example.features
            assert ((0.0 <= f[:, COL_TC]) & (f[:, COL_TC] <= 1.0)).all()
            assert ((0.0 <= f[:, COL_LC_BUILDING]) & (f[:, COL_LC_BUILDING] <= 1.0)).all()
            assert ((0.0 <= f[:, COL_LC_ADDRESS]) & (f[:, COL_LC_ADDRESS] <= 1.0)).all()
            assert (f[:, COL_DIST] >= 0).all()
            assert (f[:, COL_DURATION] >= 0).all()
            # True candidate of every trip-involved address: TC > 0 for at
            # least one candidate.
            assert f[:, COL_TC].max() > 0
