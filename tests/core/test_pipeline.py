import numpy as np
import pytest

from repro.core import DLInfMA, DLInfMAConfig, LocMatcherConfig, build_artifacts
from repro.eval import evaluate

FAST_LM = LocMatcherConfig(max_epochs=30, patience=8, lr_step=10)


class TestBuildArtifacts:
    def test_artifact_contents(self, tiny_workload, tiny_artifacts):
        assert len(tiny_artifacts.pool) > 0
        assert len(tiny_artifacts.examples) > 0
        assert set(tiny_artifacts.timings) == {
            "stay_point_extraction_s",
            "pool_construction_s",
            "profile_build_s",
            "feature_extraction_s",
        }
        delivered = {a for t in tiny_workload.trips for a in t.address_ids}
        assert set(tiny_artifacts.examples) <= delivered

    def test_artifact_cache_resumes_from_disk(self, tiny_workload, tmp_path):
        from repro.core import DLInfMAConfig, build_artifacts

        first = build_artifacts(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.projection,
            DLInfMAConfig(),
            cache_dir=tmp_path,
        )
        assert first.context.counters.get("stay_point_extraction.cache_hits", 0) == 0

        second = build_artifacts(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.projection,
            DLInfMAConfig(),
            cache_dir=tmp_path,
        )
        for stage_name in ("stay_point_extraction", "pool_construction", "profile_build"):
            assert second.context.counters[f"{stage_name}.cache_hits"] == 1
        ours = [(c.candidate_id, c.x, c.y, c.weight) for c in second.pool.candidates]
        theirs = [(c.candidate_id, c.x, c.y, c.weight) for c in first.pool.candidates]
        assert ours == pytest.approx(theirs)

    def test_examples_have_features(self, tiny_artifacts):
        for example in tiny_artifacts.examples.values():
            assert example.n_candidates >= 1
            assert example.features.shape[0] == example.n_candidates
            assert np.isfinite(example.features).all()


class TestDLInfMAPipeline:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_workload, tiny_artifacts):
        m = DLInfMA(DLInfMAConfig(locmatcher=FAST_LM))
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        return m

    def test_predictions_cover_test_set(self, fitted, tiny_workload):
        preds = fitted.predict(tiny_workload.test_ids)
        assert set(preds) == set(tiny_workload.test_ids)

    def test_better_than_geocoding(self, fitted, tiny_workload):
        preds = fitted.predict(tiny_workload.test_ids)
        ours = evaluate(preds, tiny_workload.ground_truth)
        geo = evaluate(
            {a: tiny_workload.addresses[a].geocode for a in tiny_workload.test_ids},
            tiny_workload.ground_truth,
        )
        assert ours.mae < geo.mae

    def test_timings_recorded(self, fitted):
        assert set(fitted.timings) == {
            "stay_point_extraction_s",
            "pool_construction_s",
            "profile_build_s",
            "feature_extraction_s",
            "training_s",
        }
        assert all(v >= 0 for v in fitted.timings.values())

    def test_engine_context_attached(self, fitted):
        assert fitted.context is not None
        assert fitted.timings == fitted.context.timings
        assert fitted.counters.get("training.train_examples", 0) > 0

    def test_batched_predict_matches_serial(self, fitted, tiny_workload):
        # LocMatcher has predict_index_batch: the batched branch must agree
        # with address-by-address prediction exactly.
        ids = tiny_workload.test_ids + ["does-not-exist"]
        batched = fitted.predict(ids)
        serial = {a: p for a in ids if (p := fitted.predict_one(a)) is not None}
        assert batched == serial

    def test_unknown_address_returns_none(self, fitted):
        assert fitted.predict_one("does-not-exist") is None

    def test_geocode_fallback_for_candidate_less_address(self, fitted, tiny_workload):
        # An address known to the book but absent from every trip.
        from tests.core.helpers import make_address

        fitted.addresses["ghost"] = make_address("ghost", "bX", (0.0, 0.0))
        point = fitted.predict_one("ghost")
        assert point == fitted.addresses["ghost"].geocode

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DLInfMA().predict(["a"])

    def test_heuristic_selector_pipeline(self, tiny_workload, tiny_artifacts):
        m = DLInfMA(DLInfMAConfig(selector="mindist"))
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        assert len(m.predict(tiny_workload.test_ids)) == len(tiny_workload.test_ids)

    def test_predict_without_batch_selector_matches_serial(
        self, tiny_workload, tiny_artifacts
    ):
        # Heuristic selectors lack predict_index_batch; the regression here
        # is that predict() must still return exactly what per-address
        # prediction does (including the geocode fallback).
        m = DLInfMA(DLInfMAConfig(selector="maxtc"))
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        assert not hasattr(m.selector, "predict_index_batch")
        ids = list(tiny_workload.test_ids) + ["does-not-exist"]
        batched = m.predict(ids)
        serial = {a: p for a in ids if (p := m.predict_one(a)) is not None}
        assert batched == serial

    def test_grid_pool_variant_runs(self, tiny_workload):
        m = DLInfMA(DLInfMAConfig(selector="maxtc", pool_method="grid"))
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
        )
        assert len(m.pool) > 0

    def test_artifacts_shared_between_pipelines(self, tiny_workload, tiny_artifacts):
        a = DLInfMA(DLInfMAConfig(selector="mindist"))
        b = DLInfMA(DLInfMAConfig(selector="maxtc"))
        for m in (a, b):
            m.fit(
                tiny_workload.trips,
                tiny_workload.addresses,
                tiny_workload.ground_truth,
                tiny_workload.train_ids,
                projection=tiny_workload.projection,
                artifacts=tiny_artifacts,
            )
        assert a.pool is b.pool
        assert a.extractor is b.extractor
