import numpy as np
import pytest

from repro.core import DLInfMA, DLInfMAConfig, LocMatcherConfig, build_artifacts
from repro.eval import evaluate

FAST_LM = LocMatcherConfig(max_epochs=30, patience=8, lr_step=10)


class TestBuildArtifacts:
    def test_artifact_contents(self, tiny_workload, tiny_artifacts):
        assert len(tiny_artifacts.pool) > 0
        assert len(tiny_artifacts.examples) > 0
        assert set(tiny_artifacts.timings) == {
            "stay_point_extraction_s",
            "pool_construction_s",
            "feature_extraction_s",
        }
        delivered = {a for t in tiny_workload.trips for a in t.address_ids}
        assert set(tiny_artifacts.examples) <= delivered

    def test_examples_have_features(self, tiny_artifacts):
        for example in tiny_artifacts.examples.values():
            assert example.n_candidates >= 1
            assert example.features.shape[0] == example.n_candidates
            assert np.isfinite(example.features).all()


class TestDLInfMAPipeline:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_workload, tiny_artifacts):
        m = DLInfMA(DLInfMAConfig(locmatcher=FAST_LM))
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        return m

    def test_predictions_cover_test_set(self, fitted, tiny_workload):
        preds = fitted.predict(tiny_workload.test_ids)
        assert set(preds) == set(tiny_workload.test_ids)

    def test_better_than_geocoding(self, fitted, tiny_workload):
        preds = fitted.predict(tiny_workload.test_ids)
        ours = evaluate(preds, tiny_workload.ground_truth)
        geo = evaluate(
            {a: tiny_workload.addresses[a].geocode for a in tiny_workload.test_ids},
            tiny_workload.ground_truth,
        )
        assert ours.mae < geo.mae

    def test_timings_recorded(self, fitted):
        assert set(fitted.timings) == {
            "stay_point_extraction_s",
            "pool_construction_s",
            "feature_extraction_s",
            "training_s",
        }
        assert all(v >= 0 for v in fitted.timings.values())

    def test_unknown_address_returns_none(self, fitted):
        assert fitted.predict_one("does-not-exist") is None

    def test_geocode_fallback_for_candidate_less_address(self, fitted, tiny_workload):
        # An address known to the book but absent from every trip.
        from tests.core.helpers import make_address

        fitted.addresses["ghost"] = make_address("ghost", "bX", (0.0, 0.0))
        point = fitted.predict_one("ghost")
        assert point == fitted.addresses["ghost"].geocode

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DLInfMA().predict(["a"])

    def test_heuristic_selector_pipeline(self, tiny_workload, tiny_artifacts):
        m = DLInfMA(DLInfMAConfig(selector="mindist"))
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        assert len(m.predict(tiny_workload.test_ids)) == len(tiny_workload.test_ids)

    def test_grid_pool_variant_runs(self, tiny_workload):
        m = DLInfMA(DLInfMAConfig(selector="maxtc", pool_method="grid"))
        m.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
        )
        assert len(m.pool) > 0

    def test_artifacts_shared_between_pipelines(self, tiny_workload, tiny_artifacts):
        a = DLInfMA(DLInfMAConfig(selector="mindist"))
        b = DLInfMA(DLInfMAConfig(selector="maxtc"))
        for m in (a, b):
            m.fit(
                tiny_workload.trips,
                tiny_workload.addresses,
                tiny_workload.ground_truth,
                tiny_workload.train_ids,
                projection=tiny_workload.projection,
                artifacts=tiny_artifacts,
            )
        assert a.pool is b.pool
        assert a.extractor is b.extractor
