import numpy as np
import pytest

from repro.core import (
    BUILDING_PREFIX,
    HeuristicSelector,
    build_building_example,
    building_members,
    infer_building_locations,
    retrieve_building_candidates,
)
from repro.core import build_candidate_pool, build_profiles, extract_trip_stay_points
from repro.core.features import COL_TC, FeatureExtractor
from tests.core.helpers import PROJ, make_address, make_trip

A = (0.0, 0.0)
L = (300.0, 0.0)


@pytest.fixture(scope="module")
def extractor():
    trips = [
        make_trip("t1", "c1", stops=[(*A, 100.0, 120.0), (*L, 400.0, 120.0)],
                  waybills=[("a1", 250.0)]),
        make_trip("t2", "c1", stops=[(*A, 100.0, 120.0), (*L, 400.0, 120.0)],
                  waybills=[("a2", 560.0)]),
        make_trip("t3", "c1", stops=[(*L, 100.0, 120.0)],
                  waybills=[("b1", 999.0)]),
    ]
    addresses = {
        "a1": make_address("a1", "bldA", (5.0, 0.0), poi_category=1),
        "a2": make_address("a2", "bldA", (15.0, 0.0), poi_category=1),
        "b1": make_address("b1", "bldB", (310.0, 0.0), poi_category=2),
    }
    stays = extract_trip_stay_points(trips)
    all_stays = [sp for v in stays.values() for sp in v]
    pool = build_candidate_pool(all_stays, PROJ, 40.0)
    profiles = build_profiles(all_stays, pool)
    return FeatureExtractor(trips, stays, pool, profiles, addresses)


class TestBuildingMembers:
    def test_members_listed(self, extractor):
        assert building_members(extractor, "bldA") == ["a1", "a2"]
        assert building_members(extractor, "bldB") == ["b1"]

    def test_unknown_building(self, extractor):
        assert building_members(extractor, "nope") == []


class TestBuildingRetrieval:
    def test_union_with_per_trip_bounds(self, extractor):
        """t1's bound (250) excludes the locker; t2's (560) includes it."""
        cids = retrieve_building_candidates(extractor, "bldA")
        assert len(cids) == 2  # doorstep A from both trips + locker from t2

    def test_unknown_building_empty(self, extractor):
        assert retrieve_building_candidates(extractor, "nope") == []


class TestBuildingExample:
    def test_example_structure(self, extractor):
        example = build_building_example(extractor, "bldA")
        assert example is not None
        assert example.address_id == f"{BUILDING_PREFIX}bldA"
        assert example.n_deliveries == 2  # two trips involve bldA
        assert example.poi_category == 1
        assert example.features.shape[0] == example.n_candidates

    def test_tc_computed_over_building_trips(self, extractor):
        example = build_building_example(extractor, "bldA")
        pool = extractor.pool
        door = pool.nearest(*A).candidate_id
        locker = pool.nearest(*L).candidate_id
        idx = {cid: i for i, cid in enumerate(example.candidate_ids)}
        tc = example.features[:, COL_TC]
        assert tc[idx[door]] == pytest.approx(1.0)   # both bldA trips stop at A
        assert tc[idx[locker]] == pytest.approx(1.0)  # both trips pass L too

    def test_none_for_unknown_building(self, extractor):
        assert build_building_example(extractor, "nope") is None


class TestInferBuildingLocations:
    def test_heuristic_inference(self, extractor):
        selector = HeuristicSelector("mindist")
        out = infer_building_locations(extractor, selector, ["bldA", "bldB", "nope"])
        assert set(out) == {"bldA", "bldB"}
        # bldA geocode centroid is at x=10 -> doorstep (x~0) is nearest.
        x, _ = PROJ.to_xy(out["bldA"].lng, out["bldA"].lat)
        assert x == pytest.approx(0.0, abs=10.0)

    def test_consistent_with_dataset_pipeline(self, tiny_artifacts):
        selector = HeuristicSelector("maxtc-ilc")
        buildings = sorted(
            {a.building_id for a in tiny_artifacts.extractor.addresses.values()}
        )
        out = infer_building_locations(tiny_artifacts.extractor, selector, buildings)
        assert len(out) >= len(buildings) // 2
        for point in out.values():
            x, y = tiny_artifacts.pool.projection.to_xy(point.lng, point.lat)
            assert -2_000 < x < 5_000 and -2_000 < y < 5_000
