"""Handcrafted deterministic trip construction for exact-semantics tests."""

from __future__ import annotations

import numpy as np

from repro.geo import LocalProjection, Point
from repro.trajectory import Address, DeliveryTrip, TrajPoint, Trajectory, Waybill

ORIGIN = Point(116.40, 39.90)
PROJ = LocalProjection(ORIGIN)


def make_trip(
    trip_id: str,
    courier_id: str,
    stops: list[tuple[float, float, float, float]],
    waybills: list[tuple[str, float]],
    t_start: float = 0.0,
    station: tuple[float, float] = (-200.0, 0.0),
    speed: float = 5.0,
    fix_interval: float = 10.0,
) -> DeliveryTrip:
    """Build a noise-free trip.

    ``stops``: (x_m, y_m, t_arrive, dwell_s) — dwells must be consistent
    with travel times.  ``waybills``: (address_id, t_delivered_recorded).
    """
    anchors_t = [t_start]
    anchors_x = [station[0]]
    anchors_y = [station[1]]
    for x, y, t_arrive, dwell in stops:
        anchors_t.extend([t_arrive, t_arrive + dwell])
        anchors_x.extend([x, x])
        anchors_y.extend([y, y])
    # Return to station.
    lx, ly = anchors_x[-1], anchors_y[-1]
    dist = np.hypot(lx - station[0], ly - station[1])
    anchors_t.append(anchors_t[-1] + dist / speed)
    anchors_x.append(station[0])
    anchors_y.append(station[1])

    times = np.arange(t_start, anchors_t[-1] + fix_interval, fix_interval)
    xs = np.interp(times, anchors_t, anchors_x)
    ys = np.interp(times, anchors_t, anchors_y)
    lng, lat = PROJ.to_lnglat(xs, ys)
    trajectory = Trajectory(
        courier_id,
        [TrajPoint(float(a), float(b), float(t)) for a, b, t in zip(np.atleast_1d(lng), np.atleast_1d(lat), times)],
    )
    wb = [
        Waybill(f"{trip_id}-{addr}", addr, t_received=t_start - 3600.0, t_delivered=t_rec)
        for addr, t_rec in waybills
    ]
    return DeliveryTrip(
        trip_id=trip_id,
        courier_id=courier_id,
        t_start=t_start,
        t_end=float(times[-1]),
        trajectory=trajectory,
        waybills=wb,
    )


def make_address(
    address_id: str,
    building_id: str,
    geocode_xy: tuple[float, float],
    poi_category: int = 0,
) -> Address:
    """An address whose geocode is given in meters around ORIGIN."""
    lng, lat = PROJ.to_lnglat(*geocode_xy)
    return Address(
        address_id=address_id,
        text=f"addr {address_id}",
        building_id=building_id,
        geocode=Point(float(lng), float(lat)),
        poi_category=poi_category,
    )


def point_at(x: float, y: float) -> Point:
    """Meters -> lng/lat Point around ORIGIN."""
    lng, lat = PROJ.to_lnglat(x, y)
    return Point(float(lng), float(lat))
