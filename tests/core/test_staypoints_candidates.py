import numpy as np
import pytest

from repro.core import (
    ExtractionConfig,
    build_candidate_pool,
    build_profiles,
    assign_stay_points,
    extract_trip_stay_points,
)
from repro.trajectory import StayPoint
from tests.core.helpers import PROJ, make_trip


class TestExtractTripStayPoints:
    def test_finds_stays_at_stops(self):
        trip = make_trip(
            "t1", "c1",
            stops=[(0.0, 0.0, 40.0, 120.0), (300.0, 0.0, 220.0, 90.0)],
            waybills=[("a1", 170.0)],
        )
        stays = extract_trip_stay_points([trip])["t1"]
        assert len(stays) == 2
        xs = [PROJ.to_xy(sp.lng, sp.lat)[0] for sp in stays]
        assert xs[0] == pytest.approx(0.0, abs=3.0)
        assert xs[1] == pytest.approx(300.0, abs=3.0)

    def test_keyed_by_trip_id(self):
        t1 = make_trip("t1", "c1", [(0.0, 0.0, 40.0, 120.0)], [("a1", 100.0)])
        t2 = make_trip("t2", "c1", [(0.0, 0.0, 40.0, 120.0)], [("a1", 100.0)])
        out = extract_trip_stay_points([t1, t2])
        assert set(out) == {"t1", "t2"}

    def test_empty_trips(self):
        assert extract_trip_stay_points([]) == {}


def sp(x, y, t=0.0, dur=60.0, courier="c1"):
    lng, lat = PROJ.to_lnglat(x, y)
    return StayPoint(float(lng), float(lat), t - dur / 2, t + dur / 2, courier, n_points=4)


class TestBuildCandidatePool:
    def test_empty(self):
        pool = build_candidate_pool([], PROJ)
        assert len(pool) == 0
        assert pool.nearest(0.0, 0.0) is None

    def test_close_stays_merge(self):
        pool = build_candidate_pool([sp(0, 0), sp(10, 0), sp(500, 0)], PROJ, 40.0)
        assert len(pool) == 2

    def test_candidate_ids_are_dense(self):
        pool = build_candidate_pool([sp(0, 0), sp(500, 0), sp(1000, 0)], PROJ, 40.0)
        assert sorted(c.candidate_id for c in pool.candidates) == [0, 1, 2]

    def test_pairwise_separation_invariant(self):
        rng = np.random.default_rng(0)
        stays = [sp(float(x), float(y), t=float(i)) for i, (x, y) in enumerate(rng.uniform(0, 800, (120, 2)))]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        coords = np.array([[c.x, c.y] for c in pool.candidates])
        for i in range(len(coords)):
            for j in range(i + 1, len(coords)):
                assert np.hypot(*(coords[i] - coords[j])) >= 40.0 - 1e-6

    def test_biweekly_batching_equivalent_coverage(self):
        """Stays spread over 6 weeks go through incremental merging and
        still yield one candidate per true location."""
        stays = []
        for week in range(6):
            t = week * 7 * 86_400.0
            stays += [sp(0, 0, t=t), sp(5, 5, t=t + 100), sp(500, 0, t=t + 200)]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        assert len(pool) == 2

    def test_grid_method(self):
        pool = build_candidate_pool([sp(1, 1), sp(39, 1)], PROJ, 40.0, method="grid")
        assert len(pool) == 1
        pool2 = build_candidate_pool([sp(39, 1), sp(41, 1)], PROJ, 40.0, method="grid")
        assert len(pool2) == 2  # boundary split: the documented weakness

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            build_candidate_pool([sp(0, 0)], PROJ, 40.0, method="bogus")

    def test_nearest_and_within(self):
        pool = build_candidate_pool([sp(0, 0), sp(500, 0)], PROJ, 40.0)
        near = pool.nearest(10.0, 0.0)
        assert near.x == pytest.approx(0.0, abs=1.0)
        hits = pool.within(0.0, 0.0, 100.0)
        assert len(hits) == 1

    def test_lnglat_consistent_with_xy(self):
        pool = build_candidate_pool([sp(123, 456)], PROJ, 40.0)
        c = pool.candidates[0]
        x, y = PROJ.to_xy(c.lng, c.lat)
        assert x == pytest.approx(c.x, abs=1e-6)
        assert y == pytest.approx(c.y, abs=1e-6)


class TestProfiles:
    def test_average_duration(self):
        stays = [sp(0, 0, t=100, dur=60), sp(2, 0, t=200, dur=120)]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        profiles = build_profiles(stays, pool)
        assert profiles[0].avg_duration_s == pytest.approx(90.0)

    def test_courier_count(self):
        stays = [sp(0, 0, courier="c1"), sp(2, 0, t=100, courier="c2"), sp(3, 0, t=200, courier="c1")]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        profiles = build_profiles(stays, pool)
        assert profiles[0].n_couriers == 2

    def test_time_histogram(self):
        # Visits at 08:30 and 14:30 (day seconds).
        stays = [sp(0, 0, t=8.5 * 3600), sp(2, 0, t=14.5 * 3600 + 86_400)]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        hist = build_profiles(stays, pool)[0].time_hist
        assert hist.sum() == pytest.approx(1.0)
        assert hist[8] == pytest.approx(0.5)
        assert hist[14] == pytest.approx(0.5)

    def test_unvisited_candidate_zero_profile(self):
        # Profiles are defined for every pool candidate even when stay
        # assignment leaves one empty (cannot happen from build, so check
        # the all-candidates contract instead).
        stays = [sp(0, 0), sp(500, 0, t=100)]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        profiles = build_profiles(stays, pool)
        assert set(profiles) == {0, 1}

    def test_profile_vector_layout(self):
        stays = [sp(0, 0, t=8.5 * 3600, dur=80)]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        vec = build_profiles(stays, pool)[0].as_vector()
        assert vec.shape == (26,)
        assert vec[0] == pytest.approx(80.0)
        assert vec[1] == 1.0

    def test_assign_stay_points(self):
        stays = [sp(0, 0), sp(500, 0, t=100)]
        pool = build_candidate_pool(stays, PROJ, 40.0)
        assignment = assign_stay_points([sp(3, 0), sp(497, 1)], pool)
        a0 = pool.by_id[assignment[0]]
        a1 = pool.by_id[assignment[1]]
        assert a0.x == pytest.approx(0.0, abs=1.0)
        assert a1.x == pytest.approx(500.0, abs=1.0)

    def test_assign_empty_pool(self):
        pool = build_candidate_pool([], PROJ)
        assert assign_stay_points([sp(0, 0)], pool) == [None]
