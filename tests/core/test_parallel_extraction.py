import pytest

from repro.core import extract_trip_stay_points


class TestParallelExtraction:
    def test_workers_match_serial(self, tiny_workload):
        trips = tiny_workload.trips[:8]
        serial = extract_trip_stay_points(trips)
        parallel = extract_trip_stay_points(trips, workers=2)
        assert set(serial) == set(parallel)
        for trip_id in serial:
            assert serial[trip_id] == parallel[trip_id]

    def test_single_trip_stays_serial(self, tiny_workload):
        trips = tiny_workload.trips[:1]
        out = extract_trip_stay_points(trips, workers=4)
        assert len(out) == 1
