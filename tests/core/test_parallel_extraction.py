from repro.core import ExtractionConfig, extract_trip_stay_points


class TestParallelExtraction:
    def test_workers_match_serial(self, tiny_workload):
        trips = tiny_workload.trips[:8]
        serial = extract_trip_stay_points(trips)
        parallel = extract_trip_stay_points(trips, workers=2)
        assert set(serial) == set(parallel)
        for trip_id in serial:
            assert serial[trip_id] == parallel[trip_id]

    def test_workers_flow_through_config(self, tiny_workload):
        """ExtractionConfig(workers=...) parallelizes without an explicit
        ``workers=`` argument — the path DLInfMAConfig plumbs through."""
        trips = tiny_workload.trips[:8]
        serial = extract_trip_stay_points(trips)
        via_config = extract_trip_stay_points(trips, ExtractionConfig(workers=2))
        assert via_config == serial

    def test_explicit_workers_overrides_config(self, tiny_workload):
        trips = tiny_workload.trips[:4]
        config = ExtractionConfig(workers=4)
        assert extract_trip_stay_points(trips, config, workers=1) == extract_trip_stay_points(trips)

    def test_single_trip_stays_serial(self, tiny_workload):
        trips = tiny_workload.trips[:1]
        out = extract_trip_stay_points(trips, workers=4)
        assert len(out) == 1
