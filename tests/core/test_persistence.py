import numpy as np
import pytest

from repro.core import (
    FeatureConfig,
    LocMatcherConfig,
    LocMatcherSelector,
    load_candidate_pool,
    load_locations,
    load_locmatcher_into,
    load_profiles,
    save_candidate_pool,
    save_locations,
    save_locmatcher,
    save_profiles,
    build_candidate_pool,
    build_profiles,
)
from repro.geo import Point
from repro.trajectory import StayPoint
from tests.core.helpers import PROJ
from tests.core.test_locmatcher import synthetic_examples


def make_stays():
    def sp(x, y, t=0.0):
        lng, lat = PROJ.to_lnglat(x, y)
        return StayPoint(float(lng), float(lat), t, t + 90.0, "c1", n_points=5)

    return [sp(0, 0), sp(4, 2, 100), sp(500, 0, 200)]


class TestPoolRoundtrip:
    def test_roundtrip(self, tmp_path):
        pool = build_candidate_pool(make_stays(), PROJ, 40.0)
        path = tmp_path / "pool.json"
        save_candidate_pool(pool, path)
        loaded = load_candidate_pool(path)
        assert len(loaded) == len(pool)
        for a, b in zip(pool.candidates, loaded.candidates):
            assert a == b
        assert loaded.projection.origin == pool.projection.origin
        assert loaded.nearest(0.0, 0.0).candidate_id == pool.nearest(0.0, 0.0).candidate_id


class TestProfilesRoundtrip:
    def test_roundtrip(self, tmp_path):
        stays = make_stays()
        pool = build_candidate_pool(stays, PROJ, 40.0)
        profiles = build_profiles(stays, pool)
        path = tmp_path / "profiles.npz"
        save_profiles(profiles, path)
        loaded = load_profiles(path)
        assert set(loaded) == set(profiles)
        for cid in profiles:
            assert loaded[cid].avg_duration_s == pytest.approx(profiles[cid].avg_duration_s)
            assert loaded[cid].n_couriers == profiles[cid].n_couriers
            np.testing.assert_allclose(loaded[cid].time_hist, profiles[cid].time_hist)

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_profiles({}, path)
        assert load_profiles(path) == {}


class TestLocMatcherRoundtrip:
    def test_serving_reproduces_scores(self, tmp_path):
        cfg = LocMatcherConfig(max_epochs=15, patience=5)
        train = synthetic_examples(30, seed=0)
        fitted = LocMatcherSelector(config=cfg).fit(train)
        path = tmp_path / "model.npz"
        save_locmatcher(fitted, path)

        fresh = LocMatcherSelector(FeatureConfig(), cfg)
        load_locmatcher_into(fresh, path)
        probe = synthetic_examples(5, seed=9)
        for example in probe:
            np.testing.assert_allclose(
                fresh.scores(example), fitted.scores(example), rtol=1e-10
            )

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_locmatcher(LocMatcherSelector(), tmp_path / "x.npz")


class TestLocationsRoundtrip:
    def test_roundtrip(self, tmp_path):
        locations = {"a1": Point(116.4, 39.9), "a2": Point(116.41, 39.91)}
        path = tmp_path / "loc.json"
        save_locations(locations, path)
        assert load_locations(path) == locations
