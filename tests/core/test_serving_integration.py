"""End-to-end serving path: fit -> persist everything -> reload -> serve.

Mirrors the deployed architecture (Figure 14): the offline side trains and
writes artifacts; the online side reconstructs the selector + pool from
disk (no training data) and must produce byte-identical predictions.
"""

import numpy as np
import pytest

from repro.core import (
    DLInfMA,
    DLInfMAConfig,
    FeatureConfig,
    LocMatcherConfig,
    LocMatcherSelector,
    load_candidate_pool,
    load_locations,
    load_locmatcher_into,
    load_profiles,
    save_candidate_pool,
    save_locations,
    save_locmatcher,
    save_profiles,
)

FAST = LocMatcherConfig(max_epochs=20, patience=6, lr_step=8)


class TestServingRoundtrip:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_workload, tiny_artifacts):
        model = DLInfMA(DLInfMAConfig(locmatcher=FAST))
        model.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            tiny_workload.val_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        return model

    def test_full_artifact_roundtrip(self, fitted, tiny_workload, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("serving")
        # Offline side: write everything a serving process needs.
        save_candidate_pool(fitted.pool, tmp_path / "pool.json")
        save_profiles(fitted.extractor.profiles, tmp_path / "profiles.npz")
        save_locmatcher(fitted.selector, tmp_path / "model.npz")
        offline_locations = fitted.predict(tiny_workload.test_ids)
        save_locations(offline_locations, tmp_path / "locations.json")

        # Online side: reload without any training data.
        pool = load_candidate_pool(tmp_path / "pool.json")
        profiles = load_profiles(tmp_path / "profiles.npz")
        selector = load_locmatcher_into(
            LocMatcherSelector(FeatureConfig(), FAST), tmp_path / "model.npz"
        )
        assert len(pool) == len(fitted.pool)
        assert set(profiles) == set(fitted.extractor.profiles)

        # Scoring the same candidate sets reproduces predictions exactly.
        for address_id in tiny_workload.test_ids:
            example = fitted.examples.get(address_id)
            if example is None:
                continue
            np.testing.assert_allclose(
                selector.scores(example), fitted.selector.scores(example), rtol=1e-12
            )
        # And the persisted location table round-trips.
        assert load_locations(tmp_path / "locations.json") == offline_locations

    def test_reloaded_pool_answers_nearest_queries(self, fitted, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("pool-queries")
        save_candidate_pool(fitted.pool, tmp_path / "pool.json")
        pool = load_candidate_pool(tmp_path / "pool.json")
        rng = np.random.default_rng(0)
        for _ in range(20):
            x, y = rng.uniform(0, 900, size=2)
            a = fitted.pool.nearest(float(x), float(y))
            b = pool.nearest(float(x), float(y))
            assert a.candidate_id == b.candidate_id
