"""Cross-stage property tests: dataset -> pipeline invariants."""

import numpy as np
import pytest

from repro.core import DLInfMA, DLInfMAConfig
from repro.geo import haversine_m


class TestPipelineInvariants:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_workload, tiny_artifacts):
        model = DLInfMA(DLInfMAConfig(selector="maxtc-ilc"))
        model.fit(
            tiny_workload.trips,
            tiny_workload.addresses,
            tiny_workload.ground_truth,
            tiny_workload.train_ids,
            projection=tiny_workload.projection,
            artifacts=tiny_artifacts,
        )
        return model

    def test_predictions_are_candidate_points(self, fitted, tiny_workload):
        """Every prediction for an in-history address must be a pool
        candidate's location (never an interpolation)."""
        candidate_points = {
            (round(c.lng, 9), round(c.lat, 9)) for c in fitted.pool.candidates
        }
        preds = fitted.predict(tiny_workload.test_ids)
        for address_id, point in preds.items():
            if address_id in fitted.examples:
                assert (round(point.lng, 9), round(point.lat, 9)) in candidate_points

    def test_prediction_within_retrieved_set(self, fitted, tiny_workload):
        """The chosen location is one of the address's retrieved candidates."""
        for address_id in tiny_workload.test_ids:
            example = fitted.examples.get(address_id)
            if example is None:
                continue
            point = fitted.predict_one(address_id)
            distances = [
                haversine_m(point.lng, point.lat, fitted.pool.by_id[cid].lng, fitted.pool.by_id[cid].lat)
                for cid in example.candidate_ids
            ]
            assert min(distances) < 0.5  # exactly one of its candidates

    def test_pool_candidates_near_stay_activity(self, fitted, tiny_workload):
        """Candidates only exist where couriers actually stayed: every
        candidate is within the city's activity envelope."""
        width = 3 * 320.0  # tiny preset: 3 blocks x 320 m
        for candidate in fitted.pool.candidates:
            assert -500 < candidate.x < width + 500
            assert -500 < candidate.y < 320.0 + 500

    def test_examples_only_for_delivered_addresses(self, fitted, tiny_workload):
        delivered = {a for t in tiny_workload.trips for a in t.address_ids}
        assert set(fitted.examples) <= delivered

    def test_labels_are_valid_indices(self, fitted, tiny_workload):
        for address_id in tiny_workload.train_ids:
            example = fitted.examples.get(address_id)
            if example is None or example.label is None:
                continue
            assert 0 <= example.label < example.n_candidates
