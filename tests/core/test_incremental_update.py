"""Incremental :meth:`DLInfMA.update` semantics (Section VI-A).

The handcrafted scenario aligns batch boundaries with the pool builder's
bi-weekly periods, so an incremental update and a full refit on the union
see *exactly* the same batch sequence — with a deterministic selector the
two must agree bit-for-bit (pool, features, predictions).  The counters
then prove the update only did O(new data) work.
"""

import numpy as np
import pytest

from repro.core import DLInfMA, DLInfMAConfig, LocMatcherConfig
from repro.eval import evaluate
from tests.core.helpers import PROJ, make_address, make_trip, point_at

PERIOD = 14 * 86_400.0

# Four well-separated delivery spots (>> the 40 m merge threshold).
A, B, C, D = (0.0, 0.0), (300.0, 0.0), (600.0, 0.0), (900.0, 0.0)

ADDRESSES = {
    "a1": make_address("a1", "b1", (10.0, 0.0)),
    "a2": make_address("a2", "b2", (290.0, 0.0)),
    "a3": make_address("a3", "b3", (610.0, 0.0)),
    "a4": make_address("a4", "b4", (890.0, 0.0)),
}
GROUND_TRUTH = {"a1": point_at(*A), "a2": point_at(*B), "a3": point_at(*C), "a4": point_at(*D)}
TRAIN_IDS = ["a1", "a2", "a3", "a4"]


def batch_one():
    return [
        make_trip("t1", "c1", stops=[(*A, 100.0, 120.0), (*B, 400.0, 120.0)],
                  waybills=[("a1", 250.0), ("a2", 600.0)]),
        make_trip("t2", "c2", stops=[(*A, 100.0, 120.0), (*B, 400.0, 120.0)],
                  waybills=[("a1", 600.0), ("a2", 600.0)]),
        make_trip("t3", "c1", stops=[(*C, 100.0, 120.0)], waybills=[("a3", 300.0)]),
    ]


def batch_two():
    t0 = PERIOD  # lands exactly one bi-weekly period later
    return [
        make_trip("t4", "c2",
                  stops=[(*C, t0 + 100.0, 120.0), (*D, t0 + 400.0, 120.0)],
                  waybills=[("a3", t0 + 300.0), ("a4", t0 + 600.0)], t_start=t0),
        make_trip("t5", "c3", stops=[(*D, t0 + 100.0, 120.0)],
                  waybills=[("a4", t0 + 300.0)], t_start=t0),
    ]


def fit_model(trips, config=None):
    model = DLInfMA(config or DLInfMAConfig(selector="maxtc"))
    model.fit(trips, ADDRESSES, GROUND_TRUTH, TRAIN_IDS, projection=PROJ)
    return model


@pytest.fixture()
def updated():
    model = fit_model(batch_one())
    model.update(batch_two(), GROUND_TRUTH, TRAIN_IDS)
    return model


@pytest.fixture()
def refit():
    return fit_model(batch_one() + batch_two())


class TestUpdateEquivalence:
    def test_pool_identical_to_full_refit(self, updated, refit):
        ours = [(c.candidate_id, c.x, c.y, c.weight) for c in updated.pool.candidates]
        theirs = [(c.candidate_id, c.x, c.y, c.weight) for c in refit.pool.candidates]
        assert ours == theirs

    def test_examples_identical_to_full_refit(self, updated, refit):
        assert set(updated.examples) == set(refit.examples) == {"a1", "a2", "a3", "a4"}
        for address_id in updated.examples:
            ours = updated.examples[address_id]
            theirs = refit.examples[address_id]
            assert ours.candidate_ids == theirs.candidate_ids
            assert np.array_equal(ours.features, theirs.features)

    def test_predictions_identical_to_full_refit(self, updated, refit):
        ids = list(ADDRESSES)
        assert updated.predict(ids) == refit.predict(ids)

    def test_second_update_still_matches(self, updated):
        t0 = 2 * PERIOD
        batch_three = [
            make_trip("t6", "c1", stops=[(*B, t0 + 100.0, 120.0)],
                      waybills=[("a2", t0 + 300.0)], t_start=t0),
        ]
        updated.update(batch_three, GROUND_TRUTH, TRAIN_IDS)
        full = fit_model(batch_one() + batch_two() + batch_three)
        assert updated.predict(list(ADDRESSES)) == full.predict(list(ADDRESSES))


class TestUpdateIsIncremental:
    def test_extraction_runs_only_over_new_trips(self, updated):
        assert updated.counters["stay_point_extraction.trips"] == 2

    def test_unaffected_addresses_are_refreshed_not_rebuilt(self, updated):
        # t4/t5 touch a3 and a4; a1 and a2 are remapped + refreshed.
        assert updated.counters["feature_extraction.addresses_affected"] == 2
        assert updated.counters["feature_extraction.examples_refreshed"] == 2
        assert updated.counters["feature_extraction.examples_rebuilt"] == 2

    def test_update_timings_cover_all_stages(self, updated):
        assert set(updated.timings) == {
            "stay_point_extraction_s",
            "pool_construction_s",
            "profile_build_s",
            "feature_extraction_s",
            "training_s",
        }

    def test_known_trips_are_skipped(self):
        model = fit_model(batch_one())
        before = model.predict(list(ADDRESSES))
        model.update(batch_one())  # pure overlap: nothing new
        assert model.counters["stay_point_extraction.trips"] == 0
        assert model.predict(list(ADDRESSES)) == before


class TestUpdateEdgeCases:
    def test_update_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DLInfMA().update(batch_two())

    def test_update_without_labels_keeps_serving(self):
        model = fit_model(batch_one())
        selector = model.selector
        model.update(batch_two())  # no ground truth: selector untouched
        assert model.selector is selector
        assert set(model.predict(list(ADDRESSES))) == set(ADDRESSES)

    def test_grid_pool_falls_back_to_full_refit(self):
        config = DLInfMAConfig(selector="maxtc", pool_method="grid")
        model = fit_model(batch_one(), config)
        model.update(batch_two(), GROUND_TRUTH, TRAIN_IDS)
        full = fit_model(batch_one() + batch_two(), config)
        assert model.predict(list(ADDRESSES)) == full.predict(list(ADDRESSES))


FAST_LM = LocMatcherConfig(max_epochs=30, patience=8, lr_step=10)


class TestWarmStart:
    def test_locmatcher_warm_start_reuses_net(self):
        config = DLInfMAConfig(locmatcher=FAST_LM)
        model = fit_model(batch_one(), config)
        net = model.selector.net
        model.update(batch_two(), GROUND_TRUTH, TRAIN_IDS)
        assert model.selector.net is net  # continued, not rebuilt

    def test_warm_start_accuracy_close_to_refit(self):
        config = DLInfMAConfig(locmatcher=FAST_LM)
        model = fit_model(batch_one(), config)
        model.update(batch_two(), GROUND_TRUTH, TRAIN_IDS)
        full = fit_model(batch_one() + batch_two(), config)
        ours = evaluate(model.predict(list(ADDRESSES)), GROUND_TRUTH)
        theirs = evaluate(full.predict(list(ADDRESSES)), GROUND_TRUTH)
        assert ours.mae <= theirs.mae + 150.0
