"""Exact-semantics tests of candidate retrieval and feature extraction,
on a handcrafted three-trip scenario mirroring the paper's Figures 5-6."""

import numpy as np
import pytest

from repro.core import (
    COL_DIST,
    COL_LC_ADDRESS,
    COL_LC_BUILDING,
    COL_TC,
    COL_DURATION,
    COL_COURIERS,
    FeatureConfig,
    FeatureExtractor,
    HIST_START,
    N_FEATURES,
    build_candidate_pool,
    build_profiles,
    extract_trip_stay_points,
)
from tests.core.helpers import PROJ, make_address, make_trip, point_at

# Spots: A = doorstep of building b1, L = shared locker, C = doorstep of b2.
A = (0.0, 0.0)
L = (300.0, 0.0)
C = (600.0, 0.0)


@pytest.fixture(scope="module")
def scenario():
    trips = [
        make_trip(
            "t1", "c1",
            stops=[(*A, 100.0, 120.0), (*L, 400.0, 120.0), (*C, 700.0, 120.0)],
            waybills=[("a1", 250.0), ("a2", 900.0)],
        ),
        make_trip(
            "t2", "c1",
            stops=[(*A, 100.0, 120.0), (*L, 400.0, 120.0)],
            waybills=[("a1", 999.0)],
        ),
        make_trip(
            "t3", "c1",
            stops=[(*L, 100.0, 120.0), (*C, 400.0, 120.0)],
            waybills=[("a2", 999.0)],
        ),
    ]
    addresses = {
        "a1": make_address("a1", "b1", (10.0, 0.0), poi_category=2),
        "a2": make_address("a2", "b2", (590.0, 0.0), poi_category=5),
    }
    stay_points = extract_trip_stay_points(trips)
    pool = build_candidate_pool(
        [sp for stays in stay_points.values() for sp in stays], PROJ, 40.0
    )
    profiles = build_profiles(
        [sp for stays in stay_points.values() for sp in stays], pool
    )
    extractor = FeatureExtractor(trips, stay_points, pool, profiles, addresses)
    return extractor, pool


def candidate_near(pool, xy):
    c = pool.nearest(*xy)
    assert np.hypot(c.x - xy[0], c.y - xy[1]) < 10.0
    return c.candidate_id


class TestRetrieval:
    def test_pool_has_three_locations(self, scenario):
        _, pool = scenario
        assert len(pool) == 3

    def test_temporal_bound_excludes_later_stays(self, scenario):
        """a1's t1 confirmation (250 s) excludes the locker stay (~460 s),
        but t2's late confirmation includes it."""
        extractor, pool = scenario
        cids = extractor.retrieve_candidates("a1")
        expected = {candidate_near(pool, A), candidate_near(pool, L)}
        assert set(cids) == expected
        assert candidate_near(pool, C) not in cids

    def test_union_over_trips(self, scenario):
        extractor, pool = scenario
        cids = set(extractor.retrieve_candidates("a2"))
        assert cids == {candidate_near(pool, A), candidate_near(pool, L), candidate_near(pool, C)}

    def test_unknown_address(self, scenario):
        extractor, _ = scenario
        assert extractor.retrieve_candidates("nope") == []

    def test_multiple_waybills_use_latest_bound(self):
        """Two parcels to one address in the same trip: the later recorded
        time is the temporal bound (any earlier stay could be the drop)."""
        from repro.core import build_candidate_pool, build_profiles, extract_trip_stay_points

        trip = make_trip(
            "t1", "c1",
            stops=[(*A, 100.0, 120.0), (*L, 400.0, 120.0)],
            waybills=[("a1", 250.0), ("a1", 560.0)],
        )
        # make_trip builds duplicate waybill ids; rebuild with distinct ids.
        from repro.trajectory import DeliveryTrip, Waybill

        trip = DeliveryTrip(
            "t1", "c1", trip.t_start, trip.t_end, trip.trajectory,
            waybills=[
                Waybill("w1", "a1", -100.0, 250.0),
                Waybill("w2", "a1", -100.0, 560.0),
            ],
        )
        stays = extract_trip_stay_points([trip])
        all_stays = [sp for v in stays.values() for sp in v]
        pool = build_candidate_pool(all_stays, PROJ, 40.0)
        extractor = FeatureExtractor(
            [trip], stays, pool, build_profiles(all_stays, pool),
            {"a1": make_address("a1", "b1", (5.0, 0.0))},
        )
        cids = extractor.retrieve_candidates("a1")
        # Bound 560 includes the locker stay (~460); bound 250 alone wouldn't.
        assert len(cids) == 2


class TestMatchingFeatures:
    def test_trip_coverage_eq1(self, scenario):
        """TC per Eq. 1 on the handcrafted trips."""
        extractor, pool = scenario
        example = extractor.build_example("a2")
        idx = {cid: i for i, cid in enumerate(example.candidate_ids)}
        tc = example.features[:, COL_TC]
        assert tc[idx[candidate_near(pool, A)]] == pytest.approx(0.5)  # t1 only
        assert tc[idx[candidate_near(pool, L)]] == pytest.approx(1.0)
        assert tc[idx[candidate_near(pool, C)]] == pytest.approx(1.0)

    def test_location_commonality_eq2(self, scenario):
        """LC per Eq. 2: share of non-building trips passing the spot."""
        extractor, pool = scenario
        example = extractor.build_example("a1")
        idx = {cid: i for i, cid in enumerate(example.candidate_ids)}
        lc = example.features[:, COL_LC_BUILDING]
        # Trips not involving b1: only t3, which visits L and C.
        assert lc[idx[candidate_near(pool, A)]] == pytest.approx(0.0)
        assert lc[idx[candidate_near(pool, L)]] == pytest.approx(1.0)

    def test_lc_address_mode_differs(self, scenario):
        """Address-level LC uses trips not involving the address."""
        extractor, pool = scenario
        example = extractor.build_example("a1")
        idx = {cid: i for i, cid in enumerate(example.candidate_ids)}
        lca = example.features[:, COL_LC_ADDRESS]
        # Trips not involving a1: only t3 here, so matches building LC.
        assert lca[idx[candidate_near(pool, A)]] == pytest.approx(0.0)
        assert lca[idx[candidate_near(pool, L)]] == pytest.approx(1.0)

    def test_distance_feature(self, scenario):
        extractor, pool = scenario
        example = extractor.build_example("a1")
        idx = {cid: i for i, cid in enumerate(example.candidate_ids)}
        dist = example.features[:, COL_DIST]
        assert dist[idx[candidate_near(pool, A)]] == pytest.approx(10.0, abs=5.0)
        assert dist[idx[candidate_near(pool, L)]] == pytest.approx(290.0, abs=5.0)

    def test_profile_features_present(self, scenario):
        extractor, _ = scenario
        example = extractor.build_example("a1")
        assert (example.features[:, COL_DURATION] > 60.0).all()
        assert (example.features[:, COL_COURIERS] == 1).all()
        hist = example.features[:, HIST_START:]
        np.testing.assert_allclose(hist.sum(axis=1), 1.0)

    def test_address_features(self, scenario):
        extractor, _ = scenario
        e1 = extractor.build_example("a1")
        assert e1.n_deliveries == 2
        assert e1.poi_category == 2
        assert e1.features.shape == (2, N_FEATURES)

    def test_label_example_nearest_candidate(self, scenario):
        extractor, pool = scenario
        example = extractor.build_example("a1")
        extractor.label_example(example, point_at(*A))
        assert example.candidate_ids[example.label] == candidate_near(pool, A)
        extractor.label_example(example, point_at(290.0, 5.0))
        assert example.candidate_ids[example.label] == candidate_near(pool, L)

    def test_build_examples_skips_unknown(self, scenario):
        extractor, _ = scenario
        out = extractor.build_examples(["a1", "missing", "a2"])
        assert set(out) == {"a1", "a2"}

    def test_candidate_point_roundtrip(self, scenario):
        extractor, pool = scenario
        cid = candidate_near(pool, L)
        point = extractor.candidate_point(cid)
        x, y = PROJ.to_xy(point.lng, point.lat)
        assert x == pytest.approx(300.0, abs=5.0)


class TestFeatureConfig:
    def test_default_columns(self):
        cfg = FeatureConfig()
        assert cfg.scalar_columns() == [COL_TC, COL_LC_BUILDING, COL_DIST, COL_DURATION, COL_COURIERS]
        assert len(cfg.hist_columns()) == 24

    def test_ablation_columns(self):
        assert COL_TC not in FeatureConfig(use_tc=False).scalar_columns()
        assert COL_DIST not in FeatureConfig(use_dist=False).scalar_columns()
        assert FeatureConfig(use_profile=False).hist_columns() == []
        cfg = FeatureConfig(lc_mode="address")
        assert COL_LC_ADDRESS in cfg.scalar_columns()
        assert COL_LC_BUILDING not in cfg.scalar_columns()
        no_lc = FeatureConfig(use_lc=False).scalar_columns()
        assert COL_LC_BUILDING not in no_lc and COL_LC_ADDRESS not in no_lc

    def test_invalid_lc_mode(self):
        with pytest.raises(ValueError):
            FeatureConfig(lc_mode="bogus")
