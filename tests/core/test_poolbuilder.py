import numpy as np
import pytest

from repro.core import CandidatePoolBuilder, build_candidate_pool
from repro.trajectory import StayPoint
from tests.core.helpers import PROJ


def sp(x, y, t=0.0):
    lng, lat = PROJ.to_lnglat(x, y)
    return StayPoint(float(lng), float(lat), t, t + 60.0, "c1", n_points=4)


class TestCandidatePoolBuilder:
    def test_empty_builder(self):
        builder = CandidatePoolBuilder(PROJ)
        pool = builder.build()
        assert len(pool) == 0
        assert builder.n_batches == 0

    def test_single_batch_matches_direct_clustering(self):
        stays = [sp(0, 0), sp(6, 2, 50), sp(400, 0, 100)]
        builder = CandidatePoolBuilder(PROJ, 40.0)
        builder.add_batch(stays)
        streamed = builder.build()
        direct = build_candidate_pool(stays, PROJ, 40.0)
        assert len(streamed) == len(direct)
        for a, b in zip(streamed.candidates, direct.candidates):
            assert a.x == pytest.approx(b.x, abs=1e-9)
            assert a.weight == b.weight

    @pytest.mark.parametrize("threshold", [25.0, 40.0, 60.0])
    def test_incremental_validity_invariant(self, threshold):
        """After every batch, all centroids stay >= D apart."""
        rng = np.random.default_rng(0)
        builder = CandidatePoolBuilder(PROJ, threshold)
        for batch in range(4):
            stays = [
                sp(float(x), float(y), t=batch * 1e5 + i)
                for i, (x, y) in enumerate(rng.uniform(0, 600, size=(25, 2)))
            ]
            builder.add_batch(stays)
            pool = builder.build()
            coords = np.array([[c.x, c.y] for c in pool.candidates])
            for i in range(len(coords)):
                for j in range(i + 1, len(coords)):
                    assert np.hypot(*(coords[i] - coords[j])) >= threshold - 1e-6
        assert builder.n_batches == 4
        assert builder.n_points == 100

    def test_incremental_vs_one_shot_counts_close(self):
        """Streaming the stays in batches finds about as many locations as
        clustering them all at once (merge order only shifts boundaries)."""
        rng = np.random.default_rng(7)
        stays = [
            sp(float(x), float(y), t=float(i))
            for i, (x, y) in enumerate(rng.uniform(0, 1000, size=(200, 2)))
        ]
        one_shot = build_candidate_pool(stays, PROJ, 40.0)
        builder = CandidatePoolBuilder(PROJ, 40.0)
        for start in range(0, len(stays), 40):
            builder.add_batch(stays[start:start + 40])
        streamed = builder.build()
        assert len(streamed) == pytest.approx(len(one_shot), rel=0.2)
        # Both cover the same total mass.
        assert sum(c.weight for c in streamed.candidates) == pytest.approx(
            sum(c.weight for c in one_shot.candidates)
        )

    def test_from_pool_resumes_merging(self):
        """A builder rehydrated from a built pool continues exactly where
        the original builder left off (the DLInfMA.update path)."""
        rng = np.random.default_rng(3)
        first = [
            sp(float(x), float(y), t=float(i))
            for i, (x, y) in enumerate(rng.uniform(0, 600, size=(40, 2)))
        ]
        second = [
            sp(float(x), float(y), t=1e5 + i)
            for i, (x, y) in enumerate(rng.uniform(0, 600, size=(40, 2)))
        ]
        continuous = CandidatePoolBuilder(PROJ, 40.0)
        continuous.add_batch(first)
        checkpoint = continuous.build()

        resumed = CandidatePoolBuilder.from_pool(checkpoint, 40.0)
        assert len(resumed.build()) == len(checkpoint)

        continuous.add_batch(second)
        resumed.add_batch(second)
        ours = [(c.x, c.y, c.weight) for c in resumed.build().candidates]
        theirs = [(c.x, c.y, c.weight) for c in continuous.build().candidates]
        assert ours == pytest.approx(theirs)

    def test_weight_accumulates_across_batches(self):
        builder = CandidatePoolBuilder(PROJ, 40.0)
        builder.add_batch([sp(0, 0), sp(3, 0, 10)])
        builder.add_batch([sp(1, 1, 20)])
        pool = builder.build()
        assert len(pool) == 1
        assert pool.candidates[0].weight == pytest.approx(3.0)

    def test_empty_batch_counted_but_harmless(self):
        builder = CandidatePoolBuilder(PROJ, 40.0)
        builder.add_batch([])
        builder.add_batch([sp(0, 0)])
        assert builder.n_batches == 2
        assert len(builder.build()) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CandidatePoolBuilder(PROJ, 0.0)
