import numpy as np
import pytest

from repro.core import (
    AddressExample,
    FeatureConfig,
    LocMatcherConfig,
    LocMatcherNet,
    LocMatcherSelector,
    N_FEATURES,
    COL_TC,
    COL_DIST,
)


def synthetic_examples(n=60, seed=0, n_cands=(3, 8)):
    """Examples where the labeled candidate has max TC and min distance."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        k = int(rng.integers(*n_cands))
        feats = np.zeros((k, N_FEATURES))
        feats[:, COL_TC] = rng.uniform(0.2, 0.8, k)
        feats[:, COL_DIST] = rng.uniform(50, 400, k)
        label = int(rng.integers(k))
        feats[label, COL_TC] = 1.0
        feats[label, COL_DIST] = rng.uniform(5, 40)
        feats[:, 6:] = rng.dirichlet(np.ones(24), size=k)
        out.append(
            AddressExample(
                address_id=f"x{i}",
                candidate_ids=list(range(k)),
                features=feats,
                n_deliveries=int(rng.integers(1, 20)),
                poi_category=int(rng.integers(21)),
                label=label,
            )
        )
    return out


FAST = LocMatcherConfig(max_epochs=40, patience=10, lr_step=15)


class TestLocMatcherNet:
    def test_output_shape(self):
        net = LocMatcherNet(n_scalar=5, hist_dim=24, config=LocMatcherConfig())
        out = net(
            np.zeros((2, 7, 5)), np.zeros((2, 7, 24)), np.ones((2, 7), dtype=bool),
            np.zeros(2, dtype=int), np.zeros(2),
        )
        assert out.shape == (2, 7)

    def test_no_hist_configuration(self):
        net = LocMatcherNet(n_scalar=3, hist_dim=0, config=LocMatcherConfig())
        out = net(np.zeros((1, 4, 3)), None, np.ones((1, 4), dtype=bool), np.zeros(1, dtype=int), np.zeros(1))
        assert out.shape == (1, 4)

    def test_missing_hist_rejected(self):
        net = LocMatcherNet(n_scalar=3, hist_dim=24, config=LocMatcherConfig())
        with pytest.raises(ValueError):
            net(np.zeros((1, 4, 3)), None, np.ones((1, 4), dtype=bool), np.zeros(1, dtype=int), np.zeros(1))

    def test_zero_features_rejected(self):
        with pytest.raises(ValueError):
            LocMatcherNet(n_scalar=0, hist_dim=0, config=LocMatcherConfig())

    def test_no_context_variant_has_no_u(self):
        net = LocMatcherNet(5, 24, LocMatcherConfig(), use_address_context=False)
        assert net.u is None and net.poi_embedding is None
        out = net(np.zeros((1, 3, 5)), np.zeros((1, 3, 24)), np.ones((1, 3), dtype=bool), np.zeros(1, dtype=int), np.zeros(1))
        assert out.shape == (1, 3)

    def test_lstm_encoder_variant(self):
        net = LocMatcherNet(5, 24, LocMatcherConfig(encoder="lstm"))
        out = net(np.zeros((2, 6, 5)), np.zeros((2, 6, 24)), np.ones((2, 6), dtype=bool), np.zeros(2, dtype=int), np.zeros(2))
        assert out.shape == (2, 6)

    def test_invalid_encoder(self):
        with pytest.raises(ValueError):
            LocMatcherConfig(encoder="gru")


class TestLocMatcherSelector:
    def test_learns_synthetic_rule(self):
        train = synthetic_examples(80, seed=0)
        test = synthetic_examples(40, seed=99)
        selector = LocMatcherSelector(config=FAST).fit(train)
        acc = np.mean([selector.predict_index(e) == e.label for e in test])
        assert acc > 0.8

    def test_scores_are_probabilities(self):
        train = synthetic_examples(30, seed=1)
        selector = LocMatcherSelector(config=FAST).fit(train)
        scores = selector.scores(train[0])
        assert scores.shape == (train[0].n_candidates,)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert (scores >= 0).all()

    def test_validation_early_stopping_records_history(self):
        train = synthetic_examples(40, seed=2)
        val = synthetic_examples(15, seed=3)
        selector = LocMatcherSelector(config=FAST).fit(train, val)
        assert len(selector.history) >= 1
        assert {"epoch", "train_loss", "monitor"} <= set(selector.history[0])

    def test_unlabeled_training_rejected(self):
        examples = synthetic_examples(5, seed=4)
        for e in examples:
            e.label = None
        with pytest.raises(ValueError):
            LocMatcherSelector(config=FAST).fit(examples)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LocMatcherSelector().scores(synthetic_examples(1)[0])

    def test_feature_ablation_trains(self):
        train = synthetic_examples(30, seed=5)
        cfg = FeatureConfig(use_profile=False, use_lc=False)
        selector = LocMatcherSelector(cfg, FAST).fit(train)
        assert selector.scores(train[0]).shape == (train[0].n_candidates,)

    def test_single_candidate_example(self):
        train = synthetic_examples(30, seed=6)
        selector = LocMatcherSelector(config=FAST).fit(train)
        lone = synthetic_examples(1, seed=7, n_cands=(1, 2))[0]
        assert selector.predict_index(lone) == 0

    def test_deterministic_given_seed(self):
        train = synthetic_examples(25, seed=8)
        s1 = LocMatcherSelector(config=FAST).fit(train)
        s2 = LocMatcherSelector(config=FAST).fit(train)
        np.testing.assert_allclose(s1.scores(train[0]), s2.scores(train[0]))

    def test_batched_scores_match_single(self):
        """Batched inference matches per-example inference to f32 exactness.

        Compute is float32 end-to-end, so BLAS blocking may differ by a
        ulp between batch shapes; anything beyond that is a padding leak.
        """
        train = synthetic_examples(30, seed=10)
        selector = LocMatcherSelector(config=FAST).fit(train)
        probe = synthetic_examples(23, seed=11, n_cands=(1, 9))
        batched = selector.scores_batch(probe)
        for example, scores in zip(probe, batched):
            np.testing.assert_allclose(
                scores, selector.scores(example), rtol=1e-6, atol=1e-8
            )
        indices = selector.predict_index_batch(probe)
        assert indices == [selector.predict_index(e) for e in probe]

    def test_scores_batch_empty(self):
        train = synthetic_examples(10, seed=12)
        selector = LocMatcherSelector(config=FAST).fit(train)
        assert selector.scores_batch([]) == []
