import numpy as np
import pytest

from repro.core import (
    AddressExample,
    COL_DIST,
    COL_LC_BUILDING,
    COL_TC,
    HeuristicSelector,
    N_FEATURES,
    make_variant_selector,
)
from tests.core.test_locmatcher import synthetic_examples


def example_with(tc, lc, dist):
    n = len(tc)
    feats = np.zeros((n, N_FEATURES))
    feats[:, COL_TC] = tc
    feats[:, COL_LC_BUILDING] = lc
    feats[:, COL_DIST] = dist
    return AddressExample("a", list(range(n)), feats, n_deliveries=3, poi_category=0)


class TestHeuristicSelector:
    def test_mindist(self):
        ex = example_with([0.5, 1.0], [0.0, 0.0], [120.0, 30.0])
        assert HeuristicSelector("mindist").predict_index(ex) == 1

    def test_maxtc(self):
        ex = example_with([0.4, 0.9, 0.6], [0.0, 0.5, 0.0], [10.0, 10.0, 10.0])
        assert HeuristicSelector("maxtc").predict_index(ex) == 1

    def test_maxtc_ilc_penalizes_common_locations(self):
        # Same TC; the low-LC candidate must win.
        ex = example_with([1.0, 1.0], [0.9, 0.01], [10.0, 10.0])
        assert HeuristicSelector("maxtc-ilc").predict_index(ex) == 1

    def test_maxtc_ilc_low_tc_cannot_win_on_zero_lc(self):
        # A spot visited once but never shared must not beat the
        # always-visited true spot (the smoothing regression test).
        ex = example_with([0.2, 1.0], [0.0, 0.15], [10.0, 10.0])
        assert HeuristicSelector("maxtc-ilc").predict_index(ex) == 1

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            HeuristicSelector("best")

    def test_fit_noop(self):
        sel = HeuristicSelector("maxtc")
        assert sel.fit() is sel


class TestVariantSelectors:
    @pytest.mark.parametrize("name", ["gbdt", "rf", "mlp", "rkdt", "rknet"])
    def test_variant_learns_synthetic_rule(self, name):
        train = synthetic_examples(60, seed=0)
        test = synthetic_examples(30, seed=42)
        selector = make_variant_selector(name, seed=0)
        selector.fit(train)
        acc = np.mean([selector.predict_index(e) == e.label for e in test])
        assert acc > 0.6, f"{name} accuracy {acc}"

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            make_variant_selector("transformer-xl")

    def test_heuristics_via_factory(self):
        assert isinstance(make_variant_selector("mindist"), HeuristicSelector)

    def test_classifier_requires_labels(self):
        examples = synthetic_examples(5, seed=1)
        for e in examples:
            e.label = None
        with pytest.raises(ValueError):
            make_variant_selector("gbdt").fit(examples)

    def test_unfitted_raises(self):
        ex = synthetic_examples(1)[0]
        with pytest.raises(RuntimeError):
            make_variant_selector("gbdt").scores(ex)
        with pytest.raises(RuntimeError):
            make_variant_selector("rkdt").scores(ex)
